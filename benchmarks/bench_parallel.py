"""Multi-core sharded ingestion vs the sequential batched coordinator.

One Zipf stream is item-sharded into 4 site streams; the sequential
``MergingCoordinator`` (batched fast path) and the persistent-worker
``ParallelMergingCoordinator`` at 2 and 4 workers ingest the same
partition end-to-end (stream batches, ingest, merge).  A 4-worker run on
the forced pickle transport is measured as the IPC baseline for the
zero-copy ring.  Results land in the ``parallel`` section of
``BENCH_throughput.json``.

Gates (also the CI parallel smoke):

* **differential** — every parallel report is item-for-item identical to
  the sequential report (always enforced, pickle transport included);
* **IPC** — the shared-memory transport's ``ingest_ipc_bytes`` must be
  under 1% of the pickled-batch baseline (enforced whenever shm is
  available);
* **speedup** — the 4-worker run must beat the sequential path by a
  floor that adapts to the cores actually available (1.5x with >= 4
  cores, 1.05x with 2-3, identity-only on single-core boxes).
  ``REPRO_PARALLEL_SPEEDUP_FLOOR`` overrides the floor, e.g. for CI
  runners with noisy neighbours.
"""

from __future__ import annotations

import os

from benchmarks.bench_throughput import update_bench_json, usable_cores
from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.distributed.coordinator import MergingCoordinator
from repro.distributed.parallel import ParallelMergingCoordinator
from repro.distributed.partition import partition_sharded
from repro.distributed.transport import shm_available
from repro.metrics.throughput import measure_coordinator_throughput
from repro.streams.synthetic import zipf_stream


def test_throughput_parallel(benchmark):
    stream = zipf_stream(
        num_events=400_000, num_distinct=5_000, skew=1.0, num_periods=8, seed=11
    )
    config = LTCConfig(
        num_buckets=256,
        bucket_width=8,
        alpha=1.0,
        beta=1.0,
        items_per_period=stream.period_length,
    )
    sites = partition_sharded(stream, 4)
    worker_counts = (2, 4)

    def run():
        results = {}
        results["sequential"] = measure_coordinator_throughput(
            lambda: MergingCoordinator(config),
            sites,
            100,
            name="sequential",
            repeats=2,
        )
        for workers in worker_counts:
            results[f"parallel-{workers}w"] = measure_coordinator_throughput(
                lambda w=workers: ParallelMergingCoordinator(
                    config, max_workers=w
                ),
                sites,
                100,
                name=f"parallel-{workers}w",
                repeats=2,
            )
        # The pickled-batch baseline the zero-copy ring is gated against.
        results["parallel-4w-pickle"] = measure_coordinator_throughput(
            lambda: ParallelMergingCoordinator(
                config, max_workers=4, transport="pickle"
            ),
            sites,
            100,
            name="parallel-4w-pickle",
            repeats=2,
        )
        return results

    results = once(benchmark, run)
    sequential, sequential_report = results["sequential"]
    speedups = {
        name: timing.ops / sequential.ops
        for name, (timing, _) in results.items()
    }
    ipc = {
        name: report.ingest_ipc_bytes
        for name, (_, report) in results.items()
    }
    emit(
        "parallel",
        ["engine", "Mops", "speedup vs sequential", "ingest IPC bytes"],
        [
            (
                name,
                f"{timing.mops:.3f}",
                f"{speedups[name]:.2f}x",
                str(ipc[name]),
            )
            for name, (timing, _) in results.items()
        ],
        title=(
            f"Persistent sharded workers vs sequential coordinator "
            f"(zipf-1.0, 4 shards, {usable_cores()} cores, "
            f"transport={'shm' if shm_available() else 'pickle'})"
        ),
    )
    cores = usable_cores()
    floor_env = os.environ.get("REPRO_PARALLEL_SPEEDUP_FLOOR")
    if floor_env is not None:
        floor = float(floor_env)
    elif cores >= 4:
        floor = 1.5
    elif cores >= 2:
        floor = 1.05
    else:
        floor = 0.0
    update_bench_json(
        "parallel",
        {
            "benchmark": "benchmarks/bench_parallel.py::test_throughput_parallel",
            "stream": {
                "kind": "zipf",
                "skew": 1.0,
                "num_events": len(stream),
                "num_distinct": 5_000,
                "num_periods": stream.num_periods,
                "seed": 11,
            },
            "shards": len(sites),
            "cores": cores,
            "transport": "shm" if shm_available() else "pickle",
            "speedup_floor": floor,
            "results": [timing.to_dict() for timing, _ in results.values()],
            "speedups": speedups,
            "ingest_ipc_bytes": ipc,
            "ipc_ratio_shm_vs_pickle": (
                ipc["parallel-4w"] / ipc["parallel-4w-pickle"]
                if shm_available() and ipc["parallel-4w-pickle"]
                else None
            ),
        },
    )
    # Differential gate: every parallel engine must answer identically.
    for name, (_, report) in results.items():
        assert report.top_k == sequential_report.top_k, (
            f"{name} diverged from the sequential coordinator"
        )
        assert report.communication_bytes == sequential_report.communication_bytes
    # IPC gate: the zero-copy ring ships <1% of the pickled baseline.
    if shm_available():
        assert ipc["parallel-4w"] < 0.01 * ipc["parallel-4w-pickle"], (
            f"shm transport shipped {ipc['parallel-4w']}B, not under 1% of "
            f"the {ipc['parallel-4w-pickle']}B pickle baseline"
        )
    # Speedup gate, scaled to the hardware actually present.
    assert speedups["parallel-4w"] >= floor, (
        f"parallel-4w speedup {speedups['parallel-4w']:.2f}x below the "
        f"{floor:.2f}x floor ({cores} cores)"
    )
