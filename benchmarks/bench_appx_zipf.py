"""Appendix experiment — synthetic Zipf datasets of varying skew.

The paper's tech-report appendix repeats the comparison on synthetic
streams.  Shape: LTC's advantage holds across skews; everyone improves as
skew grows (fewer effective heavy items); LTC's lead is largest at low
skew, where the top-k boundary is most crowded.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.experiments.configs import default_algorithms_frequent
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream

K = 100
MEM_KB = 3


def sweep():
    rows = []
    for skew in (0.6, 0.9, 1.2, 1.5):
        stream = zipf_stream(
            num_events=30_000,
            num_distinct=8_000,
            skew=skew,
            num_periods=30,
            seed=31,
        )
        truth = GroundTruth(stream)
        budget = MemoryBudget(kb(MEM_KB))
        results = run_and_evaluate(
            default_algorithms_frequent(budget, stream, K),
            stream,
            K,
            1.0,
            0.0,
            truth,
        )
        rows.append((skew, results))
    return rows


def test_appx_zipf_skew(benchmark):
    rows = once(benchmark, sweep)
    names = [r.name for r in rows[0][1]]
    emit(
        "appx_zipf",
        ["skew"] + names,
        [[s] + [f"{r.precision:.3f}" for r in results] for s, results in rows],
        title=f"Appendix: precision vs Zipf skew ({MEM_KB}KB, k={K})",
    )
    emit(
        "appx_zipf",
        ["skew"] + names,
        [[s] + [f"{r.are:.3g}" for r in results] for s, results in rows],
        title=f"Appendix: ARE vs Zipf skew ({MEM_KB}KB, k={K})",
    )
    for skew, results in rows:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        # At very high skew the counter-based algorithms saturate too, so
        # near-ties are allowed; LTC stays in the lead class everywhere.
        assert all(
            ltc.precision >= r.precision - 0.05 for r in by_name.values()
        ), f"skew={skew}"
        assert ltc.are <= 10 * min(r.are for r in by_name.values()) + 1e-2, (
            f"skew={skew}"
        )
    # The hardest case (lowest skew, most crowded top-k boundary) shows
    # strict dominance — the regime the paper's optimizations target.
    low_skew = {r.name: r for r in rows[0][1]}
    ltc_low = low_skew.pop("LTC")
    assert all(ltc_low.precision > r.precision for r in low_skew.values())
    assert all(ltc_low.are < r.are for r in low_skew.values())
    # LTC itself improves with skew.
    ltc_precisions = [
        next(r.precision for r in results if r.name == "LTC") for _, results in rows
    ]
    assert ltc_precisions[-1] >= ltc_precisions[0]
