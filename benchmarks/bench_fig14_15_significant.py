"""Figs. 14 & 15 — finding significant items (the paper's headline task).

One sweep per dataset regenerates both figures for the three parameter
pairings the paper tests: (α:β) ∈ {1:10, 1:1, 10:1}.  Line-up: LTC vs the
two-structure combinations of the strongest baselines (CU+CU, with CM+CM
for reference), per §V-H.

Shapes: LTC has higher precision and lower ARE than the combined baseline
on every dataset, every pairing and every memory size.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, once
from repro.experiments.configs import default_algorithms_significant
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb

K = 100
PAIRINGS = [(1.0, 10.0), (1.0, 1.0), (10.0, 1.0)]
MEMORY_KBS = (4, 8, 16)


def sweep(stream, truth):
    table = []  # (alpha, beta, mem, results)
    for alpha, beta in PAIRINGS:
        for mem in MEMORY_KBS:
            budget = MemoryBudget(kb(mem))
            results = run_and_evaluate(
                default_algorithms_significant(budget, stream, K, alpha, beta),
                stream,
                K,
                alpha,
                beta,
                truth,
            )
            table.append((alpha, beta, mem, results))
    return table


@pytest.mark.parametrize(
    "dataset_name,subplot",
    [("caida", "b"), ("network", "c"), ("social", "d")],
)
def test_fig14_15_significant(benchmark, datasets, dataset_name, subplot):
    stream, truth = datasets[dataset_name]
    table = once(benchmark, sweep, stream, truth)
    names = [r.name for r in table[0][3]]
    emit(
        "fig14",
        ["alpha:beta", "memory(KB)"] + names,
        [
            [f"{a:g}:{b:g}", mem] + [f"{r.precision:.3f}" for r in results]
            for a, b, mem, results in table
        ],
        title=f"Fig 14({subplot}): precision on {dataset_name} (k={K})",
    )
    emit(
        "fig15",
        ["alpha:beta", "memory(KB)"] + names,
        [
            [f"{a:g}:{b:g}", mem] + [f"{r.are:.3g}" for r in results]
            for a, b, mem, results in table
        ],
        title=f"Fig 15({subplot}): ARE on {dataset_name} (k={K})",
    )
    for alpha, beta, mem, results in table:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        label = f"{dataset_name} {alpha:g}:{beta:g}@{mem}KB"
        assert all(
            ltc.precision >= r.precision - 0.02 for r in by_name.values()
        ), f"{label}: LTC not best precision"
        assert all(
            ltc.are <= r.are + 1e-9 for r in by_name.values()
        ), f"{label}: LTC not best ARE"
    # Dramatic ARE gap at the tightest budget for at least one pairing.
    tightest = [row for row in table if row[2] == MEMORY_KBS[0]]
    assert any(
        min(r.are for r in results if r.name != "LTC")
        > 10 * next(r.are for r in results if r.name == "LTC") + 1e-9
        for _, _, _, results in tightest
    )
