"""Figs. 9 & 10 — finding frequent items (α = 1, β = 0).

One sweep regenerates both figures: Fig. 9 plots precision and Fig. 10
plots ARE of the same runs.

Subplots: (a) CAIDA, (b) Network, (c) Social — precision/ARE vs memory
with k = 100; (d) Network — vs k at fixed memory.

Shapes to reproduce (paper §V-F): LTC has the highest precision and the
lowest ARE at every operating point; sketch ARE is orders of magnitude
worse at tight memory; Space-Saving suffers from overestimation.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_chart, once
from repro.experiments.configs import default_algorithms_frequent
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb

K = 100
ALPHA, BETA = 1.0, 0.0
MEMORY_KBS = (2, 4, 8, 16)


def sweep_memory(stream, truth):
    per_memory = []
    for mem in MEMORY_KBS:
        budget = MemoryBudget(kb(mem))
        results = run_and_evaluate(
            default_algorithms_frequent(budget, stream, K),
            stream,
            K,
            ALPHA,
            BETA,
            truth,
        )
        per_memory.append((mem, results))
    return per_memory


def emit_and_check(figure_prefix, subplot, dataset_name, per_memory):
    names = [r.name for r in per_memory[0][1]]
    emit(
        "fig09",
        ["memory(KB)"] + names,
        [
            [mem] + [f"{r.precision:.3f}" for r in results]
            for mem, results in per_memory
        ],
        title=f"Fig 9({subplot}): precision vs memory on {dataset_name} (k={K})",
    )
    emit(
        "fig10",
        ["memory(KB)"] + names,
        [
            [mem] + [f"{r.are:.3g}" for r in results]
            for mem, results in per_memory
        ],
        title=f"Fig 10({subplot}): ARE vs memory on {dataset_name} (k={K})",
    )
    emit_chart(
        "fig09",
        [mem for mem, _ in per_memory],
        {
            name: [results[i].precision for _, results in per_memory]
            for i, name in enumerate(names)
        },
        title=f"Fig 9({subplot}) precision vs memory ({dataset_name})",
    )
    emit_chart(
        "fig10",
        [mem for mem, _ in per_memory],
        {
            name: [max(results[i].are, 1e-6) for _, results in per_memory]
            for i, name in enumerate(names)
        },
        title=f"Fig 10({subplot}) ARE vs memory ({dataset_name})",
        log_scale=True,
    )
    for mem, results in per_memory:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        # Best precision at every point (ties within a couple of items are
        # noise at bench scale — the paper's curves saturate at 100%).
        assert all(
            ltc.precision >= r.precision - 0.02 for r in by_name.values()
        ), f"{dataset_name}@{mem}KB: LTC not best precision"
        # Best ARE (absolute slack of 2e-3 covers saturation ties where
        # both estimates are already near-exact).
        assert all(
            ltc.are <= r.are + 2e-3 for r in by_name.values()
        ), f"{dataset_name}@{mem}KB: LTC not best ARE"
    # Strict dominance where the paper's gap is dramatic: tight memory.
    tight = {r.name: r for r in per_memory[0][1]}
    ltc_tight = tight.pop("LTC")
    assert all(ltc_tight.precision > r.precision for r in tight.values())
    # The paper's orders-of-magnitude ARE gap at tight memory.
    assert ltc_tight.are * 10 < max(r.are for r in tight.values()) + 1e-9


@pytest.mark.parametrize(
    "dataset_name,subplot",
    [("caida", "a"), ("network", "b"), ("social", "c")],
)
def test_fig09_10_vs_memory(benchmark, datasets, dataset_name, subplot):
    stream, truth = datasets[dataset_name]
    per_memory = once(benchmark, sweep_memory, stream, truth)
    emit_and_check("fig09", subplot, dataset_name, per_memory)


def test_fig09d_10d_vs_k(benchmark, bench_network):
    stream, truth = bench_network
    budget = MemoryBudget(kb(12))

    def sweep():
        per_k = []
        for k in (50, 100, 200, 400):
            results = run_and_evaluate(
                default_algorithms_frequent(budget, stream, k),
                stream,
                k,
                ALPHA,
                BETA,
                truth,
            )
            per_k.append((k, results))
        return per_k

    per_k = once(benchmark, sweep)
    names = [r.name for r in per_k[0][1]]
    emit(
        "fig09",
        ["k"] + names,
        [[k] + [f"{r.precision:.3f}" for r in results] for k, results in per_k],
        title="Fig 9(d): precision vs k on network (12KB)",
    )
    emit(
        "fig10",
        ["k"] + names,
        [[k] + [f"{r.are:.3g}" for r in results] for k, results in per_k],
        title="Fig 10(d): ARE vs k on network (12KB)",
    )
    for k, results in per_k:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        assert all(ltc.precision >= r.precision - 0.02 for r in by_name.values())
        assert all(ltc.are <= r.are + 1e-9 for r in by_name.values())
