"""Serving tier: queries/sec under concurrent ingest, with identity gate.

The serving index answers ``top_k`` / point / ``significant`` queries
from a dict + lazy heap; this bench measures what that read path is
worth while the ingest worker keeps applying batches on the same event
loop — the deployment shape of the ROADMAP's north star.  Three numbers
per endpoint:

* **idle qps** — pure read-path speed, nothing ingesting;
* **qps under ingest** — queries interleaved with worker chunks, so
  each query also pays the index repair for the ~2k events applied
  since the previous one (this is the headline, gated number);
* **full-scan qps** — the same answers computed by the oracle's table
  walk, for the O(k)-vs-O(m) contrast.

Gates:

* **identity** — a verification pass re-runs queries against the live
  server with ``check_oracle=True``: every served answer must be
  byte-equal to the full-scan oracle or the app raises, across live
  evictions/decrements/replacements (hard gate, always on);
* **queries/sec floor** — point-query qps under ingest must clear
  ``REPRO_SERVING_QPS_FLOOR`` (default 150/s, sized for 1-core hosted
  runners; the nightly job runs a higher floor).

Results land in the ``serving`` section of ``BENCH_throughput.json``.
"""

from __future__ import annotations

import asyncio
import os
import random
import time

from benchmarks.bench_throughput import update_bench_json
from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.core.kernels import build_ltc
from repro.serve.server import ServingApp
from repro.streams.synthetic import zipf_stream

#: Queries timed per endpoint per condition.
_PROBES = 300
#: Events per submitted ingest batch.
_BATCH = 5_000


def _config() -> LTCConfig:
    return LTCConfig(
        num_buckets=512,
        bucket_width=8,
        items_per_period=10_000,
        kernel="columnar",
    )


def _mixed_queries(rng: random.Random, count: int):
    """A realistic endpoint mix keyed by kind (point-heavy)."""
    kinds = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.6:
            kinds.append(("query", f"/query/{rng.randrange(20_000)}"))
        elif roll < 0.9:
            kinds.append(("top_k", f"/top_k?k={rng.choice([10, 50, 100])}"))
        else:
            kinds.append(("significant", "/significant?threshold=25"))
    return kinds


async def _timed_queries(app: ServingApp, kinds, ingesting: bool) -> dict:
    """qps per endpoint kind; yields to the worker between queries."""
    per_kind: dict = {}
    for kind, path in kinds:
        start = time.perf_counter()
        status, _, _ = app.respond("GET", path)
        assert status == 200
        elapsed = time.perf_counter() - start
        total, n = per_kind.get(kind, (0.0, 0))
        per_kind[kind] = (total + elapsed, n + 1)
        if ingesting:
            await asyncio.sleep(0)  # let the worker apply a chunk
    return {kind: n / total for kind, (total, n) in per_kind.items()}


def test_serving_queries_under_ingest(benchmark):
    """queries/sec for the three endpoints, idle and under live ingest."""
    stream = zipf_stream(
        num_events=400_000, num_distinct=20_000, skew=1.0, num_periods=40,
        seed=11,
    )
    events = list(stream.events)

    async def scenario() -> dict:
        rng = random.Random(0xD15C)
        app = ServingApp(build_ltc(_config()), ingest_chunk=2_048)
        app.start()

        # Warm the structure with the first quarter of the stream.
        warm = len(events) // 4
        app.submit(events[:warm])
        await app._queue.join()

        idle = await _timed_queries(app, _mixed_queries(rng, _PROBES), False)

        # Keep the worker saturated while the timed queries run.
        feeder_pos = warm
        ingest_t0 = time.perf_counter()
        ingest_base = app.ingested

        async def feeder() -> None:
            nonlocal feeder_pos
            while True:
                if app.queued < 4 * _BATCH:
                    nxt = events[feeder_pos : feeder_pos + _BATCH]
                    feeder_pos = (feeder_pos + _BATCH) % (len(events) - _BATCH)
                    app.submit(nxt)
                await asyncio.sleep(0)

        feed = asyncio.get_running_loop().create_task(feeder())
        try:
            under = await _timed_queries(
                app, _mixed_queries(rng, _PROBES), True
            )
        finally:
            feed.cancel()
        ingest_rate = (app.ingested - ingest_base) / (
            time.perf_counter() - ingest_t0
        )

        # Full-scan contrast: the oracle recomputes the same answers by
        # walking all cells (what serving would cost without the index).
        from repro.serve.oracle import (
            oracle_query,
            oracle_significant,
            oracle_top_k,
        )

        scans = 60
        t0 = time.perf_counter()
        for i in range(scans):
            oracle_query(app.ltc, rng.randrange(20_000))
            oracle_top_k(app.ltc, 50)
            oracle_significant(app.ltc, 25.0)
        scan_qps = 3 * scans / (time.perf_counter() - t0)

        # Identity gate: served bytes must equal the oracle's while the
        # feeder keeps mutating the table under the index.
        app.check_oracle = True
        feed2 = asyncio.get_running_loop().create_task(feeder())
        try:
            for kind, path in _mixed_queries(rng, 120):
                status, _, _ = app.respond("GET", path)  # raises on mismatch
                assert status == 200
                await asyncio.sleep(0)
        finally:
            feed2.cancel()
        app.check_oracle = False
        checks = app.oracle_checks

        await app.shutdown()
        return {
            "idle": idle,
            "under_ingest": under,
            "ingest_events_per_sec": ingest_rate,
            "full_scan_qps": scan_qps,
            "oracle_checks": checks,
        }

    results = once(benchmark, lambda: asyncio.run(scenario()))

    emit(
        "serving",
        ["endpoint", "idle qps", "under-ingest qps"],
        [
            (
                kind,
                f"{results['idle'][kind]:,.0f}",
                f"{results['under_ingest'][kind]:,.0f}",
            )
            for kind in sorted(results["idle"])
        ]
        + [
            ("(ingest)", "-", f"{results['ingest_events_per_sec']:,.0f} ev/s"),
            ("(full scan)", f"{results['full_scan_qps']:,.0f}", "-"),
        ],
        title="Serving tier queries/sec (w=512 d=8 columnar, zipf-1.0)",
    )

    floor = float(os.environ.get("REPRO_SERVING_QPS_FLOOR", "150"))
    update_bench_json(
        "serving",
        {
            "config": {
                "num_buckets": 512,
                "bucket_width": 8,
                "kernel": "columnar",
                "distinct": 20_000,
                "ingest_chunk": 2_048,
            },
            "idle_qps": results["idle"],
            "under_ingest_qps": results["under_ingest"],
            "ingest_events_per_sec": results["ingest_events_per_sec"],
            "full_scan_qps": results["full_scan_qps"],
            "oracle_checks": results["oracle_checks"],
            "qps_floor": floor,
        },
    )

    assert results["oracle_checks"] >= 120
    gated = results["under_ingest"]["query"]
    assert gated >= floor, (
        f"point-query qps under ingest {gated:,.0f} below the "
        f"REPRO_SERVING_QPS_FLOOR of {floor:,.0f}"
    )
    # The index must actually beat scanning: point queries, even paying
    # the concurrent-ingest share, clear the full-scan rate.
    assert results["idle"]["query"] > results["full_scan_qps"]
