"""Fig. 7 — theoretical bounds vs measured values (§IV-D).

(a) correct-rate: the theoretical lower bound stays below the measured
    correct rate at every memory size;
(b) error: the Markov bound stays above the measured violation rate.

Paper parameters: k = 1000, memory 10–150KB, ε = 2⁻¹⁸.  Scaled here to
the bench stream (k = 200, ε chosen so εN matches the same error scale).
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.analysis.bounds import (
    error_probability_bound,
    mean_topk_correct_rate_bound,
)
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.memory import MemoryBudget, kb
from repro.streams.synthetic import zipf_stream
from repro.streams.ground_truth import GroundTruth

K = 200
EPSILON = 2e-3


def build_workload():
    stream = zipf_stream(
        num_events=30_000, num_distinct=6_000, skew=1.0, num_periods=20, seed=77
    )
    return stream, GroundTruth(stream)


def run_ltc(stream, w, d):
    ltc = LTC(
        LTCConfig(
            num_buckets=w,
            bucket_width=d,
            alpha=1.0,
            beta=0.0,
            items_per_period=stream.period_length,
            longtail_replacement=False,  # the bounds are for the basic+DE version
        )
    )
    stream.run(ltc)
    return ltc


def sweep(memory_kbs):
    stream, truth = build_workload()
    freqs = truth.frequencies_sorted()
    exact_top = truth.top_k(K, 1.0, 0.0)
    rows_a, rows_b = [], []
    d = 8
    for mem in memory_kbs:
        w = MemoryBudget(kb(mem)).ltc_buckets(d)
        ltc = run_ltc(stream, w, d)
        correct = sum(1 for item, sig in exact_top if ltc.query(item) == sig)
        measured_rate = correct / K
        bound = mean_topk_correct_rate_bound(freqs, w, d, K, sample=16)
        rows_a.append((mem, round(bound, 4), round(measured_rate, 4)))

        violations = sum(
            1
            for item, sig in exact_top
            if sig - ltc.query(item) >= EPSILON * truth.num_events
        )
        measured_err = violations / K
        mean_bound = sum(
            error_probability_bound(
                freqs, rank, w, d, 1.0, 0.0, EPSILON, truth.num_events
            )
            for rank in range(0, K, 10)
        ) / len(range(0, K, 10))
        rows_b.append((mem, round(mean_bound, 4), round(measured_err, 4)))
    return rows_a, rows_b


def test_fig07_bounds(benchmark):
    memory_kbs = (2, 4, 8, 16)
    rows_a, rows_b = once(benchmark, sweep, memory_kbs)
    emit(
        "fig07",
        ["memory(KB)", "theoretic bound", "real correct rate"],
        rows_a,
        title="Fig 7(a): correct-rate bound vs measured (k=200, Zipf 1.0)",
    )
    emit(
        "fig07",
        ["memory(KB)", "theoretic bound", "real violation rate"],
        rows_b,
        title=f"Fig 7(b): error bound vs measured (eps={EPSILON})",
    )
    for mem, bound, real in rows_a:
        assert bound <= real + 0.05, f"correct-rate bound not conservative at {mem}KB"
    for mem, bound, real in rows_b:
        assert real <= bound + 0.05, f"error bound not conservative at {mem}KB"
    # Both the bound and the measurement tighten with memory.
    assert rows_a[-1][1] >= rows_a[0][1]
    assert rows_a[-1][2] >= rows_a[0][2]
