"""Fig. 11 — effect of the Deviation Eliminator (Optimization I).

Persistent-items mode (α = 0, β = 1) on the Network dataset.  Shape: the
two-flag version (Y) is at least as precise as the basic one-flag version
(N) — the paper reports a slight but consistent edge.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.experiments.configs import ltc_factory
from repro.metrics.accuracy import average_relative_error, precision
from repro.metrics.memory import MemoryBudget, kb

K = 100


def run_pair(stream, truth, mem_kb):
    exact = truth.top_k_items(K, 0.0, 1.0)
    out = []
    for de in (True, False):
        ltc = ltc_factory(
            MemoryBudget(kb(mem_kb)),
            stream,
            alpha=0.0,
            beta=1.0,
            deviation_eliminator=de,
        )()
        stream.run(ltc)
        prec = precision((r.item for r in ltc.top_k(K)), exact)
        are = average_relative_error(
            ltc.reported_pairs(K), lambda i: truth.significance(i, 0.0, 1.0)
        )
        out.append((prec, are))
    return out  # [(with_de), (without_de)]


def test_fig11_de_vs_memory(benchmark, bench_network):
    stream, truth = bench_network

    def sweep():
        return [(mem, *run_pair(stream, truth, mem)) for mem in (2, 4, 8, 16)]

    rows = once(benchmark, sweep)
    emit(
        "fig11",
        ["memory(KB)", "Y precision", "Y ARE", "N precision", "N ARE"],
        [
            (m, f"{y[0]:.3f}", f"{y[1]:.4f}", f"{n[0]:.3f}", f"{n[1]:.4f}")
            for m, y, n in rows
        ],
        title="Fig 11: Deviation Eliminator ablation, alpha=0 beta=1 (network)",
    )
    # Precision: the paper reports a slight edge for Y; at bench scale
    # (50 periods vs the paper's 1000) the two are statistically tied, so
    # we assert parity within noise (EXPERIMENTS.md records the deviation).
    for mem, (y_prec, y_are), (n_prec, n_are) in rows:
        assert y_prec >= n_prec - 0.08, f"DE hurt precision at {mem}KB"
    # The unambiguous effect of Optimization I: the deviation (and with it
    # the persistency overestimation) disappears, so Y's ARE is strictly
    # better on average.
    mean_y = sum(y[1] for _, y, _ in rows) / len(rows)
    mean_n = sum(n[1] for _, _, n in rows) / len(rows)
    assert mean_y < mean_n
