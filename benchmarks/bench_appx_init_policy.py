"""Ablation — replacement-policy comparison (DESIGN.md §7.1).

Compares the three initialisation strategies for a cell takeover:

* ``longtail``      — second-smallest − 1 (Optimization II, the paper);
* ``one``           — plain 1/0 (the basic version);
* ``space-saving``  — inherit min + 1 without decrementing (the §I-C
  strawman the paper argues causes "huge overestimation error").

Shape: longtail ≥ one on precision; space-saving has by far the worst
ARE (its estimates overestimate by construction).
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.accuracy import average_relative_error, precision
from repro.metrics.memory import MemoryBudget, kb

K = 100
POLICIES = ("longtail", "one", "space-saving")


def sweep(stream, truth):
    exact = truth.top_k_items(K, 1.0, 0.0)
    rows = []
    for mem in (2, 4, 8):
        row = [mem]
        for policy in POLICIES:
            budget = MemoryBudget(kb(mem))
            ltc = LTC(
                LTCConfig(
                    num_buckets=budget.ltc_buckets(8),
                    bucket_width=8,
                    alpha=1.0,
                    beta=0.0,
                    items_per_period=stream.period_length,
                    replacement_policy=policy,
                )
            )
            stream.run(ltc)
            prec = precision((r.item for r in ltc.top_k(K)), exact)
            are = average_relative_error(
                ltc.reported_pairs(K), lambda i: truth.significance(i, 1.0, 0.0)
            )
            row.extend([prec, are])
        rows.append(row)
    return rows


def test_appx_replacement_policy(benchmark, bench_network):
    stream, truth = bench_network
    rows = once(benchmark, sweep, stream, truth)
    headers = ["memory(KB)"]
    for policy in POLICIES:
        headers += [f"{policy} prec", f"{policy} ARE"]
    emit(
        "appx_init_policy",
        headers,
        [
            [row[0]]
            + [f"{v:.3f}" if i % 2 == 0 else f"{v:.3g}" for i, v in enumerate(row[1:])]
            for row in rows
        ],
        title="Ablation: replacement policy, frequent mode (network)",
    )
    for row in rows:
        mem = row[0]
        lt_prec, lt_are = row[1], row[2]
        one_prec, one_are = row[3], row[4]
        ss_prec, ss_are = row[5], row[6]
        assert lt_prec >= one_prec - 0.03, f"{mem}KB: longtail < one"
        # The Space-Saving strategy's overestimation dominates everything.
        assert ss_are > lt_are, f"{mem}KB: space-saving ARE not worst"
        assert ss_are > one_are, f"{mem}KB"
