"""Appendix experiment — varying the number of periods T.

The paper reports (tech-report appendix) that LTC keeps the highest
precision and lowest ARE across period counts in persistent-items mode.
Shape: LTC beats the sketch adaptation at every T.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.experiments.configs import default_algorithms_persistent
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb
from repro.streams.datasets import network_like
from repro.streams.ground_truth import GroundTruth

K = 100


def sweep():
    rows = []
    for periods in (10, 25, 50, 100):
        stream = network_like(
            num_events=30_000, num_distinct=9_000, num_periods=periods
        )
        truth = GroundTruth(stream)
        budget = MemoryBudget(kb(12))
        results = run_and_evaluate(
            default_algorithms_persistent(budget, stream, K),
            stream,
            K,
            0.0,
            1.0,
            truth,
        )
        rows.append((periods, results))
    return rows


def test_appx_vary_periods(benchmark):
    rows = once(benchmark, sweep)
    names = [r.name for r in rows[0][1]]
    emit(
        "appx_vary_periods",
        ["T"] + [f"{n} prec" for n in names],
        [[t] + [f"{r.precision:.3f}" for r in results] for t, results in rows],
        title="Appendix: precision vs number of periods (network, 12KB)",
    )
    emit(
        "appx_vary_periods",
        ["T"] + [f"{n} ARE" for n in names],
        [[t] + [f"{r.are:.3g}" for r in results] for t, results in rows],
        title="Appendix: ARE vs number of periods (network, 12KB)",
    )
    for t, results in rows:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        assert all(
            ltc.precision >= r.precision - 0.03 for r in by_name.values()
        ), f"T={t}"
        assert all(ltc.are <= r.are + 1e-9 for r in by_name.values()), f"T={t}"
