"""Fig. 8 — effect of Long-tail Replacement (Optimization II).

(a) precision vs memory (Network, α = β = 1, k = 1000 in the paper);
(b) precision vs the (α : β) parameter pairing at fixed memory.

Shape: Y (with LTR) ≥ N (without) everywhere, with the gap largest at
tight memory.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.experiments.configs import ltc_factory
from repro.metrics.accuracy import precision
from repro.metrics.memory import MemoryBudget, kb

K = 200


def run_pair(stream, truth, mem_kb, alpha, beta):
    exact = truth.top_k_items(K, alpha, beta)
    out = []
    for ltr in (True, False):
        ltc = ltc_factory(
            MemoryBudget(kb(mem_kb)),
            stream,
            alpha=alpha,
            beta=beta,
            longtail_replacement=ltr,
        )()
        stream.run(ltc)
        out.append(precision((r.item for r in ltc.top_k(K)), exact))
    return out  # [with_ltr, without_ltr]


def test_fig08a_ltr_vs_memory(benchmark, bench_network):
    stream, truth = bench_network

    def sweep():
        return [
            (mem, *run_pair(stream, truth, mem, 1.0, 1.0))
            for mem in (4, 8, 16, 32)
        ]

    rows = once(benchmark, sweep)
    emit(
        "fig08",
        ["memory(KB)", "Y (with LTR)", "N (without)"],
        [(m, f"{y:.3f}", f"{n:.3f}") for m, y, n in rows],
        title="Fig 8(a): precision vs memory, alpha=beta=1 (network)",
    )
    for mem, with_ltr, without in rows:
        assert with_ltr >= without - 0.02, f"LTR hurt at {mem}KB"
    # The gap is visible somewhere in the sweep.
    assert any(y > n for _, y, n in rows)


def test_fig08b_ltr_vs_parameters(benchmark, bench_network):
    stream, truth = bench_network
    pairs = [(1.0, 0.0), (1.0, 1.0), (10.0, 1.0), (0.0, 1.0)]

    def sweep():
        return [
            (f"{a:g}:{b:g}", *run_pair(stream, truth, 6, a, b)) for a, b in pairs
        ]

    rows = once(benchmark, sweep)
    emit(
        "fig08",
        ["alpha:beta", "Y (with LTR)", "N (without)"],
        [(p, f"{y:.3f}", f"{n:.3f}") for p, y, n in rows],
        title="Fig 8(b): precision vs parameters at 6KB (network)",
    )
    for pair, with_ltr, without in rows:
        assert with_ltr >= without - 0.03, f"LTR hurt at {pair}"
