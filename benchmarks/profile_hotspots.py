"""cProfile driver for the experiment sweeps: where do the cycles go?

Not a pytest benchmark (no ``bench_`` prefix, so the suite never collects
it) — run it by hand when chasing a regression or sizing the next
optimisation:

    PYTHONPATH=src python benchmarks/profile_hotspots.py
    PYTHONPATH=src python benchmarks/profile_hotspots.py --batched
    PYTHONPATH=src python benchmarks/profile_hotspots.py \
        --lineup persistent --events 200000 --top 30

It profiles one full ``run_and_evaluate`` sweep (the unit every figure
benchmark repeats) and prints the top-N functions by cumulative time.
Comparing the default and ``--batched`` outputs shows exactly which
per-event loops the PR-4 batch paths removed — in per-event mode the
summaries' ``insert`` frames dominate; batched, the numpy kernels and
the remaining replay loops do.

``--kernel`` pins the LTC implementation for the sweep (the line-up
default otherwise).  For the columnar family (``columnar``/``auto``)
the script additionally instruments the four ingest phases — probe /
clean-hit / dirty-replay / harvest — and prints an exclusive-time
breakdown, which is how the segmented-replay work was sized: a chunk is
probed once, its clean prefix aggregates in bulk, the dirty tail runs
the peeling kernel, and the CLOCK harvest closes the chunk.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from typing import Any, Callable, Dict, List, Tuple


#: Columnar ingest phases, in chunk order: (label, method name).
_PHASES: "List[Tuple[str, str]]" = [
    ("probe", "_probe_chunk"),
    ("clean-hit", "_apply_hit_slots"),
    ("dirty-replay", "_replay_dirty"),
    ("harvest", "_harvest_segments"),
]


class PhaseTimer:
    """Exclusive wall-time accumulator for nested phase methods.

    ``_replay_dirty`` calls ``_harvest_segments`` for the chunks it
    finishes itself, so naive per-method totals would double-count: a
    stack tracks the running child time and each phase records only the
    time not already attributed to a nested phase.
    """

    def __init__(self) -> None:
        self.totals: Dict[str, float] = {}
        self.calls: Dict[str, int] = {}
        self._stack: List[List[Any]] = []
        self._restore: List[Tuple[type, str, Any]] = []

    def wrap(self, cls: type, method: str, phase: str) -> None:
        orig = getattr(cls, method)
        timer = self

        def wrapper(instance: Any, *args: Any, **kwargs: Any) -> Any:
            start = time.perf_counter()
            timer._stack.append([phase, 0.0])
            try:
                return orig(instance, *args, **kwargs)
            finally:
                elapsed = time.perf_counter() - start
                _, child = timer._stack.pop()
                timer.totals[phase] = (
                    timer.totals.get(phase, 0.0) + elapsed - child
                )
                timer.calls[phase] = timer.calls.get(phase, 0) + 1
                if timer._stack:
                    timer._stack[-1][1] += elapsed

        setattr(cls, method, wrapper)
        self._restore.append((cls, method, orig))

    def unwrap(self) -> None:
        for cls, method, orig in self._restore:
            setattr(cls, method, orig)
        self._restore.clear()

    def report(self, out: Any) -> None:
        total = sum(self.totals.values())
        print("\ncolumnar ingest phases (exclusive time):", file=out)
        print(
            f"  {'phase':<14}{'calls':>10}{'seconds':>12}{'share':>9}",
            file=out,
        )
        for phase, _ in _PHASES:
            seconds = self.totals.get(phase, 0.0)
            calls = self.calls.get(phase, 0)
            share = seconds / total if total else 0.0
            print(
                f"  {phase:<14}{calls:>10}{seconds:>12.4f}{share:>8.1%}",
                file=out,
            )
        print(f"  {'total':<14}{'':>10}{total:>12.4f}", file=out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Profile one experiment sweep and print the hotspots."
    )
    parser.add_argument(
        "--lineup",
        choices=["frequent", "persistent", "significant"],
        default="frequent",
        help="which comparison line-up to sweep (default: frequent)",
    )
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--distinct", type=int, default=1_000)
    parser.add_argument("--skew", type=float, default=1.0)
    parser.add_argument("--periods", type=int, default=5)
    parser.add_argument("--memory-kb", type=float, default=8.0)
    parser.add_argument("-k", type=int, default=100)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--batched",
        action="store_true",
        help="drive the sweep through the insert_many fast paths",
    )
    parser.add_argument(
        "--kernel",
        choices=["reference", "fast", "columnar", "auto"],
        default=None,
        help=(
            "pin the LTC kernel for the sweep; columnar/auto also print "
            "the per-phase ingest breakdown (default: line-up default)"
        ),
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="functions to print, by cumulative time (default: 20)",
    )
    parser.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "ncalls"],
        default="cumulative",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also dump raw pstats data to PATH (for snakeviz etc.)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    from repro.experiments.configs import (
        default_algorithms_frequent,
        default_algorithms_persistent,
        default_algorithms_significant,
    )
    from repro.experiments.runner import run_and_evaluate
    from repro.metrics.memory import MemoryBudget, kb
    from repro.streams.ground_truth import GroundTruth
    from repro.streams.synthetic import zipf_stream

    stream = zipf_stream(
        num_events=args.events,
        num_distinct=args.distinct,
        skew=args.skew,
        num_periods=args.periods,
        seed=args.seed,
    )
    budget = MemoryBudget(kb(args.memory_kb))
    ltc_options = {} if args.kernel is None else {"kernel": args.kernel}
    if args.lineup == "frequent":
        factories = default_algorithms_frequent(
            budget, stream, args.k, **ltc_options
        )
    elif args.lineup == "persistent":
        factories = default_algorithms_persistent(
            budget, stream, args.k, **ltc_options
        )
    else:
        factories = default_algorithms_significant(
            budget, stream, args.k, 1.0, 1.0, **ltc_options
        )
    # Oracle outside the profile: it is setup, not sweep work.
    truth = GroundTruth(stream)

    mode = "batched" if args.batched else "per-event"
    print(
        f"profiling run_and_evaluate: {args.lineup} line-up, "
        f"{args.events} events ({mode})",
        file=sys.stderr,
    )
    timer: "PhaseTimer | None" = None
    if args.kernel in ("columnar", "auto"):
        from repro.core.columnar import ColumnarLTC

        timer = PhaseTimer()
        for phase, method in _PHASES:
            timer.wrap(ColumnarLTC, method, phase)

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        results = run_and_evaluate(
            factories,
            stream,
            args.k,
            1.0,
            1.0,
            truth=truth,
            batched=args.batched,
        )
    finally:
        profiler.disable()
        if timer is not None:
            timer.unwrap()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if timer is not None:
        timer.report(sys.stdout)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw pstats written to {args.out}", file=sys.stderr)
    for result in results:
        print(
            f"# {result.name}: precision={result.precision:.3f} "
            f"are={result.are:.3g}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
