"""cProfile driver for the experiment sweeps: where do the cycles go?

Not a pytest benchmark (no ``bench_`` prefix, so the suite never collects
it) — run it by hand when chasing a regression or sizing the next
optimisation:

    PYTHONPATH=src python benchmarks/profile_hotspots.py
    PYTHONPATH=src python benchmarks/profile_hotspots.py --batched
    PYTHONPATH=src python benchmarks/profile_hotspots.py \
        --lineup persistent --events 200000 --top 30

It profiles one full ``run_and_evaluate`` sweep (the unit every figure
benchmark repeats) and prints the top-N functions by cumulative time.
Comparing the default and ``--batched`` outputs shows exactly which
per-event loops the PR-4 batch paths removed — in per-event mode the
summaries' ``insert`` frames dominate; batched, the numpy kernels and
the remaining replay loops do.
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Profile one experiment sweep and print the hotspots."
    )
    parser.add_argument(
        "--lineup",
        choices=["frequent", "persistent", "significant"],
        default="frequent",
        help="which comparison line-up to sweep (default: frequent)",
    )
    parser.add_argument("--events", type=int, default=100_000)
    parser.add_argument("--distinct", type=int, default=1_000)
    parser.add_argument("--skew", type=float, default=1.0)
    parser.add_argument("--periods", type=int, default=5)
    parser.add_argument("--memory-kb", type=float, default=8.0)
    parser.add_argument("-k", type=int, default=100)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--batched",
        action="store_true",
        help="drive the sweep through the insert_many fast paths",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=20,
        help="functions to print, by cumulative time (default: 20)",
    )
    parser.add_argument(
        "--sort",
        choices=["cumulative", "tottime", "ncalls"],
        default="cumulative",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also dump raw pstats data to PATH (for snakeviz etc.)",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    args = build_parser().parse_args(argv)

    from repro.experiments.configs import (
        default_algorithms_frequent,
        default_algorithms_persistent,
        default_algorithms_significant,
    )
    from repro.experiments.runner import run_and_evaluate
    from repro.metrics.memory import MemoryBudget, kb
    from repro.streams.ground_truth import GroundTruth
    from repro.streams.synthetic import zipf_stream

    stream = zipf_stream(
        num_events=args.events,
        num_distinct=args.distinct,
        skew=args.skew,
        num_periods=args.periods,
        seed=args.seed,
    )
    budget = MemoryBudget(kb(args.memory_kb))
    if args.lineup == "frequent":
        factories = default_algorithms_frequent(budget, stream, args.k)
    elif args.lineup == "persistent":
        factories = default_algorithms_persistent(budget, stream, args.k)
    else:
        factories = default_algorithms_significant(
            budget, stream, args.k, 1.0, 1.0
        )
    # Oracle outside the profile: it is setup, not sweep work.
    truth = GroundTruth(stream)

    mode = "batched" if args.batched else "per-event"
    print(
        f"profiling run_and_evaluate: {args.lineup} line-up, "
        f"{args.events} events ({mode})",
        file=sys.stderr,
    )
    profiler = cProfile.Profile()
    profiler.enable()
    results = run_and_evaluate(
        factories, stream, args.k, 1.0, 1.0, truth=truth, batched=args.batched
    )
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    stats.strip_dirs().sort_stats(args.sort).print_stats(args.top)
    if args.out:
        stats.dump_stats(args.out)
        print(f"raw pstats written to {args.out}", file=sys.stderr)
    for result in results:
        print(
            f"# {result.name}: precision={result.precision:.3f} "
            f"are={result.are:.3g}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
