"""Extension benchmark — sliding-window LTC on a drifting stream.

Not a paper figure: this evaluates the repository's WindowedLTC extension
(DESIGN.md §6).  Workload: the significant population drifts — half of
the long-lived items retire mid-stream and are replaced by new ones.  The
query asks for the items significant *in the last W periods*.

Shape: the windowed variant identifies the current significant set far
better than the whole-stream LTC, whose retired items keep outranking
the newcomers on accumulated history.
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.core.windowed import WindowedLTC
from repro.metrics.accuracy import precision
from repro.streams.model import PeriodicStream

K = 50
WINDOW = 8
NUM_PERIODS = 48


def build_drifting_stream(seed: int = 51):
    rng = random.Random(seed)
    old_guard = [rng.getrandbits(32) for _ in range(K)]
    new_guard = [rng.getrandbits(32) for _ in range(K)]
    noise = [rng.getrandbits(32) for _ in range(20_000)]
    events = []
    for period in range(NUM_PERIODS):
        active = old_guard if period < NUM_PERIODS // 2 else new_guard
        block = []
        for item in active:
            block += [item] * 10
        block += [rng.choice(noise) for _ in range(500)]
        rng.shuffle(block)
        events += block
    return (
        PeriodicStream(events=events, num_periods=NUM_PERIODS, name="drift"),
        new_guard,
    )


def run_experiment():
    stream, current_truth = build_drifting_stream()

    whole = LTC(
        LTCConfig(
            num_buckets=128,
            bucket_width=8,
            alpha=1.0,
            beta=10.0,
            items_per_period=stream.period_length,
        )
    )
    stream.run(whole)

    windowed = WindowedLTC(
        num_buckets=128,
        window=WINDOW,
        bucket_width=8,
        alpha=1.0,
        beta=10.0,
    )
    stream.run(windowed)

    exact_now = set(current_truth)
    return [
        ("whole-stream LTC", precision((r.item for r in whole.top_k(K)), exact_now)),
        ("windowed LTC", precision((r.item for r in windowed.top_k(K)), exact_now)),
    ]


def test_ext_windowed_drift(benchmark):
    rows = once(benchmark, run_experiment)
    emit(
        "ext_windowed",
        ["variant", "precision vs current significant set"],
        [(n, f"{p:.3f}") for n, p in rows],
        title=f"Extension: drift recovery, window={WINDOW} of {NUM_PERIODS} periods",
    )
    whole, windowed = rows[0][1], rows[1][1]
    assert windowed >= whole + 0.2, "window should clearly beat whole-stream"
    assert windowed >= 0.9
