"""Shared benchmark fixtures: scaled paper workloads and reporting.

Every benchmark regenerates one figure of the paper's evaluation (see
DESIGN.md §5): it runs the same sweep the figure plots, prints the series
as an ASCII table, appends it to ``benchmarks/results/``, asserts the
paper's qualitative shape, and is timed end-to-end by pytest-benchmark
(``pedantic`` with a single round — an experiment is its own unit of work).

Scale: streams are ~25–60k events (paper: 1.5–10M) and memory budgets are
scaled by the same factor, which preserves the cells-per-distinct-item
operating points that determine who wins (DESIGN.md §3).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.plotting import series_grid
from repro.experiments.report import format_table
from repro.streams.datasets import caida_like, network_like, social_like
from repro.streams.ground_truth import GroundTruth

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def bench_caida():
    stream = caida_like(num_events=40_000, num_distinct=10_000, num_periods=40)
    return stream, GroundTruth(stream)


@pytest.fixture(scope="session")
def bench_network():
    stream = network_like(num_events=40_000, num_distinct=12_000, num_periods=50)
    return stream, GroundTruth(stream)


@pytest.fixture(scope="session")
def bench_social():
    stream = social_like(num_events=25_000, num_distinct=5_000, num_periods=25)
    return stream, GroundTruth(stream)


@pytest.fixture(scope="session")
def datasets(bench_caida, bench_network, bench_social):
    return {
        "caida": bench_caida,
        "network": bench_network,
        "social": bench_social,
    }


def emit(figure: str, headers, rows, title: str) -> str:
    """Print a figure's series and persist it under benchmarks/results/."""
    table = format_table(headers, rows, title=title)
    print(f"\n{table}")
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{figure}.txt"
    with path.open("a") as fh:
        fh.write(table + "\n\n")
    return table


def emit_chart(figure, x_labels, series, title, log_scale=False) -> str:
    """Render a sweep as a text chart next to its table (shape at a
    glance in CI logs)."""
    chart = series_grid(
        x_labels, series, height=8, title=title, log_scale=log_scale
    )
    print(f"\n{chart}")
    RESULTS_DIR.mkdir(exist_ok=True)
    with (RESULTS_DIR / f"{figure}.txt").open("a") as fh:
        fh.write(chart + "\n\n")
    return chart


def once(benchmark, func, *args, **kwargs):
    """Time ``func`` exactly once (an experiment run is the unit)."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
