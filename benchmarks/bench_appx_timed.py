"""Appendix experiment — time-driven CLOCK under bursty arrival rates.

Paper §III-B: "In practice, the arriving speed of items could vary a lot.
To adapt to the arriving speed, we can dynamically adjust the scanning
speed by modifying the step size of the pointer p."  This bench drives
the same bursty, timestamped workload through (a) the time-driven CLOCK
(`insert_timed`) and (b) the naive count-driven CLOCK that assumes a
constant arrival rate, and compares persistency accuracy.

Shape: the time-driven variant matches the exact persistencies; the
count-driven variant on rate-varying input drifts (its sweep no longer
aligns with real periods mid-period, although end_period resync keeps it
close — the gap shows in ARE).
"""

from __future__ import annotations

import random

from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.accuracy import average_relative_error, precision
from repro.streams.ground_truth import GroundTruth
from repro.streams.io import TimeBinnedStream

K = 100


def build_timed_workload(seed: int = 41):
    """Timestamped events whose rate varies 20× between periods.

    A fixed core of long-lived items appears (with probability) every
    period — those are the true persistent items — on top of one-shot
    noise whose volume swings wildly between periods.
    """
    rng = random.Random(seed)
    # Core items have graded activity levels so the exact persistency
    # ranking has real separation (uniform activity would make the top-k
    # boundary a pure tie-break, which measures nothing).
    core = [
        (rng.getrandbits(32), 0.25 + 0.75 * (1.0 - rank / 300))
        for rank in range(300)
    ]
    records = []
    num_periods = 40
    for period in range(num_periods):
        rate = 1_500 if period % 4 == 0 else 75  # bursty periods
        for item, activity in core:
            if rng.random() < activity:  # core item active this period
                t = period + rng.random()
                records.append((t, item))
        for _ in range(rate):
            t = period + rng.random()
            records.append((t, rng.getrandbits(32)))
    records.sort()
    return TimeBinnedStream.from_records(records, num_periods), records


def run_experiment():
    stream, records = build_timed_workload()
    truth = GroundTruth(stream)
    exact = truth.top_k_items(K, 0.0, 1.0)

    def config():
        return LTCConfig(
            num_buckets=400,
            bucket_width=8,
            alpha=0.0,
            beta=1.0,
            items_per_period=stream.period_length,
        )

    # (a) time-driven clock.
    timed = LTC(config())
    boundary = 1.0
    next_boundary = boundary
    for t, item in records:
        while t >= next_boundary:
            timed.end_period()
            next_boundary += boundary
        timed.insert_timed(item, timestamp=t, period_seconds=boundary)
    timed.end_period()
    timed.finalize()

    # (b) count-driven clock fed the same time-binned periods.
    counted = LTC(config())
    stream.run(counted)

    rows = []
    for name, ltc in (("time-driven", timed), ("count-driven", counted)):
        prec = precision((r.item for r in ltc.top_k(K)), exact)
        are = average_relative_error(
            ltc.reported_pairs(K), lambda i: truth.significance(i, 0.0, 1.0)
        )
        rows.append((name, prec, are))
    return rows


def test_appx_timed_clock(benchmark):
    rows = once(benchmark, run_experiment)
    emit(
        "appx_timed",
        ["clock drive", "precision", "ARE"],
        [(n, f"{p:.3f}", f"{a:.4g}") for n, p, a in rows],
        title="Appendix: time-driven vs count-driven CLOCK on a bursty trace",
    )
    timed = rows[0]
    counted = rows[1]
    # The time-driven clock handles rate variation at least as well.
    assert timed[1] >= counted[1] - 0.05
    assert timed[2] <= counted[2] + 0.02
    assert timed[1] >= 0.7
