"""Fig. 6 — the long-tail assumption behind Long-tail Replacement.

(a) top-20 item frequencies inside three arbitrary hash buckets (w = 800)
    on the Network dataset;
(b) top-20 item frequencies of each full dataset.

Shape to reproduce: frequencies fall steeply with rank — a pronounced
long tail — both per bucket and per dataset.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.hashing.family import HashFamily, splitmix64


def bucket_top_frequencies(truth, w: int, buckets, top: int = 20):
    """Per-bucket descending frequency lists (the paper's Fig. 6(a))."""
    family = HashFamily(seed=0x17C)
    per_bucket = {b: [] for b in buckets}
    for item in truth.items():
        b = splitmix64(item ^ family.seed) % w
        if b in per_bucket:
            per_bucket[b].append(truth.frequency(item))
    return {
        b: sorted(freqs, reverse=True)[:top] for b, freqs in per_bucket.items()
    }


def test_fig06a_per_bucket_longtail(benchmark, bench_network):
    stream, truth = bench_network
    w, probed = 800, (3, 97, 411)
    result = once(benchmark, bucket_top_frequencies, truth, w, probed)
    rows = []
    for rank in range(20):
        rows.append(
            [rank + 1]
            + [
                result[b][rank] if rank < len(result[b]) else ""
                for b in probed
            ]
        )
    emit(
        "fig06",
        ["rank"] + [f"bucket{b}" for b in probed],
        rows,
        title="Fig 6(a): top-20 frequencies in three buckets (network, w=800)",
    )
    for b in probed:
        freqs = result[b]
        assert len(freqs) >= 5
        # Long tail: the head dominates the 5th-ranked item noticeably.
        assert freqs[0] >= 2 * freqs[min(4, len(freqs) - 1)]


def test_fig06b_per_dataset_longtail(benchmark, datasets):
    def collect():
        return {
            name: truth.frequencies_sorted()[:20]
            for name, (stream, truth) in datasets.items()
        }

    result = once(benchmark, collect)
    rows = [
        [rank + 1] + [result[name][rank] for name in ("caida", "network", "social")]
        for rank in range(20)
    ]
    emit(
        "fig06",
        ["rank", "caida", "network", "social"],
        rows,
        title="Fig 6(b): top-20 frequencies per dataset",
    )
    for name, freqs in result.items():
        assert freqs[0] >= 3 * freqs[19], name
