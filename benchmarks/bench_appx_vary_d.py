"""Appendix experiment — varying the bucket width d.

The paper compares d values in the technical-report appendix and settles
on d = 8 as the default (§V-C).  Shape: accuracy is poor for very small d
(a d=1 bucket cannot protect incumbents), improves through the mid-range,
and flattens — d = 8 sits on the plateau.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.accuracy import average_relative_error, precision
from repro.metrics.memory import MemoryBudget, kb

K = 100
MEM_KB = 8


def sweep(stream, truth):
    exact = truth.top_k_items(K, 1.0, 1.0)
    rows = []
    for d in (1, 2, 4, 8, 16):
        budget = MemoryBudget(kb(MEM_KB))
        ltc = LTC(
            LTCConfig(
                num_buckets=budget.ltc_buckets(d),
                bucket_width=d,
                alpha=1.0,
                beta=1.0,
                items_per_period=stream.period_length,
            )
        )
        stream.run(ltc)
        prec = precision((r.item for r in ltc.top_k(K)), exact)
        are = average_relative_error(
            ltc.reported_pairs(K), lambda i: truth.significance(i, 1.0, 1.0)
        )
        rows.append((d, prec, are))
    return rows


def test_appx_vary_d(benchmark, bench_network):
    stream, truth = bench_network
    rows = once(benchmark, sweep, stream, truth)
    emit(
        "appx_vary_d",
        ["d", "precision", "ARE"],
        [(d, f"{p:.3f}", f"{a:.4g}") for d, p, a in rows],
        title=f"Appendix: LTC precision/ARE vs bucket width d ({MEM_KB}KB, network)",
    )
    by_d = {d: p for d, p, _ in rows}
    # The paper's default d=8 is on the plateau: within noise of the best.
    assert by_d[8] >= max(by_d.values()) - 0.03
    # Very narrow buckets are clearly worse.
    assert by_d[8] > by_d[1]
