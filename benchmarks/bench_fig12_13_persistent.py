"""Figs. 12 & 13 — finding persistent items (α = 0, β = 1).

One sweep regenerates both figures: Fig. 12 plots precision and Fig. 13
plots ARE.  Line-up: LTC vs PIE (with T× memory, i.e. the full budget per
period, as in §V-C) and the BF+sketch+heap adaptations.

The figure uses its own dataset builds whose per-period distinct-item
count matches the paper's operating point relative to PIE's per-period
filter (distinct/period ≳ filter cells at the tightest budget — the
regime where the paper observes PIE "cannot decode any item when the
memory is tight").

Shapes (paper §V-G): LTC has the highest precision and the lowest ARE;
PIE collapses at tight memory despite its T× budget; the ARE gap spans
orders of magnitude.  (Known deviation at bench scale: on the
network-like dataset CU+BF comes within ~0.07 of LTC at one mid-memory
point — see EXPERIMENTS.md.)
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import emit, emit_chart, once
from repro.experiments.configs import default_algorithms_persistent
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb
from repro.streams.datasets import caida_like, network_like, social_like
from repro.streams.ground_truth import GroundTruth

K = 100
ALPHA, BETA = 0.0, 1.0
MEMORY_KBS = (4, 8, 16, 32)


@pytest.fixture(scope="module")
def persistent_datasets():
    builds = {
        "caida": caida_like(num_events=40_000, num_distinct=10_000, num_periods=25),
        "network": network_like(
            num_events=40_000, num_distinct=12_000, num_periods=25
        ),
        "social": social_like(num_events=25_000, num_distinct=5_000, num_periods=16),
    }
    return {name: (stream, GroundTruth(stream)) for name, stream in builds.items()}


def sweep_memory(stream, truth):
    per_memory = []
    for mem in MEMORY_KBS:
        budget = MemoryBudget(kb(mem))
        results = run_and_evaluate(
            default_algorithms_persistent(budget, stream, K),
            stream,
            K,
            ALPHA,
            BETA,
            truth,
        )
        per_memory.append((mem, results))
    return per_memory


def emit_and_check(subplot, dataset_name, per_memory):
    names = [r.name for r in per_memory[0][1]]
    emit(
        "fig12",
        ["memory(KB)"] + names,
        [
            [mem] + [f"{r.precision:.3f}" for r in results]
            for mem, results in per_memory
        ],
        title=f"Fig 12({subplot}): precision vs memory on {dataset_name} (k={K})",
    )
    emit(
        "fig13",
        ["memory(KB)"] + names,
        [[mem] + [f"{r.are:.3g}" for r in results] for mem, results in per_memory],
        title=f"Fig 13({subplot}): ARE vs memory on {dataset_name} (k={K})",
    )
    emit_chart(
        "fig12",
        [mem for mem, _ in per_memory],
        {
            name: [results[i].precision for _, results in per_memory]
            for i, name in enumerate(names)
        },
        title=f"Fig 12({subplot}) precision vs memory ({dataset_name})",
    )
    emit_chart(
        "fig13",
        [mem for mem, _ in per_memory],
        {
            name: [max(results[i].are, 1e-6) for _, results in per_memory]
            for i, name in enumerate(names)
        },
        title=f"Fig 13({subplot}) ARE vs memory ({dataset_name})",
        log_scale=True,
    )
    for mem, results in per_memory:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        assert all(
            ltc.precision >= r.precision - 0.08 for r in by_name.values()
        ), f"{dataset_name}@{mem}KB: LTC not best precision"
        assert all(
            ltc.are <= r.are + 1e-9 for r in by_name.values()
        ), f"{dataset_name}@{mem}KB: LTC not best ARE"
    # Strict dominance at the largest budget (the paper's 100% regime).
    top = {r.name: r for r in per_memory[-1][1]}
    ltc_top = top.pop("LTC")
    assert all(ltc_top.precision >= r.precision for r in top.values())
    # PIE collapses at the tightest budget despite its T× memory.
    tight = {r.name: r for r in per_memory[0][1]}
    assert tight["PIE"].precision < tight["LTC"].precision
    # Orders-of-magnitude ARE gap.
    assert tight["LTC"].are * 100 < max(r.are for r in tight.values()) + 1e-9


@pytest.mark.parametrize(
    "dataset_name,subplot",
    [("caida", "a"), ("network", "b"), ("social", "c")],
)
def test_fig12_13_vs_memory(benchmark, persistent_datasets, dataset_name, subplot):
    stream, truth = persistent_datasets[dataset_name]
    per_memory = once(benchmark, sweep_memory, stream, truth)
    emit_and_check(subplot, dataset_name, per_memory)


def test_fig12d_13d_vs_k(benchmark, persistent_datasets):
    stream, truth = persistent_datasets["network"]
    budget = MemoryBudget(kb(24))

    def sweep():
        per_k = []
        for k in (50, 100, 200, 400):
            results = run_and_evaluate(
                default_algorithms_persistent(budget, stream, k),
                stream,
                k,
                ALPHA,
                BETA,
                truth,
            )
            per_k.append((k, results))
        return per_k

    per_k = once(benchmark, sweep)
    names = [r.name for r in per_k[0][1]]
    emit(
        "fig12",
        ["k"] + names,
        [[k] + [f"{r.precision:.3f}" for r in results] for k, results in per_k],
        title="Fig 12(d): precision vs k on network (24KB)",
    )
    emit(
        "fig13",
        ["k"] + names,
        [[k] + [f"{r.are:.3g}" for r in results] for k, results in per_k],
        title="Fig 13(d): ARE vs k on network (24KB)",
    )
    for k, results in per_k:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        assert all(ltc.precision >= r.precision - 0.08 for r in by_name.values())
        assert all(ltc.are <= r.are + 1e-9 for r in by_name.values())
