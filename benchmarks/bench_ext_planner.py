"""Extension benchmark — memory-planner validation.

Not a paper figure: validates `repro.analysis.recommend_memory` the way
Fig. 7 validates the bound it inverts.  For several target correct rates
the planner picks a table size from the Zipf model alone; we then run a
real LTC at that size on a matching synthetic stream and check the
measured correct rate clears the target (the bound is conservative, so
the plan should always be safe, with modest over-provisioning).
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.analysis.planner import recommend_memory
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream

NUM_DISTINCT, STREAM_LEN, SKEW, K = 4_000, 30_000, 1.0, 100


def run_experiment():
    stream = zipf_stream(
        STREAM_LEN, NUM_DISTINCT, SKEW, num_periods=15, seed=61
    )
    truth = GroundTruth(stream)
    exact_top = truth.top_k(K, 1.0, 0.0)
    rows = []
    for target in (0.5, 0.7, 0.9, 0.95):
        plan = recommend_memory(
            NUM_DISTINCT, STREAM_LEN, SKEW, K, target_rate=target
        )
        ltc = LTC(
            LTCConfig(
                num_buckets=plan.num_buckets,
                bucket_width=plan.bucket_width,
                alpha=1.0,
                beta=0.0,
                items_per_period=stream.period_length,
                longtail_replacement=False,  # the bound's regime
            )
        )
        stream.run(ltc)
        correct = sum(1 for item, sig in exact_top if ltc.query(item) == sig)
        rows.append(
            (target, plan.total_bytes // 1024, plan.guaranteed_rate, correct / K)
        )
    return rows


def test_ext_planner_validation(benchmark):
    rows = once(benchmark, run_experiment)
    emit(
        "ext_planner",
        ["target rate", "planned KB", "guaranteed", "measured"],
        [
            (f"{t:.2f}", mem, f"{g:.3f}", f"{m:.3f}")
            for t, mem, g, m in rows
        ],
        title=f"Planner validation (M={NUM_DISTINCT}, N={STREAM_LEN}, k={K})",
    )
    for target, mem_kb, guaranteed, measured in rows:
        assert guaranteed >= target
        assert measured >= target - 0.03, f"plan missed target {target}"
    # More demanding targets get bigger plans.
    sizes = [mem for _, mem, _, _ in rows]
    assert sizes == sorted(sizes)
