"""Insertion throughput (the paper's speed claim, §I/§V).

The paper's numbers are C++ on a Xeon; absolute Python Mops are not
comparable, so this bench reports *relative* throughput.  Shape to
reproduce: LTC processes insertions in the same speed class as the
counter-based algorithms and is not slower than the multi-hash
sketch+heap pipelines by more than a small factor; PIE pays for its
per-insert fountain encoding.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from benchmarks.conftest import emit, once
from repro.experiments.configs import (
    default_algorithms_frequent,
    default_algorithms_persistent,
)
from repro.metrics.memory import MemoryBudget, kb
from repro.metrics.throughput import (
    ThroughputResult,
    measure_query_throughput,
    measure_throughput,
)

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_throughput.json"


def update_bench_json(section: str, payload: dict) -> None:
    """Merge one benchmark's payload into ``BENCH_throughput.json``.

    The file holds one entry per benchmark under ``sections`` so the
    batched and parallel benches can each refresh their own numbers
    without clobbering the other's.
    """
    data = {}
    if BENCH_JSON.exists():
        try:
            data = json.loads(BENCH_JSON.read_text())
        except ValueError:
            data = {}
    sections = data.get("sections", {})
    sections[section] = payload
    BENCH_JSON.write_text(
        json.dumps(
            {
                "generated_at": time.strftime(
                    "%Y-%m-%dT%H:%M:%SZ", time.gmtime()
                ),
                "sections": sections,
            },
            indent=2,
        )
        + "\n"
    )


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1  # pragma: no cover - non-Linux


def test_throughput_frequent(benchmark, bench_caida):
    stream, _ = bench_caida
    budget = MemoryBudget(kb(8))
    factories = dict(default_algorithms_frequent(budget, stream, 100))
    # The engineering variant with the O(1) hit path (same behaviour,
    # differentially tested) — included to show the Python-level headroom.
    from repro.core.fast_ltc import FastLTC
    from repro.core.config import LTCConfig

    factories["FastLTC"] = lambda: FastLTC(
        LTCConfig(
            num_buckets=budget.ltc_buckets(8),
            bucket_width=8,
            alpha=1.0,
            beta=0.0,
            items_per_period=stream.period_length,
        )
    )

    def run():
        return {
            name: measure_throughput(factory, stream, name=name, repeats=2)
            for name, factory in factories.items()
        }

    results = once(benchmark, run)
    emit(
        "throughput",
        ["algorithm", "Mops", "relative to LTC"],
        [
            (name, f"{r.mops:.3f}", f"{r.mops / results['LTC'].mops:.2f}x")
            for name, r in results.items()
        ],
        title="Throughput, frequent-items line-up (caida, 8KB)",
    )
    ltc = results["LTC"].mops
    # Pure-Python caveat (DESIGN.md §3): dict-based counter algorithms
    # (Freq, LC) benefit from C-implemented dicts, so only the relative
    # claims that survive the language change are asserted — LTC's single
    # hash + d-cell scan beats every multi-hash sketch+heap pipeline.
    assert ltc > results["CU"].mops
    assert ltc > results["Count"].mops
    # CM and LTC are the same speed class in Python; allow 2x noise.
    assert ltc * 2.0 > results["CM"].mops
    # The indexed variant is in the same speed class as the reference
    # (its edge shows on hit-heavy streams; see tests/test_fast_ltc.py —
    # here the claim is only "never materially slower").
    assert results["FastLTC"].mops >= ltc * 0.6


def test_throughput_batched(benchmark):
    """Per-event vs batched ingestion — the amortised fast path.

    A Zipf-1.0 stream with ample table capacity (the hit-heavy regime the
    batch path targets) is driven through both modes for the LTC family,
    and through ``update``/``update_many`` for the sketches.  Results are
    printed, appended to ``benchmarks/results/``, and written as
    machine-readable ``BENCH_throughput.json`` at the repo root so later
    PRs can track the perf trajectory.

    Gate (also the CI throughput smoke): batched must never be slower
    than per-event, and ``FastLTC.insert_many`` must be at least 2x
    per-event ``FastLTC.insert``.
    """
    from repro.core.config import LTCConfig
    from repro.core.fast_ltc import FastLTC
    from repro.core.ltc import LTC
    from repro.sketches.count_min import CountMinSketch
    from repro.sketches.count_sketch import CountSketch
    from repro.sketches.cu import CUSketch
    from repro.streams.synthetic import zipf_stream

    stream = zipf_stream(
        num_events=100_000, num_distinct=1_000, skew=1.0, num_periods=5, seed=42
    )
    config = LTCConfig(
        num_buckets=128,
        bucket_width=8,
        alpha=1.0,
        beta=1.0,
        items_per_period=stream.period_length,
    )
    summaries = {"LTC": lambda: LTC(config), "FastLTC": lambda: FastLTC(config)}
    sketches = {
        "CM": lambda: CountMinSketch(width=2_048, rows=3),
        "CU": lambda: CUSketch(width=2_048, rows=3),
        "Count": lambda: CountSketch(width=2_048, rows=3),
    }

    def measure_sketch(name, factory, batched) -> ThroughputResult:
        best = float("inf")
        for _ in range(3):
            sketch = factory()
            start = time.perf_counter()
            if batched:
                for period in stream.iter_periods():
                    sketch.update_many(period)
            else:
                update = sketch.update
                for item in stream.events:
                    update(item)
            best = min(best, time.perf_counter() - start)
        return ThroughputResult(
            name=name,
            events=len(stream),
            seconds=best,
            mode="batched" if batched else "per-event",
        )

    def run():
        results = {}
        for name, factory in summaries.items():
            results[name] = (
                measure_throughput(factory, stream, name=name, repeats=3),
                measure_throughput(
                    factory, stream, name=name, repeats=3, batched=True
                ),
            )
        for name, factory in sketches.items():
            results[name] = (
                measure_sketch(name, factory, batched=False),
                measure_sketch(name, factory, batched=True),
            )
        return results

    results = once(benchmark, run)
    speedups = {
        name: batched.ops / per_event.ops
        for name, (per_event, batched) in results.items()
    }
    emit(
        "throughput",
        ["algorithm", "per-event Mops", "batched Mops", "speedup"],
        [
            (
                name,
                f"{per_event.mops:.3f}",
                f"{batched.mops:.3f}",
                f"{speedups[name]:.2f}x",
            )
            for name, (per_event, batched) in results.items()
        ],
        title="Batched vs per-event ingestion (zipf-1.0, ample capacity)",
    )
    update_bench_json(
        "batched",
        {
            "benchmark": "benchmarks/bench_throughput.py::test_throughput_batched",
            "stream": {
                "kind": "zipf",
                "skew": 1.0,
                "num_events": len(stream),
                "num_distinct": 1_000,
                "num_periods": stream.num_periods,
                "seed": 42,
            },
            "results": [
                result.to_dict() for pair in results.values() for result in pair
            ],
            "speedups": speedups,
        },
    )
    # The batched path exists purely as an acceleration: never slower.
    for name, speedup in speedups.items():
        assert speedup >= 1.0, f"{name} batched slower than per-event"
    # And the headline claim: the FastLTC batch path is >= 2x per-event.
    assert speedups["FastLTC"] >= 2.0
    # CU's conservative update is order-dependent, so its batch path runs
    # the sort-and-segment fixpoint kernel rather than a one-shot fold —
    # still worth a large factor over the per-event loop.
    cu_floor = float(os.environ.get("REPRO_CU_SPEEDUP_FLOOR", "5.0"))
    assert speedups["CU"] >= cu_floor, (
        f"CU batched speedup {speedups['CU']:.2f}x below the "
        f"{cu_floor:.2f}x floor"
    )


def test_throughput_columnar(benchmark):
    """Columnar segmented kernel vs the scalar kernels, plus ``auto``.

    The workload is period-realistic: 50 CLOCK periods over 500k Zipf-1.0
    events, driven through whole-period ``insert_many`` + ``end_period``.
    A kernel-crossover curve over w in {64, 128, 256, 512, 1024} records
    where the columnar kernel wins: at the wide points each period's
    CLOCK sweep amortises into array slices, and since the segmented
    replay (DESIGN §11.2) the miss-heavy w=128 point holds *parity* with
    FastLTC instead of losing 3x.  Only the deeply contended w=64 point
    (clean fraction ~0.18) still favours the scalar path — which is the
    regime ``kernel="auto"`` detects and routes around.

    Gates (also the CI throughput smoke):

    * **differential** — cells and top-k identical to FastLTC at the
      gated operating points (always enforced; the deep grid lives in
      ``tests/test_columnar.py``);
    * **speedup** — columnar must beat FastLTC batched by
      ``REPRO_COLUMNAR_SPEEDUP_FLOOR`` (default 2.0) at the wide
      (w=512) point;
    * **parity** — columnar must reach
      ``REPRO_COLUMNAR_PARITY_FLOOR`` (default 1.0) x FastLTC batched
      at the miss-heavy (w=128) point;
    * **selection** — ``kernel="auto"`` must end up on the faster
      kernel at both gated points.
    """
    from repro.core import columnar
    from repro.core.auto import AutoLTC
    from repro.core.columnar import ColumnarLTC
    from repro.core.config import LTCConfig
    from repro.core.fast_ltc import FastLTC
    from repro.core.ltc import LTC
    from repro.streams.synthetic import zipf_stream

    if columnar._np is None:  # pragma: no cover - numpy-free box
        import pytest

        pytest.skip("numpy unavailable; columnar kernel runs scalar")

    stream = zipf_stream(
        num_events=500_000, num_distinct=1_000, skew=1.0, num_periods=50,
        seed=42,
    )
    curve = {"w64": 64, "w128": 128, "w256": 256, "w512": 512, "w1024": 1024}
    gated = {"w512": 512, "w128": 128}

    def config_for(buckets: int) -> LTCConfig:
        return LTCConfig(
            num_buckets=buckets,
            bucket_width=8,
            alpha=1.0,
            beta=1.0,
            items_per_period=stream.period_length,
        )

    def run():
        results = {}
        for label, buckets in curve.items():
            config = config_for(buckets)
            results[label] = {
                "FastLTC": measure_throughput(
                    lambda: FastLTC(config), stream, name=f"FastLTC-{label}",
                    repeats=2, batched=True,
                ),
                "ColumnarLTC": measure_throughput(
                    lambda: ColumnarLTC(config), stream,
                    name=f"ColumnarLTC-{label}", repeats=2, batched=True,
                ),
                "AutoLTC": measure_throughput(
                    lambda: AutoLTC(config), stream,
                    name=f"AutoLTC-{label}", repeats=2, batched=True,
                ),
            }
            if label in gated:
                results[label]["LTC"] = measure_throughput(
                    lambda: LTC(config), stream, name=f"LTC-{label}",
                    repeats=2, batched=True,
                )
        return results

    results = once(benchmark, run)
    # Differential + selection gates: outside the timed region, fresh
    # instances at the gated points.
    auto_selection = {}
    for label, buckets in gated.items():
        config = config_for(buckets)
        fast, col, auto = FastLTC(config), ColumnarLTC(config), AutoLTC(config)
        stream.run(fast, batched=True)
        stream.run(col, batched=True)
        stream.run(auto, batched=True)
        assert list(fast.cells()) == list(col.cells()), (
            f"columnar diverged from FastLTC at {label}"
        )
        assert list(fast.cells()) == list(auto.cells()), (
            f"auto kernel diverged from FastLTC at {label}"
        )
        assert fast.top_k(100) == col.top_k(100)
        auto_selection[label] = auto.kernel_in_use
    speedups = {
        label: point["ColumnarLTC"].ops / point["FastLTC"].ops
        for label, point in results.items()
    }
    emit(
        "throughput",
        ["operating point", "engine", "Mops", "vs FastLTC"],
        [
            (
                label,
                name,
                f"{result.mops:.3f}",
                f"{result.ops / point['FastLTC'].ops:.2f}x",
            )
            for label, point in results.items()
            for name, result in point.items()
        ],
        title="Kernel crossover curve (zipf-1.0, 50 periods, d=8)",
    )
    floor = float(os.environ.get("REPRO_COLUMNAR_SPEEDUP_FLOOR", "2.0"))
    parity_floor = float(
        os.environ.get("REPRO_COLUMNAR_PARITY_FLOOR", "1.0")
    )
    update_bench_json(
        "columnar",
        {
            "benchmark": (
                "benchmarks/bench_throughput.py::test_throughput_columnar"
            ),
            "stream": {
                "kind": "zipf",
                "skew": 1.0,
                "num_events": len(stream),
                "num_distinct": 1_000,
                "num_periods": stream.num_periods,
                "seed": 42,
            },
            "bucket_width": 8,
            "gated_point": "w512",
            "parity_point": "w128",
            "speedup_floor": floor,
            "parity_floor": parity_floor,
            "crossover": [
                {
                    "num_buckets": buckets,
                    "fast_mops": results[label]["FastLTC"].mops,
                    "columnar_mops": results[label]["ColumnarLTC"].mops,
                    "auto_mops": results[label]["AutoLTC"].mops,
                    "columnar_vs_fast": speedups[label],
                }
                for label, buckets in curve.items()
            ],
            "auto_selection": auto_selection,
            "results": [
                result.to_dict()
                for point in results.values()
                for result in point.values()
            ],
            "speedups_vs_fast": speedups,
        },
    )
    assert speedups["w512"] >= floor, (
        f"columnar speedup {speedups['w512']:.2f}x over FastLTC is below "
        f"the {floor:.2f}x floor at the gated point"
    )
    assert speedups["w128"] >= parity_floor, (
        f"columnar {speedups['w128']:.2f}x vs FastLTC is below the "
        f"{parity_floor:.2f}x parity floor at the miss-heavy point"
    )
    for label in gated:
        point = results[label]
        faster = (
            "columnar"
            if point["ColumnarLTC"].ops >= point["FastLTC"].ops
            else "fast"
        )
        assert auto_selection[label] == faster, (
            f"auto kernel picked {auto_selection[label]} at {label}; "
            f"measured faster kernel is {faster}"
        )


def test_throughput_baselines(benchmark):
    """Per-event vs batched ingestion for *every* comparison summary.

    PR-4's batched baseline engine: each summary in the paper's
    comparison line-ups (counter-based, sketch+heap, persistent,
    two-structure) is driven through ``PeriodicStream.run`` in both modes
    on the batched bench's Zipf workload at the 8KB operating point.
    Results land in the ``baselines`` section of
    ``BENCH_throughput.json``.

    Gates (also the CI throughput smoke):

    * **differential** — for every summary, the batched run's reported
      pairs are identical to the per-event run's (always enforced; the
      deep state equality lives in ``tests/test_batched_baselines.py``);
    * **speedup** — Space-Saving and the CM sketch+heap pipeline must
      beat per-event by ``REPRO_BASELINE_SPEEDUP_FLOOR`` (default 2.0;
      the CI smoke exports 1.2 for noisy shared runners, the nightly
      job runs the full 2.0), and no summary may be slower batched
      than per-event.
    """
    from repro.combined.two_structure import TwoStructureSignificant
    from repro.persistent.pie import PIE
    from repro.persistent.sketch_persistent import SketchPersistent
    from repro.persistent.small_space import SmallSpacePersistent
    from repro.persistent.ss_persistent import SpaceSavingPersistent
    from repro.sketches.count_min import CountMinSketch
    from repro.sketches.count_sketch import CountSketch
    from repro.sketches.cu import CUSketch
    from repro.sketches.topk import SketchTopK
    from repro.streams.synthetic import zipf_stream
    from repro.summaries.frequent import Frequent
    from repro.summaries.lossy_counting import LossyCounting
    from repro.summaries.space_saving import SpaceSaving

    stream = zipf_stream(
        num_events=100_000, num_distinct=1_000, skew=1.0, num_periods=5, seed=42
    )
    budget = MemoryBudget(kb(8))
    per_period = stream.period_length
    factories = {
        "SS": lambda: SpaceSaving.from_memory(budget),
        "Freq": lambda: Frequent.from_memory(budget),
        "LC": lambda: LossyCounting.from_memory(budget),
        "CM-topk": lambda: SketchTopK.from_memory(CountMinSketch, budget, 100),
        "CU-topk": lambda: SketchTopK.from_memory(CUSketch, budget, 100),
        "Count-topk": lambda: SketchTopK.from_memory(CountSketch, budget, 100),
        "SS+BF": lambda: SpaceSavingPersistent.from_memory(
            budget, expected_per_period=per_period
        ),
        "CM+BF": lambda: SketchPersistent.from_memory(
            CountMinSketch, budget, 100, expected_per_period=per_period
        ),
        "PIE": lambda: PIE.from_memory(budget),
        "SmallSpace": lambda: SmallSpacePersistent.from_memory(
            budget, expected_distinct=1_000
        ),
        "CU+CU": lambda: TwoStructureSignificant.from_memory(
            CUSketch, budget, 100, 1.0, 1.0
        ),
    }

    def run():
        return {
            name: (
                measure_throughput(factory, stream, name=name, repeats=2),
                measure_throughput(
                    factory, stream, name=name, repeats=2, batched=True
                ),
            )
            for name, factory in factories.items()
        }

    results = once(benchmark, run)
    # Differential gate: outside the timed region, fresh instances.
    for name, factory in factories.items():
        one, many = factory(), factory()
        stream.run(one)
        stream.run(many, batched=True)
        assert one.reported_pairs(100) == many.reported_pairs(100), (
            f"{name}: batched ingestion diverged from per-event"
        )
    speedups = {
        name: batched.ops / per_event.ops
        for name, (per_event, batched) in results.items()
    }
    emit(
        "throughput",
        ["algorithm", "per-event Mops", "batched Mops", "speedup"],
        [
            (
                name,
                f"{per_event.mops:.3f}",
                f"{batched.mops:.3f}",
                f"{speedups[name]:.2f}x",
            )
            for name, (per_event, batched) in results.items()
        ],
        title="Batched vs per-event ingestion, baseline line-ups (zipf-1.0, 8KB)",
    )
    floor = float(os.environ.get("REPRO_BASELINE_SPEEDUP_FLOOR", "2.0"))
    update_bench_json(
        "baselines",
        {
            "benchmark": (
                "benchmarks/bench_throughput.py::test_throughput_baselines"
            ),
            "stream": {
                "kind": "zipf",
                "skew": 1.0,
                "num_events": len(stream),
                "num_distinct": 1_000,
                "num_periods": stream.num_periods,
                "seed": 42,
            },
            "memory_kb": 8,
            "speedup_floor": floor,
            "results": [
                result.to_dict() for pair in results.values() for result in pair
            ],
            "speedups": speedups,
        },
    )
    # Never materially slower: the dict-fold paths (Freq, LC) only
    # amortise the interpreter loop, so their wins are a few percent —
    # gate at parity-within-noise rather than a strict 1.0.
    for name, speedup in speedups.items():
        assert speedup >= 0.9, f"{name} batched slower than per-event"
    # Headline floors on the structures with fully vectorised paths.
    for name in ("SS", "CM-topk"):
        assert speedups[name] >= floor, (
            f"{name} batched speedup {speedups[name]:.2f}x below the "
            f"{floor:.2f}x floor"
        )


def test_throughput_obs(benchmark):
    """Observability overhead: the ingest hot paths with metrics on/off.

    The same Zipf workload as the batched bench is driven through the
    reference per-event path (``LTC.insert``) and the indexed batched
    path (``FastLTC.insert_many``), once with observability disabled
    (the default null-registry state) and once with a live registry
    installed.  The ``obs`` section of ``BENCH_throughput.json`` records
    both numbers and their ratio per engine, and the instrumented run's
    registry snapshot is written to ``BENCH_obs_metrics.json`` (uploaded
    as a CI artifact).

    Gates:

    * **enabled overhead** — disabled/enabled Mops ratio must stay under
      the ceiling (default 1.15x; ``REPRO_OBS_OVERHEAD_CEILING``
      overrides for noisy runners);
    * **disabled overhead** — informational by default: the bench records
      how the metrics-off numbers compare to the ``batched`` section's
      previously recorded Mops (the pre-instrumentation trajectory).
      Setting ``REPRO_OBS_CHECK_BASELINE=1`` turns that into a hard
      ≤ 1.05x assertion — only meaningful on the machine that produced
      the recorded numbers, so CI leaves it off.
    """
    from repro import obs
    from repro.core.config import LTCConfig
    from repro.core.fast_ltc import FastLTC
    from repro.core.ltc import LTC
    from repro.streams.synthetic import zipf_stream

    stream = zipf_stream(
        num_events=100_000, num_distinct=1_000, skew=1.0, num_periods=5, seed=42
    )
    config = LTCConfig(
        num_buckets=128,
        bucket_width=8,
        alpha=1.0,
        beta=1.0,
        items_per_period=stream.period_length,
    )
    cases = [
        ("LTC", lambda: LTC(config), False),
        ("FastLTC", lambda: FastLTC(config), True),
    ]
    snapshot_path = BENCH_JSON.parent / "BENCH_obs_metrics.json"

    def run():
        results = {}
        obs.disable()
        try:
            for name, factory, batched in cases:
                off = measure_throughput(
                    factory, stream, name=f"{name}-off", repeats=3, batched=batched
                )
                obs.enable()
                on = measure_throughput(
                    factory, stream, name=f"{name}-on", repeats=3, batched=batched
                )
                snapshot = obs.registry().snapshot()
                obs.disable()
                results[name] = (off, on, snapshot)
        finally:
            obs.disable()
        return results

    results = once(benchmark, run)
    overheads = {
        name: off.mops / on.mops for name, (off, on, _) in results.items()
    }
    # How the metrics-off numbers compare to the recorded pre-run state
    # of the batched section (same stream, same engines).
    recorded = {}
    if BENCH_JSON.exists():
        try:
            sections = json.loads(BENCH_JSON.read_text()).get("sections", {})
            for entry in sections.get("batched", {}).get("results", []):
                recorded[(entry["name"], entry["mode"])] = entry["mops"]
        except ValueError:
            pass
    baseline_keys = {"LTC": ("LTC", "per-event"), "FastLTC": ("FastLTC", "batched")}
    disabled_vs_recorded = {
        name: recorded[key] / results[name][0].mops
        for name, key in baseline_keys.items()
        if key in recorded
    }
    emit(
        "throughput",
        ["engine", "metrics off Mops", "metrics on Mops", "overhead"],
        [
            (name, f"{off.mops:.3f}", f"{on.mops:.3f}", f"{overheads[name]:.3f}x")
            for name, (off, on, _) in results.items()
        ],
        title="Observability overhead (zipf-1.0, metrics on vs off)",
    )
    ceiling = float(os.environ.get("REPRO_OBS_OVERHEAD_CEILING", "1.15"))
    update_bench_json(
        "obs",
        {
            "benchmark": "benchmarks/bench_throughput.py::test_throughput_obs",
            "stream": {
                "kind": "zipf",
                "skew": 1.0,
                "num_events": len(stream),
                "num_distinct": 1_000,
                "num_periods": stream.num_periods,
                "seed": 42,
            },
            "overhead_ceiling": ceiling,
            "results": [
                result.to_dict()
                for off, on, _ in results.values()
                for result in (off, on)
            ],
            "overheads": overheads,
            "disabled_vs_recorded": disabled_vs_recorded,
            "snapshot": str(snapshot_path.name),
        },
    )
    # Persist the instrumented run's registry for the CI artifact and
    # for `repro-ltc stats BENCH_obs_metrics.json`.
    from repro.obs.export import write_json_snapshot

    write_json_snapshot(results["FastLTC"][2], snapshot_path)
    # Counters must reflect the instrumented passes (3 repeats x 100k).
    inserts = next(
        m["value"]
        for m in results["FastLTC"][2]["metrics"]
        if m["name"] == "ltc_inserts_total"
    )
    assert inserts == 3 * len(stream)
    for name, overhead in overheads.items():
        assert overhead <= ceiling, (
            f"{name}: metrics-on overhead {overhead:.3f}x exceeds the "
            f"{ceiling:.2f}x ceiling"
        )
    if os.environ.get("REPRO_OBS_CHECK_BASELINE") == "1":
        for name, ratio in disabled_vs_recorded.items():
            assert ratio <= 1.05, (
                f"{name}: metrics-off throughput is {ratio:.3f}x slower than "
                "the recorded pre-instrumentation numbers (> 1.05x)"
            )


def test_query_throughput(benchmark, bench_caida):
    """Point-query latency of populated summaries (items present+absent)."""
    stream, truth = bench_caida
    budget = MemoryBudget(kb(8))
    factories = default_algorithms_frequent(budget, stream, 100)
    probes = truth.items()[:2_000] + [2**40 + i for i in range(2_000)]

    def run():
        out = {}
        for name, factory in factories.items():
            summary = factory()
            stream.run(summary)
            out[name] = measure_query_throughput(
                summary, probes, name=name, repeats=2
            )
        return out

    results = once(benchmark, run)
    emit(
        "throughput",
        ["algorithm", "queries Mops"],
        [(name, f"{r.mops:.3f}") for name, r in results.items()],
        title="Point-query throughput (caida, 8KB, 50% absent keys)",
    )
    # LTC answers point queries with a single bucket probe — same class
    # as the hash-table baselines, faster than multi-row sketch medians.
    assert results["LTC"].mops > results["Count"].mops


def test_throughput_persistent(benchmark, bench_social):
    stream, _ = bench_social
    budget = MemoryBudget(kb(8))
    factories = default_algorithms_persistent(budget, stream, 100)

    def run():
        return {
            name: measure_throughput(factory, stream, name=name, repeats=2)
            for name, factory in factories.items()
        }

    results = once(benchmark, run)
    emit(
        "throughput",
        ["algorithm", "Mops", "relative to LTC"],
        [
            (name, f"{r.mops:.3f}", f"{r.mops / results['LTC'].mops:.2f}x")
            for name, r in results.items()
        ],
        title="Throughput, persistent-items line-up (social, 8KB)",
    )
    # PIE's fountain encoding makes it the slowest of the line-up.
    assert results["LTC"].mops > results["PIE"].mops
