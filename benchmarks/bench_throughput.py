"""Insertion throughput (the paper's speed claim, §I/§V).

The paper's numbers are C++ on a Xeon; absolute Python Mops are not
comparable, so this bench reports *relative* throughput.  Shape to
reproduce: LTC processes insertions in the same speed class as the
counter-based algorithms and is not slower than the multi-hash
sketch+heap pipelines by more than a small factor; PIE pays for its
per-insert fountain encoding.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.experiments.configs import (
    default_algorithms_frequent,
    default_algorithms_persistent,
)
from repro.metrics.memory import MemoryBudget, kb
from repro.metrics.throughput import measure_query_throughput, measure_throughput


def test_throughput_frequent(benchmark, bench_caida):
    stream, _ = bench_caida
    budget = MemoryBudget(kb(8))
    factories = dict(default_algorithms_frequent(budget, stream, 100))
    # The engineering variant with the O(1) hit path (same behaviour,
    # differentially tested) — included to show the Python-level headroom.
    from repro.core.fast_ltc import FastLTC
    from repro.core.config import LTCConfig

    factories["FastLTC"] = lambda: FastLTC(
        LTCConfig(
            num_buckets=budget.ltc_buckets(8),
            bucket_width=8,
            alpha=1.0,
            beta=0.0,
            items_per_period=stream.period_length,
        )
    )

    def run():
        return {
            name: measure_throughput(factory, stream, name=name, repeats=2)
            for name, factory in factories.items()
        }

    results = once(benchmark, run)
    emit(
        "throughput",
        ["algorithm", "Mops", "relative to LTC"],
        [
            (name, f"{r.mops:.3f}", f"{r.mops / results['LTC'].mops:.2f}x")
            for name, r in results.items()
        ],
        title="Throughput, frequent-items line-up (caida, 8KB)",
    )
    ltc = results["LTC"].mops
    # Pure-Python caveat (DESIGN.md §3): dict-based counter algorithms
    # (Freq, LC) benefit from C-implemented dicts, so only the relative
    # claims that survive the language change are asserted — LTC's single
    # hash + d-cell scan beats every multi-hash sketch+heap pipeline.
    assert ltc > results["CU"].mops
    assert ltc > results["Count"].mops
    # CM and LTC are the same speed class in Python; allow 2x noise.
    assert ltc * 2.0 > results["CM"].mops
    # The indexed variant is in the same speed class as the reference
    # (its edge shows on hit-heavy streams; see tests/test_fast_ltc.py —
    # here the claim is only "never materially slower").
    assert results["FastLTC"].mops >= ltc * 0.6


def test_query_throughput(benchmark, bench_caida):
    """Point-query latency of populated summaries (items present+absent)."""
    stream, truth = bench_caida
    budget = MemoryBudget(kb(8))
    factories = default_algorithms_frequent(budget, stream, 100)
    probes = truth.items()[:2_000] + [2**40 + i for i in range(2_000)]

    def run():
        out = {}
        for name, factory in factories.items():
            summary = factory()
            stream.run(summary)
            out[name] = measure_query_throughput(
                summary, probes, name=name, repeats=2
            )
        return out

    results = once(benchmark, run)
    emit(
        "throughput",
        ["algorithm", "queries Mops"],
        [(name, f"{r.mops:.3f}") for name, r in results.items()],
        title="Point-query throughput (caida, 8KB, 50% absent keys)",
    )
    # LTC answers point queries with a single bucket probe — same class
    # as the hash-table baselines, faster than multi-row sketch medians.
    assert results["LTC"].mops > results["Count"].mops


def test_throughput_persistent(benchmark, bench_social):
    stream, _ = bench_social
    budget = MemoryBudget(kb(8))
    factories = default_algorithms_persistent(budget, stream, 100)

    def run():
        return {
            name: measure_throughput(factory, stream, name=name, repeats=2)
            for name, factory in factories.items()
        }

    results = once(benchmark, run)
    emit(
        "throughput",
        ["algorithm", "Mops", "relative to LTC"],
        [
            (name, f"{r.mops:.3f}", f"{r.mops / results['LTC'].mops:.2f}x")
            for name, r in results.items()
        ],
        title="Throughput, persistent-items line-up (social, 8KB)",
    )
    # PIE's fountain encoding makes it the slowest of the line-up.
    assert results["LTC"].mops > results["PIE"].mops
