"""Extension benchmark — robustness under adversarial workloads.

Not a paper figure: stress-tests every algorithm on the attack patterns
of :mod:`repro.streams.adversarial`.

Shapes:

* **distinct flood** (significance mode): LTC keeps the core at ~100%
  precision while the sketch-based combination collapses — decrement-
  then-expel absorbs one-hit wonders, sketch counters absorb them as
  permanent noise;
* **grinder pressure curve**: LTC's precision degrades monotonically with
  the attacker's budget, and the attack only ever *suppresses* — the
  no-overestimation property holds at every pressure level.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.combined.two_structure import TwoStructureSignificant
from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.accuracy import precision
from repro.metrics.memory import MemoryBudget, kb
from repro.sketches.cu import CUSketch
from repro.streams.adversarial import distinct_flood, grinder
from repro.streams.ground_truth import GroundTruth

ALPHA, BETA = 1.0, 50.0
K = 30


def flood_experiment():
    stream = distinct_flood(num_periods=20, core_items=30, flood_per_period=600)
    truth = GroundTruth(stream)
    exact = truth.top_k_items(K, ALPHA, BETA)
    budget = MemoryBudget(kb(8))

    ltc = LTC.from_memory(
        budget, items_per_period=stream.period_length, alpha=ALPHA, beta=BETA
    )
    stream.run(ltc)
    combined = TwoStructureSignificant.from_memory(
        CUSketch, budget, K, ALPHA, BETA
    )
    stream.run(combined)
    return [
        ("LTC", precision((r.item for r in ltc.top_k(K)), exact)),
        ("CU+CU", precision((r.item for r in combined.top_k(K)), exact)),
    ]


def grinder_experiment():
    rows = []
    for burst in (2, 10, 30, 60):
        stream = grinder(num_periods=10, targets=15, grind_burst=burst)
        truth = GroundTruth(stream)
        exact = truth.top_k_items(15, 1.0, 1.0)
        ltc = LTC(
            LTCConfig(
                num_buckets=16,
                bucket_width=8,
                alpha=1.0,
                beta=1.0,
                items_per_period=stream.period_length,
            )
        )
        stream.run(ltc)
        prec = precision((r.item for r in ltc.top_k(15)), exact)
        overestimates = sum(
            1
            for r in ltc.top_k(50)
            if r.significance > truth.significance(r.item, 1.0, 1.0)
        )
        rows.append((burst, prec, overestimates))
    return rows


def test_adversarial_flood(benchmark):
    rows = once(benchmark, flood_experiment)
    emit(
        "ext_adversarial",
        ["algorithm", "precision under flood"],
        [(n, f"{p:.3f}") for n, p in rows],
        title=f"Adversarial flood, significance mode (k={K}, 8KB)",
    )
    by_name = dict(rows)
    assert by_name["LTC"] >= 0.95
    assert by_name["LTC"] > by_name["CU+CU"]


def test_adversarial_grinder_curve(benchmark):
    rows = once(benchmark, grinder_experiment)
    emit(
        "ext_adversarial",
        ["grind burst", "LTC precision", "overestimated reports"],
        [(b, f"{p:.3f}", o) for b, p, o in rows],
        title="Grinder pressure curve (15 targets, 16x8 cells)",
    )
    precisions = [p for _, p, _ in rows]
    assert precisions[0] >= 0.9
    assert precisions[-1] <= precisions[0]
    # The attack can suppress but never forge mass.
    assert all(o == 0 for _, _, o in rows)
