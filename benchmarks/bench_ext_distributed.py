"""Extension benchmark — distributed persistent-flow monitoring.

Not a paper figure: evaluates the repository's distributed subsystem
(DESIGN.md §6) on the setting that motivates use case 3 — identify the
datacenter-wide top persistent flows from per-site summaries only.

Compared strategies (same logical stream, 8 sites):

* merged LTCs on an item-sharded partition (ingress routing);
* merged LTCs on a random per-packet partition (ECMP spraying);
* coordinated sampling at rates 0.25 / 1.0 (exact but recall-capped /
  exact but expensive).

Shape: merged LTC dominates the accuracy-per-byte trade-off on the
sharded partition; coordinated sampling's recall tracks its rate; random
spraying degrades merged-LTC persistency (the over-count the merge
clips) yet it stays usable.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.core.config import LTCConfig
from repro.distributed.coordinator import (
    MergingCoordinator,
    SamplingCoordinator,
)
from repro.distributed.partition import partition_random, partition_sharded
from repro.metrics.accuracy import precision
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream

K = 100
NUM_SITES = 8


def run_experiment():
    stream = zipf_stream(
        num_events=40_000, num_distinct=16_000, skew=1.1, num_periods=20, seed=12
    )
    truth = GroundTruth(stream)
    exact = truth.top_k_items(K, 0.0, 1.0)

    config = LTCConfig(
        num_buckets=48,
        bucket_width=8,
        alpha=0.0,
        beta=1.0,
        items_per_period=1,  # per-site override
    )

    sharded = partition_sharded(stream, NUM_SITES)
    sprayed = partition_random(stream, NUM_SITES)

    rows = []
    for label, report in [
        ("merge/sharded", MergingCoordinator(config).run(sharded, K)),
        ("merge/sprayed", MergingCoordinator(config).run(sprayed, K)),
        (
            "sample 0.25/sprayed",
            SamplingCoordinator(sample_rate=0.25).run(sprayed, K),
        ),
        (
            "sample 1.0/sprayed",
            SamplingCoordinator(sample_rate=1.0).run(sprayed, K),
        ),
    ]:
        rows.append(
            (
                label,
                precision(report.items(), exact),
                report.communication_bytes,
            )
        )
    return rows


def test_ext_distributed(benchmark):
    rows = once(benchmark, run_experiment)
    emit(
        "ext_distributed",
        ["strategy", "precision", "bytes shipped"],
        [(label, f"{p:.3f}", comm) for label, p, comm in rows],
        title=f"Extension: distributed persistent flows, {NUM_SITES} sites (k={K})",
    )
    by_label = {label: (p, comm) for label, p, comm in rows}
    merge_sharded_p, merge_sharded_b = by_label["merge/sharded"]
    sample_full_p, sample_full_b = by_label["sample 1.0/sprayed"]
    sample_low_p, sample_low_b = by_label["sample 0.25/sprayed"]

    assert merge_sharded_p >= 0.9
    # Full-rate sampling is exact but ships far more bytes than the
    # merged summaries.
    assert sample_full_p >= 0.99
    assert sample_full_b > 2 * merge_sharded_b
    # Quarter-rate sampling's recall collapses toward its rate.
    assert sample_low_p < 0.5
    # Random spraying hurts merged persistency but keeps it usable.
    assert by_label["merge/sprayed"][0] >= 0.5
