"""Extension benchmark — the extra persistent-items baselines.

Not a paper figure: compares LTC against the two related-work adaptations
this repository adds beyond the paper's line-up — the counter-based
SS+BF (`SpaceSavingPersistent`) and coordinated sampling
(`SmallSpacePersistent`, cf. refs [17]/[30]).

Shape: LTC keeps the best precision/ARE; SS+BF is the strongest of the
extras (it inherits Space-Saving's one-sided guarantee over the
deduplicated stream); sampling's recall tracks its effective rate.
"""

from __future__ import annotations

from benchmarks.conftest import emit, once
from repro.experiments.configs import ltc_factory
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.small_space import SmallSpacePersistent
from repro.persistent.ss_persistent import SpaceSavingPersistent

K = 100


def line_up(budget, stream, truth):
    per_period = stream.period_length
    return {
        "LTC": ltc_factory(budget, stream, alpha=0.0, beta=1.0),
        "SS+BF": lambda: SpaceSavingPersistent.from_memory(
            budget, expected_per_period=per_period
        ),
        "Sampling": lambda: SmallSpacePersistent.from_memory(
            budget, expected_distinct=truth.num_distinct
        ),
    }


def sweep(stream, truth):
    rows = []
    for mem in (4, 8, 16, 32):
        budget = MemoryBudget(kb(mem))
        results = run_and_evaluate(
            line_up(budget, stream, truth), stream, K, 0.0, 1.0, truth
        )
        rows.append((mem, results))
    return rows


def test_ext_persistent_extras(benchmark, bench_caida):
    stream, truth = bench_caida
    rows = once(benchmark, sweep, stream, truth)
    names = [r.name for r in rows[0][1]]
    emit(
        "ext_persistent_extras",
        ["memory(KB)"] + [f"{n} prec" for n in names] + [f"{n} ARE" for n in names],
        [
            [mem]
            + [f"{r.precision:.3f}" for r in results]
            + [f"{r.are:.3g}" for r in results]
            for mem, results in rows
        ],
        title=f"Extension: extra persistent baselines on caida (k={K})",
    )
    for mem, results in rows:
        by_name = {r.name: r for r in results}
        ltc = by_name.pop("LTC")
        assert all(
            ltc.precision >= r.precision - 0.05 for r in by_name.values()
        ), f"{mem}KB"
    # Sampling's recall is capped well below LTC at tight memory.
    tight = {r.name: r for r in rows[0][1]}
    assert tight["Sampling"].precision < tight["LTC"].precision
