"""Operational example: trace files, checkpoints, and resuming.

A monitoring pipeline rarely processes one neat in-memory stream: traces
arrive in files, processes restart, and partial state must survive.  This
example exercises the operational surface of the library:

1. write a trace file and load it back (repro.streams.io);
2. run the §III-D long-tail check before enabling Long-tail Replacement;
3. process half the trace, checkpoint the LTC to bytes, "restart",
   restore, and finish — verifying the result is identical to an
   uninterrupted run (repro.core.serialize).

Run:  python examples/checkpoint_pipeline.py
"""

import os
import tempfile

from repro import LTC, LTCConfig
from repro.analysis.distribution import is_long_tailed, sample_frequencies
from repro.core.serialize import from_bytes, to_bytes
from repro.streams import load_items, dump_items
from repro.streams.datasets import caida_like

# --- 1. a trace file ------------------------------------------------------
source = caida_like(num_events=40_000, num_distinct=9_000, num_periods=40)
trace_path = os.path.join(tempfile.mkdtemp(), "packets.txt")
dump_items(source, trace_path)
stream = load_items(trace_path, num_periods=40, name="packets")
print(f"loaded {stream.stats} from {trace_path}")

# --- 2. distribution check ------------------------------------------------
report = is_long_tailed(sample_frequencies(stream.events, sample_size=20_000))
print(f"distribution check: {report}")
use_ltr = report.long_tailed

# --- 3. checkpoint / restore ----------------------------------------------
config = LTCConfig(
    num_buckets=170,
    bucket_width=8,
    alpha=1.0,
    beta=1.0,
    items_per_period=stream.period_length,
    longtail_replacement=use_ltr,
)

periods = list(stream.iter_periods())
half = len(periods) // 2

# First process: half the trace, then checkpoint.
first = LTC(config)
for period in periods[:half]:
    for item in period:
        first.insert(item)
    first.end_period()
blob = to_bytes(first)
print(f"\ncheckpoint after {half} periods: {len(blob)} bytes")

# "Restart": restore and continue with the rest of the trace.
resumed = from_bytes(blob)
for period in periods[half:]:
    for item in period:
        resumed.insert(item)
    resumed.end_period()
resumed.finalize()

# Control: one uninterrupted run.
control = LTC(config)
stream.run(control)

top_resumed = [(r.item, r.significance) for r in resumed.top_k(10)]
top_control = [(r.item, r.significance) for r in control.top_k(10)]
assert top_resumed == top_control, "resume must be lossless"
print("resumed run matches the uninterrupted run exactly — top-5:")
for item, sig in top_resumed[:5]:
    print(f"  item {item:>10}  significance {sig:g}")

os.remove(trace_path)
