"""Use case 1 (paper §I-A): DDoS detection via significant items.

Attack sources are both frequent AND persistent; flash-crowd sources are
frequent but short-lived.  A plain heavy-hitter detector flags both; LTC
with beta > 0 separates them.

Run:  python examples/ddos_detection.py
"""

import random

from repro import LTC, MemoryBudget, kb
from repro.streams import PeriodicStream

rng = random.Random(2024)

NUM_PERIODS = 60
PACKETS_PER_PERIOD = 1_500

# --- synthesize traffic --------------------------------------------------
attackers = [rng.getrandbits(32) for _ in range(20)]  # persistent + frequent
flash_crowd = [rng.getrandbits(32) for _ in range(20)]  # frequent, 3 periods
background = [rng.getrandbits(32) for _ in range(30_000)]  # noise

events = []
for period in range(NUM_PERIODS):
    period_events = []
    for src in attackers:  # every attacker, every period
        period_events += [src] * 18
    if 20 <= period < 23:  # the flash crowd: brief but intense
        for src in flash_crowd:
            period_events += [src] * 120
    while len(period_events) < PACKETS_PER_PERIOD:
        period_events.append(rng.choice(background))
    rng.shuffle(period_events)
    events += period_events[:PACKETS_PER_PERIOD]

stream = PeriodicStream(events=events, num_periods=NUM_PERIODS, name="traffic")
print(stream.stats)

# --- detectors ------------------------------------------------------------
def detect(alpha: float, beta: float, k: int = 40):
    ltc = LTC.from_memory(
        MemoryBudget(kb(16)),
        items_per_period=stream.period_length,
        alpha=alpha,
        beta=beta,
    )
    stream.run(ltc)
    return [r.item for r in ltc.top_k(k)]


def score(label, flagged):
    hits = len(set(flagged) & set(attackers))
    false_crowd = len(set(flagged) & set(flash_crowd))
    print(
        f"{label:<28} attackers {hits}/{len(attackers)}  "
        f"flash-crowd false flags {false_crowd}"
    )


print("\nflagging the top-40 sources:")
score("frequency only (a=1, b=0)", detect(1.0, 0.0))
score("significance (a=1, b=50)", detect(1.0, 50.0))
score("persistency only (a=0, b=1)", detect(0.0, 1.0))

print(
    "\nThe frequency-only detector wastes flags on the flash crowd; "
    "weighting persistency isolates the true attackers."
)
