"""Use case 3 (paper §I-A): congestion mitigation by rerouting flows.

Rerouting a flow costs a forwarding-table update, so we want to reroute
few flows and have them stay big.  Rerouting the currently-largest flows
fails when those are bursts; rerouting *significant* flows (frequent and
persistent) moves traffic that keeps flowing.

We simulate: pick flows to reroute at mid-trace, then measure how much of
the *future* traffic the chosen flows actually carry.

Run:  python examples/network_scheduling.py
"""

from collections import Counter

from repro import LTC, MemoryBudget, kb
from repro.streams import PeriodicStream
from repro.streams.datasets import temporal_zipf_stream

# A flow trace with heavy churn: many large-but-bursty flows plus a core
# of long-lived elephants (burst_fraction controls the mix).
stream = temporal_zipf_stream(
    num_events=80_000,
    num_distinct=20_000,
    skew=1.0,
    num_periods=80,
    burst_fraction=0.5,
    burst_width=0.06,
    seed=99,
    name="flows",
)
print(stream.stats)

REROUTE_BUDGET = 50  # forwarding entries we are willing to touch
split = len(stream.events) // 2
past, future = stream.events[:split], stream.events[split:]
past_stream = PeriodicStream(events=past, num_periods=40, name="past")

# Strategy A: reroute the currently-largest flows (frequency only).
# Strategy B: reroute the significant flows (frequency + persistency).
def choose(alpha: float, beta: float):
    ltc = LTC.from_memory(
        MemoryBudget(kb(16)),
        items_per_period=past_stream.period_length,
        alpha=alpha,
        beta=beta,
    )
    past_stream.run(ltc)
    return {r.item for r in ltc.top_k(REROUTE_BUDGET)}


future_counts = Counter(future)
total_future = len(future)


def coverage(flows):
    return sum(future_counts.get(f, 0) for f in flows) / total_future


largest = choose(1.0, 0.0)
significant = choose(1.0, 40.0)

print(f"\nrerouting {REROUTE_BUDGET} flows chosen at mid-trace:")
print(f"  largest-flows strategy     covers {coverage(largest):6.1%} "
      f"of future traffic")
print(f"  significant-flows strategy covers {coverage(significant):6.1%} "
      f"of future traffic")

stale_largest = sum(1 for f in largest if future_counts.get(f, 0) == 0)
stale_significant = sum(1 for f in significant if future_counts.get(f, 0) == 0)
print(f"\nrerouted flows that never appear again: "
      f"largest={stale_largest}, significant={stale_significant}")
print("\nPersistent-aware selection wastes fewer forwarding-table updates "
      "on bursts that are already over.")
