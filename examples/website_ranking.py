"""Use case 2 (paper §I-A): real-time website popularity ranking.

Popularity blends how often a site is visited (frequency) with whether it
is visited all the time (persistency).  LTC maintains the ranking online
in a few KB; we query it mid-stream and compare against the exact ranking
at the end.

Run:  python examples/website_ranking.py
"""

import random

from repro import LTC, GroundTruth, MemoryBudget, kb, precision
from repro.streams import PeriodicStream

rng = random.Random(7)

NUM_PERIODS = 48  # e.g. 48 half-hour windows of one day
VISITS_PER_PERIOD = 2_000

# Site model: a few evergreen sites (steady traffic all day), some
# nine-to-five sites, and a long tail of one-off pages.
evergreen = {rng.getrandbits(32): 25 for _ in range(30)}
daytime = {rng.getrandbits(32): 45 for _ in range(30)}
longtail = [rng.getrandbits(32) for _ in range(40_000)]

events = []
for period in range(NUM_PERIODS):
    visits = []
    for site, rate in evergreen.items():
        visits += [site] * rate
    if 16 <= period < 36:  # daytime sites only during working hours
        for site, rate in daytime.items():
            visits += [site] * rate
    while len(visits) < VISITS_PER_PERIOD:
        visits.append(rng.choice(longtail))
    rng.shuffle(visits)
    events += visits[:VISITS_PER_PERIOD]

stream = PeriodicStream(events=events, num_periods=NUM_PERIODS, name="visits")
print(stream.stats)

ALPHA, BETA = 1.0, 30.0  # persistency matters: an always-on site ranks high
K = 30

ltc = LTC.from_memory(
    MemoryBudget(kb(24)),
    items_per_period=stream.period_length,
    alpha=ALPHA,
    beta=BETA,
)

# Drive the stream manually so we can snapshot the ranking mid-day.
for period_index, period in enumerate(stream.iter_periods()):
    for visit in period:
        ltc.insert(visit)
    ltc.end_period()
    if period_index == 23:
        midday = [r.item for r in ltc.top_k(5)]
        print(f"\nranking after period 24 (midday), top-5: {midday}")
ltc.finalize()

truth = GroundTruth(stream)
exact = truth.top_k_items(K, ALPHA, BETA)
reported = [r.item for r in ltc.top_k(K)]
print(f"\nend-of-day top-{K} precision vs exact ranking: "
      f"{precision(reported, exact):.0%}")

evergreen_in_top = len(set(reported) & set(evergreen))
print(f"evergreen sites in the reported top-{K}: {evergreen_in_top}/30")
print("\nWith beta=30, steady all-day sites outrank bursty daytime-only "
      "pages of similar volume.")
