"""Extension example: datacenter-wide significant flows via summary merging.

Paper §I-A use case 3 closes with: "If persistent flows all over the data
center can be efficiently identified, we can make a global solution to
schedule the persistent flows."  Each top-of-rack monitor sees only its
own traffic; shipping raw traffic to a collector is impossible, shipping
a few-KB LTC summary is trivial.

Flows are naturally item-sharded across monitors (a flow enters the
fabric at one rack), so the merge is exact up to bucket capacity
(repro.core.merge).

Run:  python examples/datacenter_monitoring.py
"""

import random

from repro import LTC, LTCConfig, GroundTruth, precision
from repro.core.merge import merge
from repro.core.serialize import to_bytes
from repro.streams import PeriodicStream

rng = random.Random(4242)

NUM_RACKS = 8
NUM_PERIODS = 30
FLOWS_PER_RACK = 4_000

# Per-rack traffic: every rack has its own elephants (persistent heavy
# flows), some bursts, and mice.  Period p happens simultaneously on all
# racks, so the global stream interleaves the racks period by period.
rack_periods = []  # rack_periods[rack][period] -> list of events
for rack in range(NUM_RACKS):
    elephants = [rng.getrandbits(32) for _ in range(10)]
    mice = [rng.getrandbits(32) for _ in range(8_000)]
    periods = []
    for period in range(NUM_PERIODS):
        block = []
        for rank, flow in enumerate(elephants):
            # Fixed per-period volume keeps every period the same length,
            # so the count-based period boundaries line up exactly.
            block += [flow] * (14 - rank)
        block += [rng.choice(mice) for _ in range(125)]
        rng.shuffle(block)
        periods.append(block)
    rack_periods.append(periods)

rack_streams = [
    PeriodicStream(
        events=[e for period in periods for e in period],
        num_periods=NUM_PERIODS,
        name=f"rack{rack}",
    )
    for rack, periods in enumerate(rack_periods)
]

# The logical datacenter-wide stream (for ground truth only): period p is
# the union of every rack's period p.
global_events = []
for period in range(NUM_PERIODS):
    for periods in rack_periods:
        global_events += periods[period]
global_stream = PeriodicStream(
    events=global_events, num_periods=NUM_PERIODS, name="datacenter"
)
truth = GroundTruth(global_stream)
print(global_stream.stats)

# Identical LTC config on every monitor (required for merging).
config = LTCConfig(
    num_buckets=96,
    bucket_width=8,
    alpha=1.0,
    beta=25.0,
    items_per_period=rack_streams[0].period_length,
)

monitors = []
for stream in rack_streams:
    ltc = LTC(config)
    stream.run(ltc)
    monitors.append(ltc)

summary_bytes = len(to_bytes(monitors[0]))
print(f"\n{NUM_RACKS} monitors, each shipping a {summary_bytes/1024:.1f}KB summary")

# Central collector: merge and rank.
global_view = merge(monitors, num_periods=NUM_PERIODS)
K = 50
exact = truth.top_k_items(K, 1.0, 25.0)
reported = [r.item for r in global_view.top_k(K)]
print(f"global top-{K} precision from merged summaries: "
      f"{precision(reported, exact):.0%}")

print("\ntop-5 datacenter-wide significant flows (est. vs exact):")
for report in global_view.top_k(5):
    real = truth.significance(report.item, 1.0, 25.0)
    print(f"  flow {report.item:>10}  sig={report.significance:7.0f} "
          f"(real {real:7.0f})")
