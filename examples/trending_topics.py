"""Extension example: trending-topic detection with the sliding-window LTC.

A topic is "trending" when it is significant over the *recent* stream.
The whole-stream LTC of the paper keeps crediting topics for history that
no longer matters; the WindowedLTC extension (repro.core.windowed) ages
both dimensions so yesterday's megatopic falls off once it goes quiet.

Run:  python examples/trending_topics.py
"""

import random

from repro import WindowedLTC, LTC, LTCConfig
from repro.streams import PeriodicStream

rng = random.Random(77)

NUM_PERIODS = 36  # e.g. 36 ten-minute windows of a news cycle
POSTS_PER_PERIOD = 1_200
WINDOW = 6  # "trending" = significant over the last hour

# Three topic generations, each dominating a third of the timeline.
generations = [
    [rng.getrandbits(32) for _ in range(15)] for _ in range(3)
]
chatter = [rng.getrandbits(32) for _ in range(25_000)]

events = []
for period in range(NUM_PERIODS):
    active = generations[period * 3 // NUM_PERIODS]
    posts = []
    for topic in active:
        posts += [topic] * 25
    while len(posts) < POSTS_PER_PERIOD:
        posts.append(rng.choice(chatter))
    rng.shuffle(posts)
    events += posts

stream = PeriodicStream(events=events, num_periods=NUM_PERIODS, name="posts")
print(stream.stats)

windowed = WindowedLTC(
    num_buckets=128, window=WINDOW, bucket_width=8, alpha=1.0, beta=20.0
)
whole = LTC(
    LTCConfig(
        num_buckets=128,
        bucket_width=8,
        alpha=1.0,
        beta=20.0,
        items_per_period=stream.period_length,
    )
)
for summary in (windowed, whole):
    stream.run(summary)

current = set(generations[-1])


def hits(summary, label):
    top = {r.item for r in summary.top_k(15)}
    print(f"{label:<22} current-generation topics in top-15: "
          f"{len(top & current)}/15")


print(f"\nquerying at the end of the cycle (window = {WINDOW} periods):")
hits(windowed, "windowed LTC")
hits(whole, "whole-stream LTC")
print(
    "\nThe whole-stream structure still ranks the earlier generations on "
    "accumulated history; the windowed variant reports what is trending now."
)
