"""Quickstart: find the top-k significant items of a stream with LTC.

Run:  python examples/quickstart.py
"""

from repro import LTC, GroundTruth, MemoryBudget, kb
from repro.streams import network_like

# 1. A workload: a network-trace-like stream of integer item ids divided
#    into periods (see repro.streams.datasets for the generators).
stream = network_like(num_events=50_000, num_distinct=15_000, num_periods=50)
print(stream.stats)

# 2. An LTC sized for a 20KB budget.  significance = alpha·frequency +
#    beta·persistency; here both dimensions count equally.
ltc = LTC.from_memory(
    MemoryBudget(kb(20)),
    items_per_period=stream.period_length,
    alpha=1.0,
    beta=1.0,
)
# Equivalent explicit construction:
#   ltc = LTC(LTCConfig(num_buckets=213, bucket_width=8, alpha=1.0,
#                       beta=1.0, items_per_period=stream.period_length))

# 3. Feed the stream.  stream.run() calls insert() per arrival,
#    end_period() at boundaries and finalize() at the end; you can also
#    drive those three methods yourself.
stream.run(ltc)

# 4. Query.
print(f"\nstructure: {ltc.total_cells} cells, load {ltc.load_factor():.0%}")
print("\ntop-10 significant items (est. vs exact):")
truth = GroundTruth(stream)
for report in ltc.top_k(10):
    real = truth.significance(report.item, 1.0, 1.0)
    print(
        f"  item {report.item:>10}  "
        f"sig={report.significance:7.0f} (real {real:7.0f})  "
        f"f={report.frequency:6.0f}  p={report.persistency:4.0f}"
    )

# 5. Point queries.
item = ltc.top_k(1)[0].item
f, p = ltc.estimate(item)
print(f"\npoint query for {item}: frequency≈{f}, persistency≈{p}")
