"""CI smoke for the serving tier — stdlib only, drives the real CLI.

Starts ``repro-ltc serve`` as a subprocess on an ephemeral port, ingests
a seeded stream over HTTP, exercises ``/top_k`` / ``/query`` /
``/significant`` / ``/metrics`` (with the oracle self-check enabled, so
every answer is verified byte-equal to a full table scan in-process),
sends SIGTERM, and asserts a clean exit with a restorable snapshot on
disk.  Exit code 0 = all checks passed.

Run from the repo root::

    python -m tools.serve_smoke
"""

from __future__ import annotations

import json
import os
import random
import re
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
TIMEOUT = 60.0


def _get(port: int, path: str) -> dict:
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as rsp:
        return json.loads(rsp.read())


def _get_text(port: int, path: str) -> str:
    url = f"http://127.0.0.1:{port}{path}"
    with urllib.request.urlopen(url, timeout=10) as rsp:
        return rsp.read().decode()


def _post(port: int, path: str, doc: dict) -> dict:
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=json.dumps(doc).encode(),
        method="POST",
    )
    with urllib.request.urlopen(req, timeout=10) as rsp:
        return json.loads(rsp.read())


def main() -> int:
    snapdir = tempfile.mkdtemp(prefix="serve-smoke-")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (os.path.join(REPO, "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--num-buckets",
            "64",
            "--bucket-width",
            "4",
            "--items-per-period",
            "2000",
            "--snapshot-dir",
            snapdir,
            "--snapshot-every",
            "2",
            "--check-oracle",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        assert proc.stdout is not None
        deadline = time.monotonic() + TIMEOUT
        port = None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise SystemExit(f"server exited early (rc={proc.poll()})")
            match = re.search(r"serving on [\d.]+:(\d+)", line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise SystemExit("server never reported its port")
        print(f"serve_smoke: server up on port {port}")

        rng = random.Random(2026)
        total = 0
        for _ in range(5):
            batch = [rng.randrange(500) for _ in range(2000)]
            rsp = _post(port, "/ingest", {"items": batch})
            total += rsp["queued"]
        while time.monotonic() < deadline:
            stats = _get(port, "/stats")
            if stats["queued"] == 0:
                break
            time.sleep(0.05)
        else:
            raise SystemExit(f"ingest never drained: {stats}")
        assert stats["ingested"] == total, stats
        assert stats["periods"] == total // 2000, stats
        print(f"serve_smoke: ingested {total} events, stats={stats}")

        top = _get(port, "/top_k?k=10")
        assert len(top["results"]) == 10, top
        ranked = [r["significance"] for r in top["results"]]
        assert ranked == sorted(ranked, reverse=True), top
        point = _get(port, f"/query/{top['results'][0]['item']}")
        assert point["tracked"] is True, point
        assert point["significance"] == top["results"][0]["significance"]
        sig = _get(port, "/significant?threshold=5")
        assert all(r["significance"] >= 5 for r in sig["results"]), sig
        metrics = _get_text(port, "/metrics")
        assert "serve_requests_total" in metrics
        assert "ltc_inserts_total" in metrics
        # every one of those answers was oracle-verified server-side
        assert _get(port, "/stats")["oracle_checks"] >= 3
        print("serve_smoke: query endpoints + metrics verified")
    except BaseException:
        proc.kill()
        proc.wait(timeout=10)
        out = proc.stdout.read() if proc.stdout else ""
        print(f"serve_smoke: server output:\n{out}", file=sys.stderr)
        raise

    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=30)
    if proc.returncode != 0:
        print(f"serve_smoke: unclean exit {proc.returncode}:\n{out}")
        return 1
    snaps = sorted(os.listdir(snapdir))
    if not snaps:
        print("serve_smoke: no snapshot written on shutdown")
        return 1
    # the snapshot must be restorable and non-trivial
    sys.path.insert(0, os.path.join(REPO, "src"))
    from repro.serve.snapshots import SnapshotStore

    restored = SnapshotStore(snapdir).restore()
    if restored is None or len(restored) == 0:
        print(f"serve_smoke: snapshot not restorable ({snaps})")
        return 1
    print(
        f"serve_smoke: clean shutdown, snapshots={snaps}, "
        f"restored {len(restored)} tracked cells — OK"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
