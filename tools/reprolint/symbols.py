"""Pass 1: the project-wide symbol index and call graph.

Everything reprolint knows *across* files lives here.  One
:class:`SymbolIndex` is built per lint invocation from every parsed
module and exposes:

* the **class index** (class name → methods, bases, abstractness) with
  transitive ancestor resolution — the same structure R001 has always
  used, now shared by the dataflow rules;
* a **function table** keyed by qualified name (``module:Class.method``)
  with per-function facts: async-ness, decorators (``functools.wraps``
  and friends are recorded so wrapper functions stay recognisable),
  classmethod/staticmethod flags;
* **import alias maps** per module (``import numpy as np``,
  ``from repro.core.ltc import LTC``) so names resolve across modules;
* **attribute-type inference** per class — ``self.snapshots =
  snapshots`` where ``__init__`` annotates ``snapshots:
  Optional[SnapshotStore]``, or ``self.index = ServingIndex(ltc)``
  directly — so ``self.snapshots.save()`` resolves to
  ``SnapshotStore.save``;
* the **call graph**: :meth:`SymbolIndex.callees` resolves each call
  site in a function to an internal :class:`FunctionInfo` (via local
  aliases, module functions, from-imports, ``self.m()`` through the MRO,
  ``super().m()``, ``ClassName.m(...)``, bound-method aliases like
  ``place = self._place``, ``self.attr.m()`` through attr types, and
  ``cls(...)`` in classmethods) or to a dotted external name
  (``time.sleep``) when the target lives outside the linted tree.

Resolution is best-effort and name-based — class names are unique in
this repository, which is exactly the kind of assumption a
*repo-specific* linter is allowed to make.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.diagnostics import Waivers

# --------------------------------------------------------------- classes


@dataclass
class ClassInfo:
    """Pass-1 summary of one class definition."""

    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, int] = field(default_factory=dict)  # name -> lineno
    abstract_methods: Set[str] = field(default_factory=set)


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _decorator_names(
    func: "ast.FunctionDef | ast.AsyncFunctionDef",
) -> List[str]:
    names = []
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Attribute):
            names.append(target.attr)
        elif isinstance(target, ast.Name):
            names.append(target.id)
    return names


def _is_abstract(func: ast.FunctionDef) -> bool:
    return any(
        name in ("abstractmethod", "abstractproperty")
        for name in _decorator_names(func)
    )


def _collect_classes(tree: ast.Module, path: str) -> List[ClassInfo]:
    classes = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(node.name, path, node.lineno, bases=_base_names(node))
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = item.lineno
                if isinstance(item, ast.FunctionDef) and _is_abstract(item):
                    info.abstract_methods.add(item.name)
        classes.append(info)
    return classes


class ClassIndex:
    """Project-wide class lookup with transitive ancestor resolution."""

    def __init__(self, classes: Iterable[ClassInfo]):
        self._by_name: Dict[str, ClassInfo] = {}
        for info in classes:
            # First definition wins; duplicates across fixture trees are
            # fine because lookups stay within one lint invocation.
            self._by_name.setdefault(info.name, info)

    def get(self, name: str) -> Optional[ClassInfo]:
        return self._by_name.get(name)

    def ancestors(self, info: ClassInfo) -> List[ClassInfo]:
        """Transitive base classes resolvable inside the linted tree."""
        out: List[ClassInfo] = []
        seen = {info.name}
        stack = list(info.bases)
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            resolved = self._by_name.get(base)
            if resolved is not None:
                out.append(resolved)
                stack.extend(resolved.bases)
        return out

    def descends_from(self, info: ClassInfo, root: str) -> bool:
        return any(anc.name == root for anc in self.ancestors(info))

    def concrete_method(self, info: ClassInfo, method: str) -> bool:
        """Whether ``method`` is available and concrete on ``info``."""
        if method in info.methods:
            return method not in info.abstract_methods
        for anc in self.ancestors(info):
            if method in anc.methods:
                return method not in anc.abstract_methods
        return False

    def override_below(self, info: ClassInfo, method: str, root: str) -> bool:
        """Whether ``method`` is (re)defined on ``info`` or an ancestor
        strictly below ``root`` in the hierarchy."""
        if method in info.methods and info.name != root:
            return True
        return any(
            method in anc.methods for anc in self.ancestors(info) if anc.name != root
        )


# -------------------------------------------------------------- functions


@dataclass
class FunctionInfo:
    """Pass-1 summary of one function or method definition."""

    qualname: str  # "module:Class.method" or "module:func"
    name: str
    module: str
    path: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    cls: Optional[str] = None  # enclosing class name, if a method
    is_async: bool = False
    decorators: List[str] = field(default_factory=list)
    is_classmethod: bool = False
    is_staticmethod: bool = False


@dataclass
class CallSite:
    """One resolved call site inside a function body."""

    node: ast.Call
    target: Optional[FunctionInfo] = None  # internal resolution, if any
    external: Optional[str] = None  # dotted name for external targets


def module_name_for(path: str) -> str:
    """Dotted module name for ``path`` (repo-relative).

    ``src/`` is a source root, so ``src/repro/core/ltc.py`` maps to
    ``repro.core.ltc``; everything else (``tools/``, fixtures) keeps its
    full dotted path.  Resolution only needs internal names to agree
    with how the code imports them.
    """
    parts = os.path.normpath(path).split(os.sep)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p)


def _annotation_type(node: Optional[ast.expr]) -> Optional[str]:
    """Best-effort class name out of an annotation expression.

    Unwraps ``Optional[X]``, ``X | None``, and quoted forward refs; dotted
    annotations keep their dots (``queue.Queue``).
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = node.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else ""
        )
        if base_name == "Optional":
            return _annotation_type(node.slice)
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant) and side.value is None):
                return _annotation_type(side)
        return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        value = _annotation_type(node.value)
        return f"{value}.{node.attr}" if value else node.attr
    return None


class _ModuleScope:
    """Per-module name environment: imports and module-level defs."""

    def __init__(self, module: str) -> None:
        self.module = module
        #: alias -> dotted target ("numpy", "repro.core.ltc.LTC", ...)
        self.imports: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Set[str] = set()

    def record_import(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                self.imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: resolve against this module's package.
                package = self.module.split(".")
                package = package[: len(package) - node.level]
                base = ".".join(package + ([node.module] if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                self.imports[alias.asname or alias.name] = (
                    f"{base}.{alias.name}" if base else alias.name
                )


class SymbolIndex:
    """The cross-module symbol index built in pass 1."""

    #: Container-mutating method names treated as may-writes of the
    #: receiver (R009's conservative side).
    MUTATING_METHODS = frozenset(
        {
            "append",
            "extend",
            "insert",
            "pop",
            "popleft",
            "appendleft",
            "remove",
            "clear",
            "add",
            "discard",
            "update",
            "setdefault",
            "sort",
            "reverse",
            "fill",
        }
    )

    def __init__(self, files: Sequence[Tuple[str, ast.Module, str]]) -> None:
        """``files`` is a sequence of ``(path, tree, source)`` triples."""
        self.paths: List[str] = [path for path, _, _ in files]
        self.trees: Dict[str, ast.Module] = {p: t for p, t, _ in files}
        self.sources: Dict[str, str] = {p: s for p, _, s in files}
        self.waivers: Dict[str, Waivers] = {
            p: Waivers(s) for p, _, s in files
        }
        self.per_file_classes: Dict[str, List[ClassInfo]] = {}
        all_classes: List[ClassInfo] = []
        for path, tree, _ in files:
            classes = _collect_classes(tree, path)
            self.per_file_classes[path] = classes
            all_classes.extend(classes)
        self.classes = ClassIndex(all_classes)

        self.modules: Dict[str, _ModuleScope] = {}
        self.module_of_path: Dict[str, str] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        #: class name -> method name -> FunctionInfo (own methods only)
        self.methods: Dict[str, Dict[str, FunctionInfo]] = {}
        #: class name -> attr name -> inferred type name
        self.attr_types: Dict[str, Dict[str, str]] = {}
        for path, tree, _ in files:
            self._index_module(path, tree)
        for path, tree, _ in files:
            for node in ast.walk(tree):
                if isinstance(node, ast.ClassDef):
                    self._infer_attr_types(node)

    # ------------------------------------------------------------ pass 1

    def _index_module(self, path: str, tree: ast.Module) -> None:
        module = module_name_for(path)
        scope = self.modules.setdefault(module, _ModuleScope(module))
        self.module_of_path[path] = module
        for node in tree.body:
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                scope.record_import(node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info = self._make_function(node, module, path, cls=None)
                scope.functions[node.name] = info
            elif isinstance(node, ast.ClassDef):
                scope.classes.add(node.name)
                table = self.methods.setdefault(node.name, {})
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        table[item.name] = self._make_function(
                            item, module, path, cls=node.name
                        )

    def _make_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        module: str,
        path: str,
        cls: Optional[str],
    ) -> FunctionInfo:
        decorators = _decorator_names(node)
        qual = f"{module}:{cls}.{node.name}" if cls else f"{module}:{node.name}"
        info = FunctionInfo(
            qualname=qual,
            name=node.name,
            module=module,
            path=path,
            node=node,
            cls=cls,
            is_async=isinstance(node, ast.AsyncFunctionDef),
            decorators=decorators,
            is_classmethod="classmethod" in decorators,
            is_staticmethod="staticmethod" in decorators,
        )
        self.functions[qual] = info
        return info

    def _infer_attr_types(self, node: ast.ClassDef) -> None:
        """Infer ``self.attr`` types from ctor annotations/constructions."""
        table = self.attr_types.setdefault(node.name, {})
        for item in node.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            params: Dict[str, str] = {}
            for arg in item.args.args + item.args.kwonlyargs:
                inferred = _annotation_type(arg.annotation)
                if inferred:
                    params[arg.arg] = inferred
            for sub in ast.walk(item):
                target: Optional[ast.expr] = None
                value: Optional[ast.expr] = None
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    target, value = sub.targets[0], sub.value
                elif isinstance(sub, ast.AnnAssign):
                    target, value = sub.target, sub.value
                    if isinstance(target, ast.Attribute):
                        anno = _annotation_type(sub.annotation)
                        if anno and _is_self_attr(target):
                            table.setdefault(target.attr, anno)
                if (
                    target is None
                    or not isinstance(target, ast.Attribute)
                    or not _is_self_attr(target)
                ):
                    continue
                if isinstance(value, ast.Name) and value.id in params:
                    table.setdefault(target.attr, params[value.id])
                elif isinstance(value, ast.Call):
                    ctor = value.func
                    if isinstance(ctor, ast.Name):
                        table.setdefault(target.attr, ctor.id)
                    elif isinstance(ctor, ast.Attribute):
                        dotted = _annotation_type(ctor)
                        if dotted:
                            table.setdefault(target.attr, dotted)

    # -------------------------------------------------------- resolution

    def resolve_class_name(self, name: str, module: str) -> Optional[ClassInfo]:
        """Resolve ``name`` in ``module`` to a linted class, if any."""
        info = self.classes.get(name)
        if info is not None:
            return info
        scope = self.modules.get(module)
        if scope and name in scope.imports:
            return self.classes.get(scope.imports[name].rsplit(".", 1)[-1])
        return None

    def method_on(self, cls: str, name: str) -> Optional[FunctionInfo]:
        """Look ``name`` up on ``cls`` through the MRO."""
        own = self.methods.get(cls, {}).get(name)
        if own is not None:
            return own
        info = self.classes.get(cls)
        if info is None:
            return None
        for anc in self.classes.ancestors(info):
            found = self.methods.get(anc.name, {}).get(name)
            if found is not None:
                return found
        return None

    def attr_type(self, cls: str, attr: str) -> Optional[str]:
        """Inferred type name of ``self.<attr>`` on ``cls`` (MRO-aware)."""
        found = self.attr_types.get(cls, {}).get(attr)
        if found is not None:
            return found
        info = self.classes.get(cls)
        if info is None:
            return None
        for anc in self.classes.ancestors(info):
            found = self.attr_types.get(anc.name, {}).get(attr)
            if found is not None:
                return found
        return None

    def bound_method_aliases(
        self, fn: FunctionInfo
    ) -> Dict[str, str]:
        """Locals bound to ``self.<method>`` (``place = self._place``)."""
        aliases: Dict[str, str] = {}
        if fn.cls is None:
            return aliases
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Attribute)
                and _is_self_attr(sub.value)
                and self.method_on(fn.cls, sub.value.attr) is not None
            ):
                aliases[sub.targets[0].id] = sub.value.attr
        return aliases

    def callees(self, fn: FunctionInfo) -> List[CallSite]:
        """Resolve every call site in ``fn`` (best effort)."""
        scope = self.modules.get(fn.module)
        method_aliases = self.bound_method_aliases(fn)
        out: List[CallSite] = []
        for call in (n for n in ast.walk(fn.node) if isinstance(n, ast.Call)):
            out.append(self._resolve_call(call, fn, scope, method_aliases))
        return out

    def _resolve_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        scope: Optional[_ModuleScope],
        method_aliases: Dict[str, str],
    ) -> CallSite:
        func = call.func
        if isinstance(func, ast.Name):
            name = func.id
            if fn.cls and name in method_aliases:
                return CallSite(call, self.method_on(fn.cls, method_aliases[name]))
            if fn.cls and fn.is_classmethod and name == "cls":
                return CallSite(call, self.method_on(fn.cls, "__init__"))
            if scope and name in scope.functions:
                return CallSite(call, scope.functions[name])
            if scope and name in scope.classes:
                return CallSite(call, self.method_on(name, "__init__"))
            if scope and name in scope.imports:
                dotted = scope.imports[name]
                resolved = self._resolve_dotted(dotted)
                if resolved is not None:
                    return CallSite(call, resolved)
                return CallSite(call, external=dotted)
            return CallSite(call, external=name)
        if not isinstance(func, ast.Attribute):
            return CallSite(call)
        base = func.value
        method = func.attr
        if isinstance(base, ast.Name):
            if base.id == "self" and fn.cls:
                target = self.method_on(fn.cls, method)
                if target is not None:
                    return CallSite(call, target)
                return CallSite(call, external=f"self.{method}")
            if base.id == "cls" and fn.cls:
                target = self.method_on(fn.cls, method)
                if target is not None:
                    return CallSite(call, target)
            resolved_cls = self.resolve_class_name(
                base.id, fn.module
            ) if scope and (
                base.id in scope.classes or base.id in scope.imports
            ) else None
            if resolved_cls is not None:
                target = self.method_on(resolved_cls.name, method)
                if target is not None:
                    return CallSite(call, target)
            if scope and base.id in scope.imports:
                return CallSite(
                    call, external=f"{scope.imports[base.id]}.{method}"
                )
            return CallSite(call, external=f"{base.id}.{method}")
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
            and fn.cls
        ):
            info = self.classes.get(fn.cls)
            if info is not None:
                for anc in self.classes.ancestors(info):
                    found = self.methods.get(anc.name, {}).get(method)
                    if found is not None:
                        return CallSite(call, found)
            return CallSite(call, external=f"super().{method}")
        if isinstance(base, ast.Attribute) and _is_self_attr(base) and fn.cls:
            attr_cls = self.attr_type(fn.cls, base.attr)
            if attr_cls is not None:
                if self.classes.get(attr_cls) is not None:
                    target = self.method_on(attr_cls, method)
                    if target is not None:
                        return CallSite(call, target)
                return CallSite(call, external=f"{attr_cls}.{method}")
            return CallSite(call, external=f"self.{base.attr}.{method}")
        return CallSite(call)

    def _resolve_dotted(self, dotted: str) -> Optional[FunctionInfo]:
        """Resolve a from-import target to an internal function/ctor."""
        if "." not in dotted:
            return None
        module, leaf = dotted.rsplit(".", 1)
        scope = self.modules.get(module)
        if scope is None:
            return None
        if leaf in scope.functions:
            return scope.functions[leaf]
        if leaf in scope.classes:
            return self.method_on(leaf, "__init__")
        return None

    # ---------------------------------------------------- write tracking

    def strict_writes(self, fn: FunctionInfo) -> Set[str]:
        """``self.<attr>`` names assigned in ``fn`` (incl. subscripts,
        augmented assignment, and writes through local array aliases
        like ``freqs = self._freqs; freqs[i] = v``)."""
        aliases = self._array_aliases(fn)
        writes: Set[str] = set()
        for sub in ast.walk(fn.node):
            targets: List[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = list(sub.targets)
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                targets = [sub.target]
            for target in targets:
                for name in self._written_attrs(target, aliases):
                    writes.add(name)
        return writes

    def may_writes(self, fn: FunctionInfo) -> Set[str]:
        """Attrs conservatively *possibly* mutated by ``fn``: ``self.X``
        passed as a call argument, or receiving a container-mutating
        method call (``self.X.append(...)``, ``heapq.heappush(self.X,
        ...)``)."""
        aliases = self._array_aliases(fn)

        def attr_of(node: ast.expr) -> Optional[str]:
            if isinstance(node, ast.Attribute) and _is_self_attr(node):
                return node.attr
            if isinstance(node, ast.Name) and node.id in aliases:
                return aliases[node.id]
            return None

        writes: Set[str] = set()
        for call in (n for n in ast.walk(fn.node) if isinstance(n, ast.Call)):
            func = call.func
            if isinstance(func, ast.Attribute) and func.attr in self.MUTATING_METHODS:
                name = attr_of(func.value)
                if name:
                    writes.add(name)
            for arg in list(call.args) + [kw.value for kw in call.keywords]:
                name = attr_of(arg)
                if name:
                    writes.add(name)
                elif isinstance(arg, ast.Subscript):
                    name = attr_of(arg.value)
                    if name:
                        writes.add(name)
        return writes

    def _array_aliases(self, fn: FunctionInfo) -> Dict[str, str]:
        """Locals bound to ``self.<attr>`` (data aliases, not methods)."""
        aliases: Dict[str, str] = {}
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Assign)
                and len(sub.targets) == 1
                and isinstance(sub.targets[0], ast.Name)
                and isinstance(sub.value, ast.Attribute)
                and _is_self_attr(sub.value)
            ):
                if fn.cls and self.method_on(fn.cls, sub.value.attr) is not None:
                    continue  # bound-method alias, not a data alias
                aliases[sub.targets[0].id] = sub.value.attr
        return aliases

    def _written_attrs(
        self, target: ast.expr, aliases: Dict[str, str]
    ) -> List[str]:
        if isinstance(target, ast.Tuple):
            out = []
            for elt in target.elts:
                out.extend(self._written_attrs(elt, aliases))
            return out
        if isinstance(target, ast.Subscript):
            target = target.value
            if isinstance(target, ast.Name) and target.id in aliases:
                return [aliases[target.id]]
        if isinstance(target, ast.Attribute) and _is_self_attr(target):
            return [target.attr]
        return []


def _is_self_attr(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )
