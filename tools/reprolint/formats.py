"""Output renderers: text, JSON, and SARIF 2.1.0.

Text is the classic ``path:line:col: RULE message`` stream plus a
summary line.  JSON is a small stable document for scripting.  SARIF
feeds GitHub code-scanning upload so CI findings render as inline
annotations on pull requests.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.rules import SUMMARIES

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(diagnostics: Sequence[Diagnostic]) -> str:
    lines: List[str] = [diag.render() for diag in diagnostics]
    if diagnostics:
        lines.append(f"reprolint: {len(diagnostics)} violation(s)")
    else:
        lines.append("reprolint: clean")
    return "\n".join(lines)


def render_json(diagnostics: Sequence[Diagnostic]) -> str:
    return json.dumps(
        {
            "tool": "reprolint",
            "count": len(diagnostics),
            "diagnostics": [
                {
                    "path": d.path,
                    "line": d.line,
                    "col": d.col,
                    "rule": d.rule,
                    "message": d.message,
                }
                for d in diagnostics
            ],
        },
        indent=2,
        sort_keys=True,
    )


def render_sarif(diagnostics: Sequence[Diagnostic]) -> str:
    rule_ids = sorted(SUMMARIES)
    rule_index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    results = [
        {
            "ruleId": d.rule,
            "ruleIndex": rule_index.get(d.rule, -1),
            "level": "error",
            "message": {"text": d.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": d.path.replace("\\", "/"),
                            "uriBaseId": "SRCROOT",
                        },
                        "region": {
                            "startLine": d.line,
                            # SARIF columns are 1-based; ast's are 0-based.
                            "startColumn": d.col + 1,
                        },
                    }
                }
            ],
        }
        for d in diagnostics
    ]
    document = {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": [
                            {
                                "id": rule_id,
                                "shortDescription": {
                                    "text": SUMMARIES[rule_id]
                                },
                            }
                            for rule_id in rule_ids
                        ],
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


RENDERERS = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}
