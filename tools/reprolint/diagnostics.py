"""Diagnostics and the waiver protocol shared by every reprolint rule.

A :class:`Diagnostic` points at ``file:line:col`` and carries the rule id
plus a human-readable message — exactly what the text renderer prints and
what the JSON/SARIF formatters serialise.

Waivers
-------

The dataflow rules (R006–R009) check invariants that have legitimate,
*documented* exceptions — a restore path that rebuilds cells before any
listener can attach, a snapshot write that is blocking by design.  Those
sites carry an inline waiver comment::

    # reprolint: detached — restore precedes listener attach (hooks.py:
    # attaching does not replay history)

The grammar is ``# reprolint: <tag>`` followed by a justification after
``—``, ``-`` or ``:``.  A waiver **must** include the justification —
a bare tag still fails the build (with a dedicated message), so blanket
suppressions cannot creep in.  Each rule names the tag it honours and
where it may appear (the flagged line, the line above it, or the ``def``
line of the enclosing function for function-scoped exemptions).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

_WAIVER_RE = re.compile(
    r"#\s*reprolint:\s*(?P<tag>[a-z][a-z0-9-]*)\s*(?:[-—:]\s*(?P<why>\S.*))?"
)


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation, pointing at file:line:col."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class Waivers:
    """Per-file index of ``# reprolint: <tag>`` comments.

    Built once per file from the raw source lines (comments are invisible
    to ``ast``); rules query it by line number.
    """

    def __init__(self, source: str) -> None:
        self._by_line: Dict[int, Tuple[str, str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _WAIVER_RE.search(text)
            if match:
                self._by_line[lineno] = (
                    match.group("tag"),
                    (match.group("why") or "").strip(),
                )

    def at(self, line: int) -> Optional[Tuple[str, str]]:
        """The ``(tag, justification)`` waiver on ``line``, if any."""
        return self._by_line.get(line)

    def lookup(
        self, tag: str, lines: Sequence[int]
    ) -> Tuple[bool, Optional[int]]:
        """Search ``lines`` (in order) for a waiver with ``tag``.

        Returns ``(waived, bare_line)``: ``waived`` is true when a tagged
        waiver *with a justification* was found; ``bare_line`` names the
        first line carrying the tag without one (so the rule can demand
        the missing justification instead of silently honouring it).
        """
        bare: Optional[int] = None
        for line in lines:
            found = self._by_line.get(line)
            if found is None or found[0] != tag:
                continue
            if found[1]:
                return True, None
            if bare is None:
                bare = line
        return False, bare
