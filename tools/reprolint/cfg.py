"""Per-function control-flow graphs and the must-coverage analysis.

Nodes are the function's statements (statement granularity is enough for
every rule reprolint runs); two synthetic nodes mark the normal exit and
the exceptional exit.  ``build_cfg`` handles ``if``/``for``/``while``
(with ``else`` and ``break``/``continue``), ``with``, ``try`` (handlers,
``else``, ``finally``), ``return`` and ``raise``.

Edges come in two classes.  *Normal* edges are ordinary fall-through and
branch flow.  *Exceptional* edges model a statement raising: explicit
``raise`` statements always get one, and when ``implicit_exceptions`` is
set every statement containing a call also gets an edge to the nearest
enclosing ``try`` (its statement node acts as the dispatch point fanning
out to handlers and ``finally``) or to the exceptional exit when there
is none.  R008 uses implicit edges to prove shm cleanup runs even when a
statement between create and close raises; R006 leaves them off and
analyses with ``exc_safe=True`` (the hooks contract is about the values
the structure settles into, not mid-exception states).

:func:`covered_by` is the shared dataflow core: a *greatest fixpoint*
backward must-analysis computing, for each node, whether **every** path
from it to an exit passes through one of the given coverage nodes.
Starting from all-true and shrinking means cycles that never reach an
exit stay vacuously safe — exactly the right semantics for loops.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Synthetic node ids.
EXIT = -1
EXC_EXIT = -2


class CFG:
    """Control-flow graph over a function body.

    ``succ`` holds normal edges, ``exc_succ`` exceptional ones; ``stmts``
    maps node id → the ``ast.stmt`` it represents.  ``EXIT``/``EXC_EXIT``
    appear only as successors.
    """

    def __init__(self) -> None:
        self.stmts: Dict[int, ast.stmt] = {}
        self.succ: Dict[int, Set[int]] = {}
        self.exc_succ: Dict[int, Set[int]] = {}
        self.entry: Optional[int] = None
        #: statement -> node id (statements are unique objects)
        self.node_of: Dict[int, int] = {}

    def nodes(self) -> List[int]:
        return list(self.stmts)

    def node_for(self, stmt: ast.stmt) -> Optional[int]:
        return self.node_of.get(id(stmt))

    def all_succ(self, n: int) -> Set[int]:
        return self.succ.get(n, set()) | self.exc_succ.get(n, set())


class _Builder:
    def __init__(self, implicit_exceptions: bool) -> None:
        self.cfg = CFG()
        self.implicit_exceptions = implicit_exceptions
        self._next_id = 0
        #: stack of (break_targets, continue_targets) collector lists
        self._loops: List[Tuple[List[int], List[int]]] = []
        #: stack of node ids exceptional control transfers to; the
        #: innermost enclosing try's dispatch node is the top.
        self._handlers: List[int] = []

    def _new_node(self, stmt: ast.stmt) -> int:
        nid = self._next_id
        self._next_id += 1
        self.cfg.stmts[nid] = stmt
        self.cfg.succ[nid] = set()
        self.cfg.exc_succ[nid] = set()
        self.cfg.node_of[id(stmt)] = nid
        return nid

    def _edge(self, src: int, dst: int, exc: bool = False) -> None:
        (self.cfg.exc_succ if exc else self.cfg.succ)[src].add(dst)

    def _link(self, frontier: Sequence[int], dst: int) -> None:
        for src in frontier:
            self._edge(src, dst)

    def _exc_target(self) -> int:
        return self._handlers[-1] if self._handlers else EXC_EXIT

    @staticmethod
    def _contains_call(stmt: ast.stmt) -> bool:
        # Only expressions evaluated at this statement's own node count:
        # a compound statement's nested bodies are separate nodes with
        # their own edges, so a call in a try body must not hang an
        # exceptional edge off the Try dispatch node (it would bypass
        # the finally).
        exprs: List[ast.expr]
        if isinstance(stmt, (ast.If, ast.While)):
            exprs = [stmt.test]
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            exprs = [stmt.iter]
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            exprs = [item.context_expr for item in stmt.items]
        elif isinstance(stmt, ast.Try):
            exprs = []
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            exprs = list(stmt.decorator_list)
        else:
            return any(
                isinstance(sub, (ast.Call, ast.Await))
                for sub in ast.walk(stmt)
            )
        return any(
            isinstance(sub, (ast.Call, ast.Await))
            for expr in exprs
            for sub in ast.walk(expr)
        )

    def build(self, body: Sequence[ast.stmt]) -> CFG:
        frontier = self._sequence(body, entry_to=None)
        self._link(frontier, EXIT)
        return self.cfg

    def _sequence(
        self, body: Sequence[ast.stmt], entry_to: Optional[List[int]]
    ) -> List[int]:
        """Wire ``body`` statements in order.

        ``entry_to``, when given, is the frontier whose pending edges
        should land on the first statement.  Returns the new frontier
        (nodes falling through past the last statement).
        """
        frontier = list(entry_to) if entry_to else []
        for stmt in body:
            frontier, entered = self._statement(stmt, frontier)
            if self.cfg.entry is None and entered is not None:
                self.cfg.entry = entered
        return frontier

    def _statement(
        self, stmt: ast.stmt, frontier: List[int]
    ) -> Tuple[List[int], Optional[int]]:
        """Add ``stmt``; returns (new frontier, this statement's node)."""
        nid = self._new_node(stmt)
        self._link(frontier, nid)
        if self.implicit_exceptions and self._contains_call(stmt):
            self._edge(nid, self._exc_target(), exc=True)

        if isinstance(stmt, ast.Return):
            self._edge(nid, EXIT)
            return [], nid
        if isinstance(stmt, ast.Raise):
            self._edge(nid, self._exc_target(), exc=True)
            return [], nid
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].append(nid)
            return [], nid
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self._loops[-1][1].append(nid)
            return [], nid
        if isinstance(stmt, ast.If):
            then_out = self._sequence(stmt.body, entry_to=[nid])
            else_out = (
                self._sequence(stmt.orelse, entry_to=[nid])
                if stmt.orelse
                else [nid]
            )
            return then_out + else_out, nid
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            breaks: List[int] = []
            continues: List[int] = []
            self._loops.append((breaks, continues))
            body_out = self._sequence(stmt.body, entry_to=[nid])
            self._loops.pop()
            # Back edge: loop bottom (and continue) re-test the header.
            self._link(body_out, nid)
            self._link(continues, nid)
            else_out = (
                self._sequence(stmt.orelse, entry_to=[nid])
                if stmt.orelse
                else [nid]
            )
            return else_out + breaks, nid
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            body_out = self._sequence(stmt.body, entry_to=[nid])
            return body_out, nid
        if isinstance(stmt, ast.Try):
            return self._try(stmt, nid)
        return [nid], nid

    def _try(self, stmt: ast.Try, nid: int) -> Tuple[List[int], Optional[int]]:
        # The Try statement's own node doubles as the exception dispatch
        # point: statements in the protected body raise *to* it, and it
        # fans out to the handlers / finally.  (Which handler catches is
        # a runtime question — edges to all of them is the sound
        # over-approximation.)
        self._handlers.append(nid)
        body_out = self._sequence(stmt.body, entry_to=[nid])
        self._handlers.pop()

        handler_tails: List[int] = []
        for handler in stmt.handlers:
            handler_tails.extend(self._sequence(handler.body, entry_to=[nid]))
        else_out = (
            self._sequence(stmt.orelse, entry_to=body_out)
            if stmt.orelse
            else body_out
        )

        normal_tails = else_out + handler_tails
        if stmt.finalbody:
            fin_out = self._sequence(stmt.finalbody, entry_to=normal_tails)
            # Exceptional entry: an exception no handler catches runs the
            # finally then re-raises — dispatch feeds the finally head
            # and its tails get a re-raise edge (over-approximate: also
            # present for normal entries, which only makes must-analysis
            # more conservative).
            fin_head = self.cfg.node_for(stmt.finalbody[0])
            if fin_head is not None:
                self._edge(nid, fin_head)
                for tail in fin_out:
                    self._edge(tail, self._exc_target(), exc=True)
            return fin_out, nid
        # No finally: an exception no handler matches propagates out.
        self._edge(nid, self._exc_target(), exc=True)
        return normal_tails, nid


def build_cfg(
    fn: "ast.FunctionDef | ast.AsyncFunctionDef",
    implicit_exceptions: bool = False,
) -> CFG:
    """Build the CFG for ``fn``'s body."""
    return _Builder(implicit_exceptions).build(fn.body)


def covered_by(
    cfg: CFG, coverage: Set[int], exc_safe: bool = False
) -> Dict[int, bool]:
    """For each node: does *every* exit-reaching path pass ``coverage``?

    Greatest-fixpoint backward must-analysis: ``safe(n) = n ∈ coverage
    ∨ (∀ s ∈ succ(n) ∪ exc_succ(n): safe(s))`` with the normal exit
    unsafe.  ``exc_safe`` makes the exceptional exit vacuously safe —
    rules that only constrain settled states (R006) use it so a raising
    path doesn't demand a notification.
    """
    safe: Dict[int, bool] = {n: True for n in cfg.nodes()}
    safe[EXIT] = False
    safe[EXC_EXIT] = exc_safe
    changed = True
    while changed:
        changed = False
        for n in cfg.nodes():
            if n in coverage:
                continue  # coverage nodes stay safe
            succs = cfg.all_succ(n)
            new = bool(succs) and all(safe.get(s, False) for s in succs)
            if new != safe[n]:
                safe[n] = new
                changed = True
    return safe


def node_covered(cfg: CFG, node: int, safe: Dict[int, bool]) -> bool:
    """Whether every path *onward* from ``node`` passes a coverage node.

    Only ``node``'s normal successors are required — the statement's own
    exceptional edge models *it* failing, in which case the effect being
    tracked (the write, the allocation) never happened.
    """
    succs = cfg.succ.get(node, set())
    return bool(succs) and all(safe.get(s, False) for s in succs)
