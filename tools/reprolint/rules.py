"""The reprolint rule implementations (pure stdlib ``ast``).

The linter runs in two passes: pass 1 parses every file and builds a
project-wide class index (class name → methods, bases, abstractness) so
R001 can resolve inheritance across modules; pass 2 walks each module
and applies the rules.  Base-name resolution is textual — class names
are unique in this repository, which is exactly the kind of assumption a
*repo-specific* linter is allowed to make.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

#: Method-name prefixes considered ingestion hot paths for R002 (leading
#: underscores are ignored, so ``_decrement_smallest`` is a hot path).
HOT_PATH_RE = re.compile(r"^_*(insert|evict|decrement|update)")

#: Module-level constant names accepted as checkpoint format versions.
VERSION_CONST_RE = re.compile(r"(MAGIC|VERSION|FORMAT)")

#: Unseeded randomness / wall-clock entropy sources banned by R003.
BANNED_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "gauss",
        "seed",
    }
)

#: Directories (path components) where R003 applies: the deterministic
#: core whose replay identity the differential suites depend on.
DETERMINISTIC_DIRS = frozenset({"core", "sketches", "summaries", "membership"})


@dataclass(frozen=True)
class Diagnostic:
    """One rule violation, pointing at file:line:col."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class ClassInfo:
    """Pass-1 summary of one class definition."""

    name: str
    path: str
    line: int
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, int] = field(default_factory=dict)  # name -> lineno
    abstract_methods: Set[str] = field(default_factory=set)


def _base_names(node: ast.ClassDef) -> List[str]:
    names = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            names.append(base.id)
        elif isinstance(base, ast.Attribute):
            names.append(base.attr)
    return names


def _is_abstract(func: ast.FunctionDef) -> bool:
    for deco in func.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else (
            target.id if isinstance(target, ast.Name) else ""
        )
        if name in ("abstractmethod", "abstractproperty"):
            return True
    return False


def _collect_classes(tree: ast.Module, path: str) -> List[ClassInfo]:
    classes = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        info = ClassInfo(node.name, path, node.lineno, bases=_base_names(node))
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[item.name] = item.lineno
                if isinstance(item, ast.FunctionDef) and _is_abstract(item):
                    info.abstract_methods.add(item.name)
        classes.append(info)
    return classes


class ClassIndex:
    """Project-wide class lookup with transitive ancestor resolution."""

    def __init__(self, classes: Iterable[ClassInfo]):
        self._by_name: Dict[str, ClassInfo] = {}
        for info in classes:
            # First definition wins; duplicates across fixture trees are
            # fine because lookups stay within one lint invocation.
            self._by_name.setdefault(info.name, info)

    def get(self, name: str) -> Optional[ClassInfo]:
        return self._by_name.get(name)

    def ancestors(self, info: ClassInfo) -> List[ClassInfo]:
        """Transitive base classes resolvable inside the linted tree."""
        out: List[ClassInfo] = []
        seen = {info.name}
        stack = list(info.bases)
        while stack:
            base = stack.pop()
            if base in seen:
                continue
            seen.add(base)
            resolved = self._by_name.get(base)
            if resolved is not None:
                out.append(resolved)
                stack.extend(resolved.bases)
        return out

    def descends_from(self, info: ClassInfo, root: str) -> bool:
        return any(anc.name == root for anc in self.ancestors(info))

    def concrete_method(self, info: ClassInfo, method: str) -> bool:
        """Whether ``method`` is available and concrete on ``info``."""
        if method in info.methods:
            return method not in info.abstract_methods
        for anc in self.ancestors(info):
            if method in anc.methods:
                return method not in anc.abstract_methods
        return False

    def override_below(self, info: ClassInfo, method: str, root: str) -> bool:
        """Whether ``method`` is (re)defined on ``info`` or an ancestor
        strictly below ``root`` in the hierarchy."""
        if method in info.methods and info.name != root:
            return True
        return any(
            method in anc.methods for anc in self.ancestors(info) if anc.name != root
        )


# ----------------------------------------------------------------- R001
def check_r001(index: ClassIndex, classes: Sequence[ClassInfo]) -> List[Diagnostic]:
    """Batched-ingestion pairing of ``insert`` / ``insert_many``."""
    out = []
    for info in classes:
        own_many = "insert_many" in info.methods
        own_insert = "insert" in info.methods
        # Abstract classes (any own abstract method) can't be
        # instantiated, so the pairing contract lands on their concrete
        # descendants instead.
        if own_many and not info.abstract_methods:
            if not index.concrete_method(info, "insert"):
                out.append(
                    Diagnostic(
                        info.path,
                        info.methods["insert_many"],
                        0,
                        "R001",
                        f"class '{info.name}' defines insert_many without a "
                        f"concrete insert (batched ingestion must stay "
                        f"replay-identical to a per-event path)",
                    )
                )
        if (
            own_insert
            and "insert" not in info.abstract_methods
            and index.descends_from(info, "StreamSummary")
            and not index.override_below(info, "insert_many", "StreamSummary")
        ):
            out.append(
                Diagnostic(
                    info.path,
                    info.methods["insert"],
                    0,
                    "R001",
                    f"summary '{info.name}' overrides insert but inherits the "
                    f"per-event insert_many fallback; add a batched override "
                    f"(and a differential test pinning it replay-identical)",
                )
            )
    return out


# ----------------------------------------------------------------- R002
def _is_obs_none_test(node: ast.Compare) -> bool:
    """``<expr>._obs is None`` / ``is not None`` (either operand order)."""
    operands = [node.left, *node.comparators]
    if len(operands) != 2 or not all(
        isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
    ):
        return False
    has_obs = any(
        isinstance(op, ast.Attribute) and op.attr == "_obs" for op in operands
    )
    has_none = any(
        isinstance(op, ast.Constant) and op.value is None for op in operands
    )
    return has_obs and has_none


def check_r002(tree: ast.Module, path: str) -> List[Diagnostic]:
    """Observability discipline in ingestion hot paths."""
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if not HOT_PATH_RE.match(item.name):
                continue
            guards = 0
            guarded_tests: Set[int] = set()
            for sub in ast.walk(item):
                if isinstance(sub, ast.Compare) and _is_obs_none_test(sub):
                    guards += 1
                    for op in (sub.left, *sub.comparators):
                        if isinstance(op, ast.Attribute) and op.attr == "_obs":
                            guarded_tests.add(id(op))
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "obs"
                        and func.attr in ("registry", "is_enabled")
                    ):
                        out.append(
                            Diagnostic(
                                path,
                                sub.lineno,
                                sub.col_offset,
                                "R002",
                                f"hot path '{node.name}.{item.name}' calls "
                                f"obs.{func.attr}(); capture the registry at "
                                f"construction instead",
                            )
                        )
                    elif isinstance(func, ast.Attribute) and func.attr in (
                        "counter",
                        "gauge",
                        "histogram",
                    ):
                        out.append(
                            Diagnostic(
                                path,
                                sub.lineno,
                                sub.col_offset,
                                "R002",
                                f"hot path '{node.name}.{item.name}' registers "
                                f"a metric ('{func.attr}'); register at "
                                f"construction and guard with one is-None test",
                            )
                        )
            for sub in ast.walk(item):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "_obs"
                    and id(sub) not in guarded_tests
                ):
                    out.append(
                        Diagnostic(
                            path,
                            sub.lineno,
                            sub.col_offset,
                            "R002",
                            f"hot path '{node.name}.{item.name}' uses the "
                            f"captured registry outside an is-None guard "
                            f"(store per-metric handles at construction)",
                        )
                    )
            if guards > 1:
                out.append(
                    Diagnostic(
                        path,
                        item.lineno,
                        item.col_offset,
                        "R002",
                        f"hot path '{node.name}.{item.name}' tests the "
                        f"captured registry {guards} times; hoist to a single "
                        f"is-None guard",
                    )
                )
    return out


# ----------------------------------------------------------------- R003
def _in_deterministic_dir(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(part in DETERMINISTIC_DIRS for part in parts[:-1])


def check_r003(tree: ast.Module, path: str) -> List[Diagnostic]:
    """Determinism: no unseeded entropy in the deterministic core."""
    if not _in_deterministic_dir(path):
        return []
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            if not isinstance(func.value, ast.Name):
                continue
            mod, attr = func.value.id, func.attr
            if mod == "random" and attr in BANNED_RANDOM_FUNCS:
                what = f"random.{attr}()"
            elif mod == "time" and attr == "time":
                what = "time.time()"
            elif mod == "os" and attr == "urandom":
                what = "os.urandom()"
            else:
                continue
            out.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset,
                    "R003",
                    f"{what} breaks replay identity in the deterministic core; "
                    f"thread a seeded random.Random / explicit timestamp "
                    f"through the API instead",
                )
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            banned = [
                a.name for a in node.names if a.name in BANNED_RANDOM_FUNCS
            ]
            if banned:
                out.append(
                    Diagnostic(
                        path,
                        node.lineno,
                        node.col_offset,
                        "R003",
                        f"importing unseeded {', '.join(banned)} from random "
                        f"into the deterministic core breaks replay identity",
                    )
                )
    return out


# ----------------------------------------------------------------- R004
def _numpy_aliases(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Import):
        return [a.asname or a.name for a in node.names if a.name == "numpy"]
    if isinstance(node, ast.ImportFrom) and node.module == "numpy":
        return [a.asname or a.name for a in node.names]
    return []


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else ""
        )
        if name in ("ImportError", "ModuleNotFoundError", "Exception"):
            return True
    return False


def check_r004(tree: ast.Module, path: str) -> List[Diagnostic]:
    """numpy imports at module top level must carry a guarded fallback."""
    out = []
    for node in tree.body:
        if isinstance(node, ast.Try):
            guarded = any(_catches_import_error(h) for h in node.handlers)
            if guarded:
                continue
            for sub in node.body:
                for alias in _numpy_aliases(sub):
                    out.append(
                        Diagnostic(
                            path,
                            sub.lineno,
                            sub.col_offset,
                            "R004",
                            f"numpy import '{alias}' sits in a try block that "
                            f"never catches ImportError; add the fallback "
                            f"handler so numpy stays optional",
                        )
                    )
            continue
        for alias in _numpy_aliases(node):
            out.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset,
                    "R004",
                    f"unguarded top-level numpy import '{alias}'; wrap in "
                    f"try/except ImportError with a pure-Python fallback "
                    f"(numpy is an optional dependency)",
                )
            )
    return out


# ----------------------------------------------------------------- R005
def _referenced_names(func: ast.FunctionDef) -> Set[str]:
    return {
        node.id for node in ast.walk(func) if isinstance(node, ast.Name)
    }


def check_r005(tree: ast.Module, path: str) -> List[Diagnostic]:
    """to_bytes/from_bytes pairs share a format-version constant."""
    constants = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and VERSION_CONST_RE.search(target.id):
                constants.add(target.id)

    pairs: Dict[str, Dict[str, ast.FunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in (
            "to_bytes",
            "from_bytes",
        ):
            scope = ""
            pairs.setdefault(scope, {})[node.name] = node
    out = []
    for scope, funcs in pairs.items():
        if len(funcs) < 2:
            continue
        if not constants:
            out.append(
                Diagnostic(
                    path,
                    funcs["to_bytes"].lineno,
                    funcs["to_bytes"].col_offset,
                    "R005",
                    "to_bytes/from_bytes pair without a module-level format-"
                    "version constant (name containing MAGIC/VERSION/FORMAT); "
                    "version the wire format so old images stay readable",
                )
            )
            continue
        shared = set.intersection(
            *(_referenced_names(f) & constants for f in funcs.values())
        )
        if not shared:
            out.append(
                Diagnostic(
                    path,
                    funcs["to_bytes"].lineno,
                    funcs["to_bytes"].col_offset,
                    "R005",
                    "to_bytes and from_bytes never reference a shared format-"
                    "version constant; both sides must agree on the version "
                    "they write/accept",
                )
            )
    return out


# ------------------------------------------------------------------ driver
def _iter_python_files(paths: Sequence[str]) -> List[str]:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise OSError(f"not a Python file or directory: {path}")
    return files


def lint_paths(
    paths: Sequence[str], only: Optional[FrozenSet[str]] = None
) -> List[Diagnostic]:
    """Lint files/directories; returns diagnostics sorted by location."""
    files = _iter_python_files(paths)
    trees: List[Tuple[str, ast.Module]] = []
    all_classes: List[ClassInfo] = []
    per_file_classes: Dict[str, List[ClassInfo]] = {}
    for path in files:
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        tree = ast.parse(source, filename=path)
        trees.append((path, tree))
        classes = _collect_classes(tree, path)
        per_file_classes[path] = classes
        all_classes.extend(classes)

    index = ClassIndex(all_classes)
    out: List[Diagnostic] = []

    def wanted(rule: str) -> bool:
        return only is None or rule in only

    for path, tree in trees:
        if wanted("R001"):
            out.extend(check_r001(index, per_file_classes[path]))
        if wanted("R002"):
            out.extend(check_r002(tree, path))
        if wanted("R003"):
            out.extend(check_r003(tree, path))
        if wanted("R004"):
            out.extend(check_r004(tree, path))
        if wanted("R005"):
            out.extend(check_r005(tree, path))
    out.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return out
