"""``python -m tools.reprolint`` entry point."""

import sys

from tools.reprolint import main

sys.exit(main())
