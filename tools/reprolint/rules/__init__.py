"""The reprolint rule catalog.

Each rule lives in its own module and exposes ``RULE_ID`` plus a
``check(index)`` entry point taking the pass-1
:class:`~tools.reprolint.symbols.SymbolIndex` and returning diagnostics
for the whole linted tree.  :data:`RULES` is the registry the engine
iterates; :data:`SUMMARIES` feeds ``--format sarif`` rule metadata.

This package also re-exports ``Diagnostic`` and ``lint_paths`` so the
long-standing import path ``tools.reprolint.rules`` keeps working now
that the implementation is split across modules (``lint_paths`` resolves
lazily to avoid a cycle with the engine).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List

from tools.reprolint.diagnostics import Diagnostic

if TYPE_CHECKING:
    from tools.reprolint.symbols import SymbolIndex

__all__ = ["Diagnostic", "RULES", "SUMMARIES", "lint_paths", "rule_checks"]

#: Rule id -> one-line summary (SARIF shortDescription, docs).
SUMMARIES: Dict[str, str] = {
    "R001": "insert_many requires a concrete per-event insert twin",
    "R002": "hot paths use the capture-at-construction observability "
    "pattern with a single is-None guard",
    "R003": "no unseeded entropy or wall-clock reads in the "
    "deterministic core",
    "R004": "top-level numpy imports must be guarded so numpy stays "
    "optional",
    "R005": "to_bytes/from_bytes pairs share a format-version constant",
    "R006": "cell-state mutations in hooked kernels must be "
    "post-dominated by a CellListener notification",
    "R007": "no blocking calls reachable from serve-tier coroutines",
    "R008": "shm segments pair create with close/unlink on all paths; "
    "attach-side handles never unlink",
    "R009": "batched ingestion touches the same state attributes as the "
    "per-event path",
}


def rule_checks() -> Dict[str, Callable[["SymbolIndex"], List[Diagnostic]]]:
    """The registry, imported lazily so rule modules can use the
    package's re-exports without a cycle."""
    from tools.reprolint.rules import (
        async_safety,
        determinism,
        hooks,
        numpy_guard,
        obs_discipline,
        pairing,
        parity,
        serialization,
        shm_lifecycle,
    )

    modules = (
        pairing,
        obs_discipline,
        determinism,
        numpy_guard,
        serialization,
        hooks,
        async_safety,
        shm_lifecycle,
        parity,
    )
    return {m.RULE_ID: m.check for m in modules}


#: Stable, sorted rule ids (the registry's keys).
RULES = tuple(sorted(SUMMARIES))


def __getattr__(name: str) -> Any:
    if name == "lint_paths":
        from tools.reprolint.engine import lint_paths

        return lint_paths
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
