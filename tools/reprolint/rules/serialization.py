"""R005 — versioned checkpoints: ``to_bytes``/``from_bytes`` pairs
reference a shared module-level format-version constant (name containing
``MAGIC``/``VERSION``/``FORMAT``) from both sides.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Set

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import SymbolIndex

RULE_ID = "R005"

#: Module-level constant names accepted as checkpoint format versions.
VERSION_CONST_RE = re.compile(r"(MAGIC|VERSION|FORMAT)")


def _referenced_names(func: ast.FunctionDef) -> Set[str]:
    return {
        node.id for node in ast.walk(func) if isinstance(node, ast.Name)
    }


def check_r005(tree: ast.Module, path: str) -> List[Diagnostic]:
    """to_bytes/from_bytes pairs share a format-version constant."""
    constants = set()
    for node in tree.body:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and VERSION_CONST_RE.search(target.id):
                constants.add(target.id)

    pairs: Dict[str, Dict[str, ast.FunctionDef]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in (
            "to_bytes",
            "from_bytes",
        ):
            scope = ""
            pairs.setdefault(scope, {})[node.name] = node
    out = []
    for scope, funcs in pairs.items():
        if len(funcs) < 2:
            continue
        if not constants:
            out.append(
                Diagnostic(
                    path,
                    funcs["to_bytes"].lineno,
                    funcs["to_bytes"].col_offset,
                    "R005",
                    "to_bytes/from_bytes pair without a module-level format-"
                    "version constant (name containing MAGIC/VERSION/FORMAT); "
                    "version the wire format so old images stay readable",
                )
            )
            continue
        shared = set.intersection(
            *(_referenced_names(f) & constants for f in funcs.values())
        )
        if not shared:
            out.append(
                Diagnostic(
                    path,
                    funcs["to_bytes"].lineno,
                    funcs["to_bytes"].col_offset,
                    "R005",
                    "to_bytes and from_bytes never reference a shared format-"
                    "version constant; both sides must agree on the version "
                    "they write/accept",
                )
            )
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for path in index.paths:
        out.extend(check_r005(index.trees[path], path))
    return out
