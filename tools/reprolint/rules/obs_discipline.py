"""R002 — observability discipline in ingestion hot paths.

Methods on the hot path (``insert*``, ``evict*``, ``decrement*``,
``update*``) must use the capture-at-construction registry with a single
``is None`` guard — never call ``obs.registry()`` / ``obs.is_enabled()``
or register metrics inline.
"""

from __future__ import annotations

import ast
import re
from typing import List, Set

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import SymbolIndex

RULE_ID = "R002"

#: Method-name prefixes considered ingestion hot paths (leading
#: underscores are ignored, so ``_decrement_smallest`` is a hot path).
HOT_PATH_RE = re.compile(r"^_*(insert|evict|decrement|update)")


def _is_obs_none_test(node: ast.Compare) -> bool:
    """``<expr>._obs is None`` / ``is not None`` (either operand order)."""
    operands = [node.left, *node.comparators]
    if len(operands) != 2 or not all(
        isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops
    ):
        return False
    has_obs = any(
        isinstance(op, ast.Attribute) and op.attr == "_obs" for op in operands
    )
    has_none = any(
        isinstance(op, ast.Constant) and op.value is None for op in operands
    )
    return has_obs and has_none


def check_r002(tree: ast.Module, path: str) -> List[Diagnostic]:
    """Observability discipline in ingestion hot paths."""
    out = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for item in node.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if not HOT_PATH_RE.match(item.name):
                continue
            guards = 0
            guarded_tests: Set[int] = set()
            for sub in ast.walk(item):
                if isinstance(sub, ast.Compare) and _is_obs_none_test(sub):
                    guards += 1
                    for op in (sub.left, *sub.comparators):
                        if isinstance(op, ast.Attribute) and op.attr == "_obs":
                            guarded_tests.add(id(op))
                elif isinstance(sub, ast.Call):
                    func = sub.func
                    if (
                        isinstance(func, ast.Attribute)
                        and isinstance(func.value, ast.Name)
                        and func.value.id == "obs"
                        and func.attr in ("registry", "is_enabled")
                    ):
                        out.append(
                            Diagnostic(
                                path,
                                sub.lineno,
                                sub.col_offset,
                                "R002",
                                f"hot path '{node.name}.{item.name}' calls "
                                f"obs.{func.attr}(); capture the registry at "
                                f"construction instead",
                            )
                        )
                    elif isinstance(func, ast.Attribute) and func.attr in (
                        "counter",
                        "gauge",
                        "histogram",
                    ):
                        out.append(
                            Diagnostic(
                                path,
                                sub.lineno,
                                sub.col_offset,
                                "R002",
                                f"hot path '{node.name}.{item.name}' registers "
                                f"a metric ('{func.attr}'); register at "
                                f"construction and guard with one is-None test",
                            )
                        )
            for sub in ast.walk(item):
                if (
                    isinstance(sub, ast.Attribute)
                    and sub.attr == "_obs"
                    and id(sub) not in guarded_tests
                ):
                    out.append(
                        Diagnostic(
                            path,
                            sub.lineno,
                            sub.col_offset,
                            "R002",
                            f"hot path '{node.name}.{item.name}' uses the "
                            f"captured registry outside an is-None guard "
                            f"(store per-metric handles at construction)",
                        )
                    )
            if guards > 1:
                out.append(
                    Diagnostic(
                        path,
                        item.lineno,
                        item.col_offset,
                        "R002",
                        f"hot path '{node.name}.{item.name}' tests the "
                        f"captured registry {guards} times; hoist to a single "
                        f"is-None guard",
                    )
                )
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for path in index.paths:
        out.extend(check_r002(index.trees[path], path))
    return out
