"""R001 — batched-ingestion pairing of ``insert`` / ``insert_many``.

A class defining ``insert_many`` must have a concrete ``insert`` (own or
inherited), and every ``StreamSummary`` subclass that overrides
``insert`` must also carry a batched ``insert_many`` override somewhere
below the base class.  (R009 goes further and compares what the two
paths actually mutate.)
"""

from __future__ import annotations

from typing import List, Sequence

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import ClassIndex, ClassInfo, SymbolIndex

RULE_ID = "R001"


def check_r001(
    index: ClassIndex, classes: Sequence[ClassInfo]
) -> List[Diagnostic]:
    """Batched-ingestion pairing of ``insert`` / ``insert_many``."""
    out = []
    for info in classes:
        own_many = "insert_many" in info.methods
        own_insert = "insert" in info.methods
        # Abstract classes (any own abstract method) can't be
        # instantiated, so the pairing contract lands on their concrete
        # descendants instead.
        if own_many and not info.abstract_methods:
            if not index.concrete_method(info, "insert"):
                out.append(
                    Diagnostic(
                        info.path,
                        info.methods["insert_many"],
                        0,
                        "R001",
                        f"class '{info.name}' defines insert_many without a "
                        f"concrete insert (batched ingestion must stay "
                        f"replay-identical to a per-event path)",
                    )
                )
        if (
            own_insert
            and "insert" not in info.abstract_methods
            and index.descends_from(info, "StreamSummary")
            and not index.override_below(info, "insert_many", "StreamSummary")
        ):
            out.append(
                Diagnostic(
                    info.path,
                    info.methods["insert"],
                    0,
                    "R001",
                    f"summary '{info.name}' overrides insert but inherits the "
                    f"per-event insert_many fallback; add a batched override "
                    f"(and a differential test pinning it replay-identical)",
                )
            )
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for path in index.paths:
        out.extend(check_r001(index.classes, index.per_file_classes[path]))
    return out
