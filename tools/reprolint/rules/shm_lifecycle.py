"""R008 — shm lifecycle: create pairs with close/unlink on all paths.

Shared-memory segments outlive the process that forgets them —
``/dev/shm`` entries leak until reboot.  The transport's discipline
(DESIGN §13) is parent-owned: the creator closes *and* unlinks in a
``finally``; attach-side handles only ever close.  Statically:

* A **creation** (``SharedMemory(create=True, ...)``, ``ShmRing(...)``
  without ``name=``) must be released on every CFG path — including
  exception edges — by a ``close()``/``destroy()``/``unlink()`` on the
  bound handle, or have its ownership transferred safely:

  - stored on ``self`` of a class that defines cleanup methods (the
    ``ShmRing`` pattern itself);
  - returned to the caller (``attach`` constructors);
  - passed into another object / container **inside** a
    ``try``/``finally`` — a transfer outside one means a failure
    between create and the protected region leaks the segment (the
    exact mid-constructor-loop bug class this rule exists for);
  - an unbound creation (created directly inside another call or a
    comprehension) must likewise sit inside a ``try``/``finally``.

* An **attach** (``SharedMemory(name=...)``, ``ShmRing(..., name=...)``,
  ``ShmRing.attach(...)``) bound to a local must never call
  ``unlink()`` — removal belongs to the creator.

Waiver: ``# reprolint: shm-owner — <why>`` on the creation, the line
above, or the enclosing ``def`` line.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from tools.reprolint.cfg import build_cfg, covered_by, node_covered
from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import FunctionInfo, SymbolIndex

RULE_ID = "R008"
TAG = "shm-owner"

_CREATOR_CLEANUP = ("close", "destroy", "unlink")
_SHM_NAMES = ("SharedMemory", "ShmRing")


def _call_name(call: ast.Call) -> str:
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def _creation_kind(call: ast.Call) -> Optional[str]:
    """Classify a call as shm ``"create"``/``"attach"``, else ``None``."""
    name = _call_name(call)
    if name == "SharedMemory":
        for kw in call.keywords:
            if (
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
            ):
                return "create"
        # Default is create=False: attaching to an existing segment.
        return "attach"
    if name == "ShmRing":
        if any(kw.arg == "name" for kw in call.keywords):
            return "attach"
        return "create"
    if name == "attach" and isinstance(call.func, ast.Attribute):
        base = call.func.value
        if isinstance(base, ast.Name) and base.id in _SHM_NAMES:
            return "attach"
    return None


class _StmtMap(ast.NodeVisitor):
    """Enclosing statement and statement-ancestor chains for a function."""

    def __init__(self, fn: "ast.FunctionDef | ast.AsyncFunctionDef") -> None:
        self.stmt_of_call: Dict[int, ast.stmt] = {}
        self.ancestors: Dict[int, List[ast.stmt]] = {}
        self._walk_body(fn.body, [])

    def _walk_body(
        self, body: List[ast.stmt], chain: List[ast.stmt]
    ) -> None:
        for stmt in body:
            self.ancestors[id(stmt)] = list(chain)
            self._map_exprs(stmt, stmt)
            nested = chain + [stmt]
            for field in ("body", "orelse", "finalbody"):
                sub_body = getattr(stmt, field, None)
                if sub_body:
                    self._walk_body(sub_body, nested)
            for handler in getattr(stmt, "handlers", []) or []:
                self._walk_body(handler.body, nested)

    def _map_exprs(self, node: ast.AST, stmt: ast.stmt) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                continue
            if isinstance(child, ast.Call):
                self.stmt_of_call[id(child)] = stmt
            self._map_exprs(child, stmt)

    def protected(self, stmt: ast.stmt) -> bool:
        """Whether ``stmt`` sits inside a ``try`` with a ``finally``."""
        return any(
            isinstance(anc, ast.Try) and anc.finalbody
            for anc in self.ancestors.get(id(stmt), [])
        )


def _class_has_cleanup(index: SymbolIndex, cls: Optional[str]) -> bool:
    if cls is None:
        return False
    return any(
        index.method_on(cls, name) is not None for name in _CREATOR_CLEANUP
    )


def _bound_local(stmt: ast.stmt, call: ast.Call) -> Optional[str]:
    """The local name ``stmt`` binds the creation to, if it's a plain
    ``v = <creation>`` (possibly through a conditional expression)."""
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
        return None
    target = stmt.targets[0]
    if not isinstance(target, ast.Name):
        return None
    value = stmt.value
    candidates = [value]
    if isinstance(value, ast.IfExp):
        candidates = [value.body, value.orelse]
    return target.id if any(c is call for c in candidates) else None


def _self_attr_target(stmt: ast.stmt, call: ast.Call) -> bool:
    if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
        return False
    target = stmt.targets[0]
    return (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
        and any(sub is call for sub in ast.walk(stmt.value))
    )


def _header_mentions(stmt: ast.stmt, name: str) -> bool:
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            continue
        for sub in ast.walk(child):
            if isinstance(sub, ast.Name) and sub.id == name:
                return True
    return False


def _is_cleanup_stmt(stmt: ast.stmt, name: str) -> bool:
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.stmt):
            continue
        for sub in ast.walk(child):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _CREATOR_CLEANUP
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id == name
            ):
                return True
    return False


def _check_create_local(
    fn: FunctionInfo,
    stmt: ast.stmt,
    name: str,
    stmt_map: _StmtMap,
) -> bool:
    """Whether the locally-bound creation at ``stmt`` is released (or
    safely handed off) on every path, exception edges included."""
    cfg = build_cfg(fn.node, implicit_exceptions=True)
    creation = cfg.node_for(stmt)
    if creation is None:
        return False
    coverage: Set[int] = set()
    for nid, node_stmt in cfg.stmts.items():
        if node_stmt is stmt:
            continue
        if _is_cleanup_stmt(node_stmt, name):
            coverage.add(nid)
        elif isinstance(node_stmt, ast.Return) and _header_mentions(
            node_stmt, name
        ):
            coverage.add(nid)  # ownership returned to the caller
        elif _header_mentions(node_stmt, name) and stmt_map.protected(
            node_stmt
        ):
            coverage.add(nid)  # handed off inside a try/finally
    safe = covered_by(cfg, coverage, exc_safe=False)
    return node_covered(cfg, creation, safe)


def _unlink_sites(
    fn: FunctionInfo, name: str
) -> List[ast.Call]:
    out = []
    for sub in ast.walk(fn.node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == "unlink"
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == name
        ):
            out.append(sub)
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for fn in index.functions.values():
        sites: List[Tuple[ast.Call, str]] = []
        for sub in ast.walk(fn.node):
            if isinstance(sub, ast.Call):
                kind = _creation_kind(sub)
                if kind is not None:
                    sites.append((sub, kind))
        if not sites:
            continue
        stmt_map = _StmtMap(fn.node)
        waivers = index.waivers[fn.path]
        owner = f"{fn.cls}.{fn.name}" if fn.cls else fn.name
        for call, kind in sites:
            stmt = stmt_map.stmt_of_call.get(id(call))
            if stmt is None:
                continue
            waived, bare = waivers.lookup(
                TAG,
                (
                    call.lineno,
                    call.lineno - 1,
                    fn.node.lineno,
                    fn.node.lineno - 1,
                ),
            )
            if waived:
                continue
            if bare is not None:
                out.append(
                    Diagnostic(
                        fn.path,
                        bare,
                        0,
                        RULE_ID,
                        f"waiver '# reprolint: {TAG}' needs a justification "
                        f"('# reprolint: {TAG} — <why>'); blanket "
                        f"suppressions are not accepted",
                    )
                )
                continue
            if kind == "attach":
                local = _bound_local(stmt, call)
                if local is None:
                    continue
                for unlink in _unlink_sites(fn, local):
                    out.append(
                        Diagnostic(
                            fn.path,
                            unlink.lineno,
                            unlink.col_offset,
                            RULE_ID,
                            f"attach-side shm handle '{local}' in '{owner}' "
                            f"must not unlink the segment (removal belongs "
                            f"to the creator; close() only)",
                        )
                    )
                continue
            # kind == "create"
            if _self_attr_target(stmt, call):
                if _class_has_cleanup(index, fn.cls):
                    continue
                out.append(
                    Diagnostic(
                        fn.path,
                        call.lineno,
                        call.col_offset,
                        RULE_ID,
                        f"shm segment created in '{owner}' is stored on an "
                        f"instance with no close/destroy/unlink method; "
                        f"give the owner a cleanup lifecycle",
                    )
                )
                continue
            local = _bound_local(stmt, call)
            if local is not None:
                if _check_create_local(fn, stmt, local, stmt_map):
                    continue
            elif isinstance(stmt, ast.Return) or stmt_map.protected(stmt):
                # Returned directly (caller owns) or created inside a
                # try/finally that can release it.
                continue
            out.append(
                Diagnostic(
                    fn.path,
                    call.lineno,
                    call.col_offset,
                    RULE_ID,
                    f"shm segment created in '{owner}' is not released on "
                    f"every path (exception edges included); close/unlink "
                    f"in a finally, or create it inside the try/finally "
                    f"that owns cleanup — a failure between create and "
                    f"the protected region leaks /dev/shm",
                )
            )
    return out
