"""R009 — kernel parity: batched ingestion mirrors per-event mutations.

The paper's significance guarantees hold only if ``insert_many`` /
``update_many`` leave the structure in exactly the state a per-event
replay through ``insert`` would — the differential suites test that
dynamically, this rule catches the *shape* of a divergence statically:
a fast path that never touches a state attribute the per-event path
mutates.

The comparison is deliberately asymmetric to stay useful on vectorized
kernels:

* **required** = the strict write set of ``insert`` — ``self.<attr>``
  assignments (including through local aliases) — closed transitively
  over the methods it calls within its own class family;
* **covered** = the batched method's strict writes **plus** its
  conservative may-writes (``self.<attr>`` passed as a call argument —
  ``np.add.at(self._freqs2, ...)`` — or receiving a container-mutating
  method call), over the same closure.

Flagged: ``required − covered``, minus observability and tuning state
(``_obs``, ``_m_*``, ``_auto_*``) that legitimately differs per path.

Waiver: ``# reprolint: parity-ok — <why>`` on the batched method's
``def`` line or the line above it.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import FunctionInfo, SymbolIndex

RULE_ID = "R009"
TAG = "parity-ok"

_BATCH_NAMES = ("insert_many", "update_many")
_EXCLUDED_EXACT = frozenset({"_obs"})
_EXCLUDED_PREFIXES = ("_m_", "_auto_")


def _family(index: SymbolIndex, cls: str) -> Set[str]:
    """``cls`` plus every ancestor resolvable in the linted tree."""
    info = index.classes.get(cls)
    if info is None:
        return {cls}
    return {cls} | {anc.name for anc in index.classes.ancestors(info)}


def _closure_writes(
    index: SymbolIndex, root: FunctionInfo, family: Set[str], may: bool
) -> Tuple[Set[str], Set[str]]:
    """(strict, may) write sets over ``root`` and its callees.

    Calls are followed into methods of the same class family and into
    module functions; writes are only *collected* from family methods —
    another object's ``self`` is not this kernel's state.
    """
    strict: Set[str] = set()
    mays: Set[str] = set()
    seen: Set[str] = set()
    stack = [root]
    while stack:
        fn = stack.pop()
        if fn.qualname in seen:
            continue
        seen.add(fn.qualname)
        in_family = fn.cls is not None and fn.cls in family
        if in_family:
            strict |= index.strict_writes(fn)
            if may:
                mays |= index.may_writes(fn)
        for site in index.callees(fn):
            target = site.target
            if target is None or target.qualname in seen:
                continue
            if target.cls is None or target.cls in family:
                stack.append(target)
    return strict, mays


def _excluded(attr: str) -> bool:
    return attr in _EXCLUDED_EXACT or attr.startswith(_EXCLUDED_PREFIXES)


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for path in index.paths:
        for info in index.per_file_classes[path]:
            if "insert" not in info.methods:
                continue
            insert_fn = index.methods.get(info.name, {}).get("insert")
            if insert_fn is None:
                continue
            family = _family(index, info.name)
            required: Set[str] = set()
            for batch_name in _BATCH_NAMES:
                if batch_name not in info.methods:
                    continue
                batch_fn = index.methods.get(info.name, {}).get(batch_name)
                if batch_fn is None:
                    continue
                if not required:
                    required, _ = _closure_writes(
                        index, insert_fn, family, may=False
                    )
                covered_strict, covered_may = _closure_writes(
                    index, batch_fn, family, may=True
                )
                missing = sorted(
                    attr
                    for attr in required - covered_strict - covered_may
                    if not _excluded(attr)
                )
                if not missing:
                    continue
                waived, bare = index.waivers[path].lookup(
                    TAG, (batch_fn.node.lineno, batch_fn.node.lineno - 1)
                )
                if waived:
                    continue
                if bare is not None:
                    out.append(
                        Diagnostic(
                            path,
                            bare,
                            0,
                            RULE_ID,
                            f"waiver '# reprolint: {TAG}' needs a "
                            f"justification ('# reprolint: {TAG} — <why>'); "
                            f"blanket suppressions are not accepted",
                        )
                    )
                    continue
                out.append(
                    Diagnostic(
                        path,
                        batch_fn.node.lineno,
                        batch_fn.node.col_offset,
                        RULE_ID,
                        f"'{info.name}.{batch_name}' never touches "
                        f"{', '.join(repr(a) for a in missing)} which "
                        f"'{info.name}.insert' mutates; mirror the "
                        f"per-event mutation in the batched path or waive "
                        f"with '# reprolint: {TAG} — <why>'",
                    )
                )
    return out
