"""R003 — determinism: no unseeded entropy in the deterministic core.

No unseeded ``random.*`` module calls, ``time.time()`` or
``os.urandom()`` inside ``core/``, ``sketches/``, ``summaries/`` or
``membership/`` — replay identity depends on it.
"""

from __future__ import annotations

import ast
import os
from typing import List

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import SymbolIndex

RULE_ID = "R003"

#: Unseeded randomness / wall-clock entropy sources banned by R003.
BANNED_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "getrandbits",
        "gauss",
        "seed",
    }
)

#: Directories (path components) where R003 applies: the deterministic
#: core whose replay identity the differential suites depend on.
DETERMINISTIC_DIRS = frozenset({"core", "sketches", "summaries", "membership"})


def _in_deterministic_dir(path: str) -> bool:
    parts = os.path.normpath(path).split(os.sep)
    return any(part in DETERMINISTIC_DIRS for part in parts[:-1])


def check_r003(tree: ast.Module, path: str) -> List[Diagnostic]:
    """Determinism: no unseeded entropy in the deterministic core."""
    if not _in_deterministic_dir(path):
        return []
    out = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            func = node.func
            if not isinstance(func.value, ast.Name):
                continue
            mod, attr = func.value.id, func.attr
            if mod == "random" and attr in BANNED_RANDOM_FUNCS:
                what = f"random.{attr}()"
            elif mod == "time" and attr == "time":
                what = "time.time()"
            elif mod == "os" and attr == "urandom":
                what = "os.urandom()"
            else:
                continue
            out.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset,
                    "R003",
                    f"{what} breaks replay identity in the deterministic core; "
                    f"thread a seeded random.Random / explicit timestamp "
                    f"through the API instead",
                )
            )
        elif isinstance(node, ast.ImportFrom) and node.module == "random":
            banned = [
                a.name for a in node.names if a.name in BANNED_RANDOM_FUNCS
            ]
            if banned:
                out.append(
                    Diagnostic(
                        path,
                        node.lineno,
                        node.col_offset,
                        "R003",
                        f"importing unseeded {', '.join(banned)} from random "
                        f"into the deterministic core breaks replay identity",
                    )
                )
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for path in index.paths:
        out.extend(check_r003(index.trees[path], path))
    return out
