"""R006 — hook discipline: cell-state mutations notify the listener.

The serving tier's O(1) index mirrors the kernels' cell arrays through
:class:`~repro.core.hooks.CellListener` notifications.  The contract
(``core/hooks.py``) says a notification fires *after* the mutation, in
the same call — so every write to a cell-state attribute inside a hooked
kernel must be **post-dominated by a notification on every path** to the
function's exit.

What counts, statically:

* The mutation-site inventory is read from the linted tree's
  ``core/hooks.py`` (``HOOKED_STRUCTURES`` / ``CELL_STATE_ATTRS`` /
  ``NOTIFY_METHODS``); compiled-in defaults mirror it so fixture trees
  without a hooks module still exercise the rule.
* Scope: methods of hooked classes (and their subclasses) in ``core/``
  modules — writes to ``self.<attr>`` and to local aliases of it
  (``freqs = self._freqs; freqs[j] += 1``) — plus module-level ``core/``
  functions writing the inventory attrs on any object (restore/merge
  helpers).  ``__init__`` is exempt: a listener cannot be attached
  before construction finishes.
* Coverage: a direct notification call (``listener.cell_touched(...)``),
  a listener guard (``if <listener> is not None:`` — the notify lives
  inside), or a call to another hooked-kernel method that notifies
  (computed as a fixpoint, so ``insert`` covering via ``_place`` works),
  including through bound-method aliases (``place = self._place``).
* Detached regions are exempt: the body of ``if <listener> is None:``,
  the ``else`` of an ``is not None`` guard, and everything after an
  ``is not None`` guard whose body terminates (the delegate-then-return
  pattern in ``FastLTC.insert_many``) — those statements only run with
  no listener attached.
* All-paths analysis, not single post-dominator: greatest-fixpoint
  must-coverage over the CFG with the exceptional exit vacuously safe
  (the contract constrains settled states).

Waiver: ``# reprolint: detached — <why>`` on the write, the line above,
or the enclosing ``def`` line (function-scoped, for restore paths that
rebuild cells before any listener can observe them).
"""

from __future__ import annotations

import ast
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from tools.reprolint.cfg import build_cfg, covered_by, node_covered
from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import FunctionInfo, SymbolIndex

RULE_ID = "R006"
TAG = "detached"

#: Fallback inventory, mirroring ``src/repro/core/hooks.py`` — used when
#: the linted tree has no hooks module (rule fixtures).
DEFAULT_HOOKED = ("LTC", "FastLTC", "ColumnarLTC")
DEFAULT_ATTRS = (
    "_keys",
    "_freqs",
    "_counters",
    "_freq_mv",
    "_counter_mv",
    "_freqs2",
    "_counters2",
)
DEFAULT_NOTIFY = ("cell_touched", "cells_touched", "cells_reset")

_LISTENER_ATTR = "_cell_listener"


def _load_inventory(
    index: SymbolIndex,
) -> Tuple[Tuple[str, ...], Tuple[str, ...], Tuple[str, ...]]:
    """Parse the inventory tuples out of the linted ``core/hooks.py``."""
    for path in index.paths:
        parts = os.path.normpath(path).split(os.sep)
        if len(parts) < 2 or parts[-1] != "hooks.py" or parts[-2] != "core":
            continue
        found: Dict[str, Tuple[str, ...]] = {}
        for node in index.trees[path].body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id in (
                "HOOKED_STRUCTURES",
                "CELL_STATE_ATTRS",
                "NOTIFY_METHODS",
            ) and isinstance(node.value, (ast.Tuple, ast.List)):
                found[target.id] = tuple(
                    elt.value
                    for elt in node.value.elts
                    if isinstance(elt, ast.Constant)
                    and isinstance(elt.value, str)
                )
        if len(found) == 3:
            return (
                found["HOOKED_STRUCTURES"],
                found["CELL_STATE_ATTRS"],
                found["NOTIFY_METHODS"],
            )
    return DEFAULT_HOOKED, DEFAULT_ATTRS, DEFAULT_NOTIFY


def _in_core(path: str) -> bool:
    return "core" in os.path.normpath(path).split(os.sep)[:-1]


def _is_listener_expr(node: ast.expr, listener_locals: Set[str]) -> bool:
    if isinstance(node, ast.Attribute) and node.attr == _LISTENER_ATTR:
        return True
    return isinstance(node, ast.Name) and node.id in listener_locals


def _listener_guard(
    test: ast.expr, listener_locals: Set[str]
) -> Optional[str]:
    """Classify ``test`` as a listener guard: ``"none"``/``"notnone"``."""
    if not (
        isinstance(test, ast.Compare)
        and len(test.ops) == 1
        and isinstance(test.ops[0], (ast.Is, ast.IsNot))
    ):
        return None
    operands = (test.left, test.comparators[0])
    if any(_is_listener_expr(op, listener_locals) for op in operands) and any(
        isinstance(op, ast.Constant) and op.value is None for op in operands
    ):
        return "notnone" if isinstance(test.ops[0], ast.IsNot) else "none"
    return None


def _listener_locals(fn: FunctionInfo) -> Set[str]:
    """Locals assigned from ``<obj>._cell_listener``."""
    out: Set[str] = set()
    for sub in ast.walk(fn.node):
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
            and isinstance(sub.value, ast.Attribute)
            and sub.value.attr == _LISTENER_ATTR
        ):
            out.add(sub.targets[0].id)
    return out


def _mark_subtree(stmt: ast.stmt, detached: Set[int]) -> None:
    for sub in ast.walk(stmt):
        if isinstance(sub, ast.stmt):
            detached.add(id(sub))


def _terminates(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue)
    )


def _collect_detached(
    body: Sequence[ast.stmt], listener_locals: Set[str], detached: Set[int]
) -> None:
    """Mark statements that only execute with no listener attached."""
    after_attached_exit = False
    for stmt in body:
        if after_attached_exit:
            _mark_subtree(stmt, detached)
            continue
        if isinstance(stmt, ast.If):
            kind = _listener_guard(stmt.test, listener_locals)
            if kind == "none":
                for sub in stmt.body:
                    _mark_subtree(sub, detached)
                _collect_detached(stmt.orelse, listener_locals, detached)
                continue
            if kind == "notnone":
                _collect_detached(stmt.body, listener_locals, detached)
                for sub in stmt.orelse:
                    _mark_subtree(sub, detached)
                if _terminates(stmt.body):
                    after_attached_exit = True
                continue
        for field in ("body", "orelse", "finalbody"):
            sub_body = getattr(stmt, field, None)
            if sub_body:
                _collect_detached(sub_body, listener_locals, detached)
        for handler in getattr(stmt, "handlers", []) or []:
            _collect_detached(handler.body, listener_locals, detached)


def _header_exprs(stmt: ast.stmt) -> List[ast.expr]:
    """The expressions evaluated *at* a statement's own CFG node (for
    compound statements, the test/iterable — not the nested bodies,
    which are their own nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Try):
        return []
    return [
        child for child in ast.iter_child_nodes(stmt)
        if isinstance(child, ast.expr)
    ]


def _notifier_methods(
    index: SymbolIndex,
    hooked_classes: Set[str],
    notify: Tuple[str, ...],
) -> Set[str]:
    """Method names (on hooked classes) that notify on some path —
    directly, via a listener guard, or transitively through self-calls
    (greatest useful fixpoint over names; names are unambiguous enough
    inside the kernel family)."""
    methods: Dict[str, List[FunctionInfo]] = {}
    for cls in hooked_classes:
        for name, info in index.methods.get(cls, {}).items():
            methods.setdefault(name, []).append(info)

    def direct(fn: FunctionInfo) -> bool:
        listener_locals = _listener_locals(fn)
        for sub in ast.walk(fn.node):
            if (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in notify
            ):
                return True
            if isinstance(sub, ast.If) and _listener_guard(
                sub.test, listener_locals
            ):
                return True
        return False

    notifiers: Set[str] = {
        name for name, infos in methods.items() if any(map(direct, infos))
    }
    changed = True
    while changed:
        changed = False
        for name, infos in methods.items():
            if name in notifiers:
                continue
            for fn in infos:
                aliases = index.bound_method_aliases(fn)
                for sub in ast.walk(fn.node):
                    if not isinstance(sub, ast.Call):
                        continue
                    called = _called_method_name(sub, aliases)
                    if called in notifiers:
                        notifiers.add(name)
                        changed = True
                        break
                if name in notifiers:
                    break
    return notifiers


def _called_method_name(
    call: ast.Call, aliases: Dict[str, str]
) -> Optional[str]:
    """Method name a call targets via self/super/Class/bound alias."""
    func = call.func
    if isinstance(func, ast.Name):
        return aliases.get(func.id)
    if isinstance(func, ast.Attribute):
        base = func.value
        if isinstance(base, ast.Name) and base.id in ("self", "cls"):
            return func.attr
        if isinstance(base, ast.Name) and base.id[:1].isupper():
            return func.attr  # ClassName.m(self, ...)
        if (
            isinstance(base, ast.Call)
            and isinstance(base.func, ast.Name)
            and base.func.id == "super"
        ):
            return func.attr
    return None


def _data_aliases(
    fn: FunctionInfo, attrs: Set[str]
) -> Dict[str, str]:
    """Locals aliasing ``<obj>.<attr>`` for an inventory attr."""
    out: Dict[str, str] = {}
    for sub in ast.walk(fn.node):
        if (
            isinstance(sub, ast.Assign)
            and len(sub.targets) == 1
            and isinstance(sub.targets[0], ast.Name)
            and isinstance(sub.value, ast.Attribute)
            and sub.value.attr in attrs
        ):
            out[sub.targets[0].id] = sub.value.attr
    return out


def _written_inventory_attrs(
    stmt: ast.stmt,
    attrs: Set[str],
    aliases: Dict[str, str],
    self_only: bool,
) -> List[str]:
    """Inventory attrs this (simple) statement writes."""
    targets: List[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    out: List[str] = []

    def visit(target: ast.expr) -> None:
        if isinstance(target, ast.Tuple):
            for elt in target.elts:
                visit(elt)
            return
        if isinstance(target, ast.Subscript):
            value = target.value
            if isinstance(value, ast.Name) and value.id in aliases:
                out.append(aliases[value.id])
                return
            target = value
        if isinstance(target, ast.Attribute) and target.attr in attrs:
            if self_only and not (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                return
            out.append(target.attr)

    for target in targets:
        visit(target)
    return out


def _is_coverage_stmt(
    stmt: ast.stmt,
    notify: Tuple[str, ...],
    notifiers: Set[str],
    aliases: Dict[str, str],
    listener_locals: Set[str],
) -> bool:
    for expr in _header_exprs(stmt):
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                if (
                    isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in notify
                ):
                    return True
                called = _called_method_name(sub, aliases)
                if called is not None and called in notifiers:
                    return True
            elif isinstance(sub, ast.Compare) and _listener_guard(
                sub, listener_locals
            ):
                return True
    return False


def _check_function(
    index: SymbolIndex,
    fn: FunctionInfo,
    attrs: Set[str],
    notify: Tuple[str, ...],
    notifiers: Set[str],
) -> List[Diagnostic]:
    listener_locals = _listener_locals(fn)
    data_aliases = _data_aliases(fn, attrs)
    method_aliases = index.bound_method_aliases(fn)
    self_only = fn.cls is not None

    detached: Set[int] = set()
    _collect_detached(fn.node.body, listener_locals, detached)

    cfg = build_cfg(fn.node, implicit_exceptions=False)
    coverage: Set[int] = set()
    mutations: List[Tuple[int, ast.stmt, str]] = []
    for nid, stmt in cfg.stmts.items():
        if _is_coverage_stmt(
            stmt, notify, notifiers, method_aliases, listener_locals
        ):
            coverage.add(nid)
        if id(stmt) in detached:
            continue
        for attr in _written_inventory_attrs(
            stmt, attrs, data_aliases, self_only
        ):
            mutations.append((nid, stmt, attr))
    if not mutations:
        return []

    safe = covered_by(cfg, coverage, exc_safe=True)
    waivers = index.waivers[fn.path]
    owner = f"{fn.cls}.{fn.name}" if fn.cls else fn.name
    out: List[Diagnostic] = []
    for nid, stmt, attr in mutations:
        if node_covered(cfg, nid, safe):
            continue
        waived, bare = waivers.lookup(
            TAG,
            (stmt.lineno, stmt.lineno - 1, fn.node.lineno, fn.node.lineno - 1),
        )
        if waived:
            continue
        if bare is not None:
            out.append(
                Diagnostic(
                    fn.path,
                    bare,
                    0,
                    RULE_ID,
                    f"waiver '# reprolint: {TAG}' needs a justification "
                    f"('# reprolint: {TAG} — <why>'); blanket suppressions "
                    f"are not accepted",
                )
            )
            continue
        out.append(
            Diagnostic(
                fn.path,
                stmt.lineno,
                stmt.col_offset,
                RULE_ID,
                f"cell-state write to '{attr}' in '{owner}' is not "
                f"post-dominated by a CellListener notification on every "
                f"path (hooks contract, core/hooks.py); notify after the "
                f"mutation or waive with '# reprolint: {TAG} — <why>'",
            )
        )
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    hooked_names, attr_tuple, notify = _load_inventory(index)
    attrs = set(attr_tuple)

    hooked_classes: Set[str] = set()
    for path in index.paths:
        for info in index.per_file_classes[path]:
            if info.name in hooked_names or any(
                index.classes.descends_from(info, name)
                for name in hooked_names
            ):
                hooked_classes.add(info.name)

    notifiers = _notifier_methods(index, hooked_classes, notify)

    out: List[Diagnostic] = []
    for fn in index.functions.values():
        if not _in_core(fn.path):
            continue
        if fn.cls is not None:
            if fn.cls not in hooked_classes or fn.name == "__init__":
                continue
        out.extend(_check_function(index, fn, attrs, notify, notifiers))
    return out
