"""R007 — async safety: no blocking calls reachable from serve coroutines.

The serving tier runs a single asyncio event loop; one blocking call in
anything a coroutine handler reaches stalls every concurrent request.
This rule walks the call graph from every ``async def`` in a ``serve/``
module — through method resolution, from-imports, and attribute types
(``self.snapshots.save(...)`` resolves through the ``SnapshotStore``
annotation) — and flags the blocking primitives it can prove reachable:

* ``time.sleep``
* synchronous file I/O (the ``open`` builtin / ``io.open``)
* ``subprocess.*``
* unbounded ``queue.Queue.get`` (no ``timeout=``, not ``block=False``;
  ``asyncio.Queue.get`` is of course fine)

Functions only handed to ``run_in_executor`` are not *called* from the
coroutine, so offloaded work is naturally exempt.

Waiver: ``# reprolint: blocking-ok — <why>`` on the call, the line
above, or the enclosing ``def`` line — for blocking that is the point
(e.g. the snapshot fsync that *is* the durability barrier).
"""

from __future__ import annotations

import ast
import os
from collections import deque
from typing import Dict, List, Optional, Tuple

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import CallSite, FunctionInfo, SymbolIndex

RULE_ID = "R007"
TAG = "blocking-ok"

#: Externals blocked outright: exact dotted names.
_BLOCKING_EXACT = {
    "time.sleep": "time.sleep()",
    "open": "the open() builtin (sync file I/O)",
    "io.open": "io.open() (sync file I/O)",
}

#: Externals blocked by prefix.
_BLOCKING_PREFIXES = (("subprocess.", "subprocess"),)

#: Receiver types whose ``.get()`` blocks when unbounded.
_BLOCKING_QUEUE_GETS = {
    "queue.Queue.get",
    "queue.SimpleQueue.get",
    "queue.LifoQueue.get",
    "queue.PriorityQueue.get",
    "multiprocessing.Queue.get",
}


def _in_serve(path: str) -> bool:
    return "serve" in os.path.normpath(path).split(os.sep)[:-1]


def _blocking_desc(site: CallSite) -> Optional[str]:
    name = site.external
    if name is None:
        return None
    if name in _BLOCKING_EXACT:
        return _BLOCKING_EXACT[name]
    for prefix, label in _BLOCKING_PREFIXES:
        if name.startswith(prefix):
            return f"{name}() ({label})"
    if name in _BLOCKING_QUEUE_GETS:
        call = site.node
        if any(kw.arg == "timeout" for kw in call.keywords):
            return None
        if any(
            isinstance(arg, ast.Constant) and arg.value is False
            for arg in call.args[:1]
        ) or any(
            kw.arg == "block"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in call.keywords
        ):
            return None
        return f"unbounded {name}()"
    return None


def check(index: SymbolIndex) -> List[Diagnostic]:
    entries = sorted(
        (
            fn
            for fn in index.functions.values()
            if fn.is_async and _in_serve(fn.path)
        ),
        key=lambda f: (f.path, f.node.lineno),
    )
    #: qualname -> (entry coroutine, call chain of function names)
    origin: Dict[str, Tuple[FunctionInfo, List[str]]] = {}
    work: "deque[FunctionInfo]" = deque()
    for entry in entries:
        if entry.qualname not in origin:
            origin[entry.qualname] = (entry, [entry.name])
            work.append(entry)

    out: List[Diagnostic] = []
    while work:
        fn = work.popleft()
        entry, chain = origin[fn.qualname]
        for site in index.callees(fn):
            if site.target is not None:
                target = site.target
                if target.qualname not in origin:
                    origin[target.qualname] = (entry, chain + [target.name])
                    work.append(target)
                continue
            desc = _blocking_desc(site)
            if desc is None:
                continue
            call = site.node
            waived, bare = index.waivers[fn.path].lookup(
                TAG,
                (
                    call.lineno,
                    call.lineno - 1,
                    fn.node.lineno,
                    fn.node.lineno - 1,
                ),
            )
            if waived:
                continue
            route = " -> ".join(chain + [f"<{desc}>"])
            if bare is not None:
                out.append(
                    Diagnostic(
                        fn.path,
                        bare,
                        0,
                        RULE_ID,
                        f"waiver '# reprolint: {TAG}' needs a justification "
                        f"('# reprolint: {TAG} — <why>'); blanket "
                        f"suppressions are not accepted",
                    )
                )
                continue
            out.append(
                Diagnostic(
                    fn.path,
                    call.lineno,
                    call.col_offset,
                    RULE_ID,
                    f"blocking call to {desc} is reachable from coroutine "
                    f"'{entry.name}' ({route}); offload with "
                    f"run_in_executor or waive with "
                    f"'# reprolint: {TAG} — <why>'",
                )
            )
    return out
