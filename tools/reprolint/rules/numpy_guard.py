"""R004 — numpy-optional: top-level numpy imports carry a fallback.

A module importing numpy at top level must guard the import with
``try/except ImportError`` so the pure-Python fallback path stays
importable.
"""

from __future__ import annotations

import ast
from typing import List

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.symbols import SymbolIndex

RULE_ID = "R004"


def _numpy_aliases(node: ast.stmt) -> List[str]:
    if isinstance(node, ast.Import):
        return [a.asname or a.name for a in node.names if a.name == "numpy"]
    if isinstance(node, ast.ImportFrom) and node.module == "numpy":
        return [a.asname or a.name for a in node.names]
    return []


def _catches_import_error(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else (
            t.id if isinstance(t, ast.Name) else ""
        )
        if name in ("ImportError", "ModuleNotFoundError", "Exception"):
            return True
    return False


def check_r004(tree: ast.Module, path: str) -> List[Diagnostic]:
    """numpy imports at module top level must carry a guarded fallback."""
    out = []
    for node in tree.body:
        if isinstance(node, ast.Try):
            guarded = any(_catches_import_error(h) for h in node.handlers)
            if guarded:
                continue
            for sub in node.body:
                for alias in _numpy_aliases(sub):
                    out.append(
                        Diagnostic(
                            path,
                            sub.lineno,
                            sub.col_offset,
                            "R004",
                            f"numpy import '{alias}' sits in a try block that "
                            f"never catches ImportError; add the fallback "
                            f"handler so numpy stays optional",
                        )
                    )
            continue
        for alias in _numpy_aliases(node):
            out.append(
                Diagnostic(
                    path,
                    node.lineno,
                    node.col_offset,
                    "R004",
                    f"unguarded top-level numpy import '{alias}'; wrap in "
                    f"try/except ImportError with a pure-Python fallback "
                    f"(numpy is an optional dependency)",
                )
            )
    return out


def check(index: SymbolIndex) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for path in index.paths:
        out.extend(check_r004(index.trees[path], path))
    return out
