"""reprolint — repo-specific static analysis for the LTC reproduction.

Generic linters (ruff, mypy) cannot express the contracts this codebase
actually lives by: replay-identical batched ingestion, numpy-optional
fallbacks, the capture-at-construction observability pattern,
determinism of the core structures, versioned binary checkpoints, the
CellListener hooks contract, event-loop safety in the serving tier, and
the shm transport's parent-owned segment lifecycle.  ``reprolint`` is a
two-pass static analysis — a cross-module symbol index and call graph
(:mod:`tools.reprolint.symbols`), then rule families over per-function
CFG/dataflow summaries (:mod:`tools.reprolint.cfg`,
:mod:`tools.reprolint.rules`) — that machine-checks those contracts.

Run it from the repository root::

    python -m tools.reprolint src/repro           # lint the library
    python -m tools.reprolint src/repro tools     # library + tooling
    python -m tools.reprolint --rules 'R00*'      # glob rule selection
    python -m tools.reprolint --format sarif --output reprolint.sarif

Rules (details in each :mod:`tools.reprolint.rules` module):

* **R001** — batched-ingestion pairing: a class defining ``insert_many``
  must have a concrete ``insert`` (own or inherited), and every
  ``StreamSummary`` subclass that overrides ``insert`` must also carry a
  batched ``insert_many`` override somewhere below the base class.
* **R002** — observability hot-path discipline: methods on the hot path
  (``insert*``, ``evict*``, ``decrement*``, ``update*``) must use the
  capture-at-construction registry with a single ``is None`` guard —
  never call ``obs.registry()`` / ``obs.is_enabled()`` or register
  metrics inline.
* **R003** — determinism: no unseeded ``random.*`` module calls,
  ``time.time()`` or ``os.urandom()`` inside ``core/``, ``sketches/``,
  ``summaries/`` or ``membership/`` (replay identity depends on it).
* **R004** — numpy-optional: a module importing numpy at top level must
  guard the import with ``try/except ImportError`` so the pure-Python
  fallback path stays importable.
* **R005** — versioned checkpoints: a module defining both ``to_bytes``
  and ``from_bytes`` must reference a shared module-level format-version
  constant (name containing ``MAGIC``/``VERSION``/``FORMAT``) from both.
* **R006** — hook discipline: every cell-state mutation in a hooked
  kernel (inventory in ``core/hooks.py``) is post-dominated by a
  ``CellListener`` notification on all paths, or carries a
  ``# reprolint: detached — <why>`` waiver.
* **R007** — async safety: no blocking calls (``time.sleep``, sync file
  I/O, ``subprocess``, unbounded ``queue.get``) reachable from serve
  coroutines through the call graph; waive with
  ``# reprolint: blocking-ok — <why>``.
* **R008** — shm lifecycle: segment creations pair with close/unlink on
  all CFG paths including exception edges; attach-side handles never
  unlink; waive with ``# reprolint: shm-owner — <why>``.
* **R009** — kernel parity: a class defining both ``insert`` and
  ``insert_many``/``update_many`` must touch the same state attributes
  in both (strict writes vs. strict∪may writes); waive with
  ``# reprolint: parity-ok — <why>``.

Exit status: 0 when clean, 1 when any diagnostic fired, 2 on usage or
parse errors.
"""

from __future__ import annotations

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.engine import lint_paths

__all__ = ["Diagnostic", "lint_paths", "main"]


def _expand_rule_patterns(spec: str) -> "frozenset[str] | None":
    """Expand a comma-separated ``--rules`` spec (ids or globs).

    Returns ``None`` for "all rules"; raises ``ValueError`` when a
    pattern matches no known rule.
    """
    import fnmatch

    from tools.reprolint.rules import RULES

    patterns = [p.strip().upper() for p in spec.split(",") if p.strip()]
    if not patterns:
        return None
    selected = set()
    for pattern in patterns:
        matched = fnmatch.filter(RULES, pattern)
        if not matched:
            raise ValueError(
                f"--rules pattern {pattern!r} matches no known rule "
                f"(known: {', '.join(RULES)})"
            )
        selected.update(matched)
    return frozenset(selected)


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit status."""
    import argparse

    from tools.reprolint.formats import RENDERERS

    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific static analysis for the LTC reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="Files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        default="",
        help="Comma-separated rule ids or globs, e.g. R003 or 'R00*' "
        "(default: all)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        choices=sorted(RENDERERS),
        default="text",
        help="Output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="Write the report to this file instead of stdout "
        "(a text summary still goes to stdout)",
    )
    args = parser.parse_args(argv)
    try:
        only = _expand_rule_patterns(args.rules)
    except ValueError as exc:
        print(f"reprolint: error: {exc}")
        return 2
    try:
        diagnostics = lint_paths(args.paths, only=only)
    except (OSError, SyntaxError) as exc:
        print(f"reprolint: error: {exc}")
        return 2
    report = RENDERERS[args.fmt](diagnostics)
    if args.output is not None:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(report + "\n")
        if diagnostics:
            print(f"reprolint: {len(diagnostics)} violation(s)")
        else:
            print("reprolint: clean")
    else:
        print(report)
    return 1 if diagnostics else 0
