"""reprolint — repo-specific static analysis for the LTC reproduction.

Generic linters (ruff, mypy) cannot express the contracts this codebase
actually lives by: replay-identical batched ingestion, numpy-optional
fallbacks, the capture-at-construction observability pattern,
determinism of the core structures, and versioned binary checkpoints.
``reprolint`` is a small AST pass that machine-checks those contracts.

Run it from the repository root::

    python -m tools.reprolint src/repro          # lint the library
    python -m tools.reprolint path/to/file.py    # lint specific files

Rules (see :mod:`tools.reprolint.rules` for the full text):

* **R001** — batched-ingestion pairing: a class defining ``insert_many``
  must have a concrete ``insert`` (own or inherited), and every
  ``StreamSummary`` subclass that overrides ``insert`` must also carry a
  batched ``insert_many`` override somewhere below the base class.
* **R002** — observability hot-path discipline: methods on the hot path
  (``insert*``, ``evict*``, ``decrement*``, ``update*``) must use the
  capture-at-construction registry with a single ``is None`` guard —
  never call ``obs.registry()`` / ``obs.is_enabled()`` or register
  metrics inline.
* **R003** — determinism: no unseeded ``random.*`` module calls,
  ``time.time()`` or ``os.urandom()`` inside ``core/``, ``sketches/``,
  ``summaries/`` or ``membership/`` (replay identity depends on it).
* **R004** — numpy-optional: a module importing numpy at top level must
  guard the import with ``try/except ImportError`` so the pure-Python
  fallback path stays importable.
* **R005** — versioned checkpoints: a module defining both ``to_bytes``
  and ``from_bytes`` must reference a shared module-level format-version
  constant (name containing ``MAGIC``/``VERSION``/``FORMAT``) from both.

Exit status: 0 when clean, 1 when any diagnostic fired, 2 on usage or
parse errors.
"""

from __future__ import annotations

from tools.reprolint.rules import Diagnostic, lint_paths

__all__ = ["Diagnostic", "lint_paths", "main"]


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit status."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description="Repo-specific static analysis for the LTC reproduction.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="Files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--rules",
        default="",
        help="Comma-separated rule ids to run (default: all)",
    )
    args = parser.parse_args(argv)
    only = frozenset(r.strip().upper() for r in args.rules.split(",") if r.strip())
    try:
        diagnostics = lint_paths(args.paths, only=only or None)
    except (OSError, SyntaxError) as exc:
        print(f"reprolint: error: {exc}")
        return 2
    for diag in diagnostics:
        print(diag.render())
    if diagnostics:
        print(f"reprolint: {len(diagnostics)} violation(s)")
        return 1
    print("reprolint: clean")
    return 0
