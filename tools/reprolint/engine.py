"""The two-pass lint driver.

Pass 1 parses every file under the given paths and builds one
:class:`~tools.reprolint.symbols.SymbolIndex` — the cross-module class
index, function table, import maps, attribute types, and call graph.
Pass 2 runs every selected rule over the index; intra-file rules walk
their trees, the dataflow rules (R006–R009) pull per-function CFG and
write-set summaries on demand.

``lint_paths`` is the library entry point (the CLI in
``tools/reprolint/__init__`` wraps it with formats and rule globs).
"""

from __future__ import annotations

import ast
import os
from typing import FrozenSet, List, Optional, Sequence, Tuple

from tools.reprolint.diagnostics import Diagnostic
from tools.reprolint.rules import rule_checks
from tools.reprolint.symbols import SymbolIndex


def _iter_python_files(paths: Sequence[str]) -> List[str]:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(
                    d for d in dirs if d != "__pycache__" and not d.startswith(".")
                )
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        elif path.endswith(".py"):
            files.append(path)
        else:
            raise OSError(f"not a Python file or directory: {path}")
    return files


def build_index(paths: Sequence[str]) -> SymbolIndex:
    """Pass 1: parse and index every Python file under ``paths``."""
    parsed: List[Tuple[str, ast.Module, str]] = []
    for path in _iter_python_files(paths):
        with open(path, "r", encoding="utf-8") as fh:
            source = fh.read()
        parsed.append((path, ast.parse(source, filename=path), source))
    return SymbolIndex(parsed)


def lint_paths(
    paths: Sequence[str], only: Optional[FrozenSet[str]] = None
) -> List[Diagnostic]:
    """Lint files/directories; returns diagnostics sorted by location."""
    index = build_index(paths)
    checks = rule_checks()
    out: List[Diagnostic] = []
    for rule_id in sorted(checks):
        if only is None or rule_id in only:
            out.extend(checks[rule_id](index))
    out.sort(key=lambda d: (d.path, d.line, d.col, d.rule))
    return out
