"""A bounded indexed min-heap for top-k tracking.

Sketch-based top-k algorithms keep a min-heap of the k best items seen so
far and need three operations fast: read the minimum, increase the value of
an item already in the heap, and replace the minimum when a better item
arrives.  A plain ``heapq`` cannot increase keys in place, so this is a
classic array heap with a position map (item -> slot).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Tuple

from repro import sanitize


class TopKHeap:
    """Min-heap over ``(value, item)`` bounded to ``capacity`` entries."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._values: List[float] = []
        self._items: List[int] = []
        self._pos: Dict[int, int] = {}
        if sanitize.env_enabled():
            sanitize.install_heap(self)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: int) -> bool:
        return item in self._pos

    def min_value(self) -> float:
        """Smallest tracked value, or 0 when the heap is not yet full."""
        if len(self._items) < self.capacity:
            return 0.0
        return self._values[0]

    def value_of(self, item: int) -> float:
        """Current value of ``item`` (0 when not tracked)."""
        slot = self._pos.get(item)
        return self._values[slot] if slot is not None else 0.0

    def offer(self, item: int, value: float) -> None:
        """Insert or update ``item`` with ``value``.

        * tracked item: the stored value moves to ``value`` (up or down);
        * untracked item, heap not full: inserted;
        * untracked item, heap full: replaces the minimum iff
          ``value > min_value()``.
        """
        slot = self._pos.get(item)
        if slot is not None:
            old = self._values[slot]
            self._values[slot] = value
            if value > old:
                self._sift_down(slot)
            elif value < old:
                self._sift_up(slot)
            return
        if len(self._items) < self.capacity:
            self._values.append(value)
            self._items.append(item)
            self._pos[item] = len(self._items) - 1
            self._sift_up(len(self._items) - 1)
            return
        if value > self._values[0]:
            evicted = self._items[0]
            del self._pos[evicted]
            self._values[0] = value
            self._items[0] = item
            self._pos[item] = 0
            self._sift_down(0)

    def items(self) -> Iterator[Tuple[int, float]]:
        """Yield ``(item, value)`` pairs in arbitrary order."""
        return zip(self._items, self._values)

    def best(self, k: int | None = None) -> List[Tuple[int, float]]:
        """The tracked items sorted by value descending (ties by item id)."""
        ranked = sorted(
            zip(self._items, self._values), key=lambda p: (-p[1], p[0])
        )
        return ranked if k is None else ranked[:k]

    # ------------------------------------------------------------- internals
    def _swap(self, i: int, j: int) -> None:
        self._values[i], self._values[j] = self._values[j], self._values[i]
        self._items[i], self._items[j] = self._items[j], self._items[i]
        self._pos[self._items[i]] = i
        self._pos[self._items[j]] = j

    def _sift_up(self, slot: int) -> None:
        while slot > 0:
            parent = (slot - 1) >> 1
            if self._values[slot] < self._values[parent]:
                self._swap(slot, parent)
                slot = parent
            else:
                return

    def _sift_down(self, slot: int) -> None:
        size = len(self._items)
        while True:
            left = 2 * slot + 1
            right = left + 1
            smallest = slot
            if left < size and self._values[left] < self._values[smallest]:
                smallest = left
            if right < size and self._values[right] < self._values[smallest]:
                smallest = right
            if smallest == slot:
                return
            self._swap(slot, smallest)
            slot = smallest

    def check_invariant(self) -> bool:
        """Verify the heap property and position map (used by tests)."""
        for i in range(1, len(self._items)):
            if self._values[i] < self._values[(i - 1) >> 1]:
                return False
        return all(self._items[s] == item for item, s in self._pos.items())
