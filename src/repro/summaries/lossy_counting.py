"""Lossy Counting (Manku & Motwani 2002) — paper baseline "LC".

The stream is processed in buckets of width ``⌈1/ε⌉``.  Each entry stores
``(count, Δ)`` where Δ bounds the count missed before the entry was
created; at every bucket boundary entries with ``count + Δ ≤ b`` (the
current bucket id) are pruned.

For the paper's fixed-memory comparison we derive ε from the cell budget
(``ε = 2 / cells`` keeps the expected table size below the budget on
Zipfian data) and additionally enforce the budget as a hard cap by pruning
the weakest entries when an insertion would overflow — the same adaptation
the paper applies to make all algorithms memory-comparable.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import obs
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts


class LossyCounting(StreamSummary):
    """Lossy Counting with a hard cell budget.

    Args:
        capacity: Maximum number of table entries.
        epsilon: Error parameter; defaults to ``2 / capacity``.
    """

    def __init__(self, capacity: int, epsilon: float | None = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.epsilon = epsilon if epsilon is not None else 2.0 / capacity
        if self.epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.bucket_width = max(1, math.ceil(1.0 / self.epsilon))
        self._entries: Dict[int, Tuple[int, int]] = {}  # item -> (count, delta)
        self._seen = 0
        self._bucket_id = 1
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(cls, budget: MemoryBudget) -> "LossyCounting":
        """Size the summary for a byte budget (8 bytes per cell)."""
        return cls(capacity=budget.counter_cells())

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        self._seen += 1
        entry = self._entries.get(item)
        if entry is not None:
            self._entries[item] = (entry[0] + 1, entry[1])
        else:
            if len(self._entries) >= self.capacity:
                self._shed()
            self._entries[item] = (1, self._bucket_id - 1)
        if self._seen % self.bucket_width == 0:
            self._prune()
            self._bucket_id += 1

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Chunks the batch at prune boundaries (every ``bucket_width``
        arrivals) so Δ for new entries and the prune bucket id stay
        constant within a chunk; inside a chunk, maximal runs of hits and
        free-slot adds fold to multiplicities applied in first-occurrence
        order (``_shed`` breaks count ties by dict insertion order, so
        the order is part of the replicated state).  When every distinct
        item of the chunk fits without shedding, the whole chunk folds in
        one C-speed :class:`collections.Counter` pass (``Counter``
        preserves first-occurrence order).  The run-breaking event — a
        new item against a full table, which sheds — is delegated to
        :meth:`insert`.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        entries = self._entries
        capacity = self.capacity
        width = self.bucket_width
        i = 0
        while i < total:
            limit = min(total, i + width - self._seen % width)
            folded = Counter(items[i:limit])
            free = capacity - len(entries)
            for key in folded:
                if key not in entries:
                    free -= 1
                    if free < 0:
                        break
            if free >= 0:
                delta = self._bucket_id - 1
                get = entries.get
                for item, arrivals in folded.items():
                    entry = get(item)
                    if entry is not None:
                        entries[item] = (entry[0] + arrivals, entry[1])
                    else:
                        entries[item] = (arrivals, delta)
                self._seen += limit - i
                i = limit
                if self._seen % width == 0:
                    self._prune()
                    self._bucket_id += 1
                    entries = self._entries  # _prune rebinds the dict
                continue
            mult: Dict[int, int] = {}
            free = capacity - len(entries)
            j = i
            while j < limit:
                item = items[j]
                if item in mult:
                    mult[item] += 1
                elif item in entries:
                    mult[item] = 1
                elif free > 0:
                    mult[item] = 1
                    free -= 1
                else:
                    break
                j += 1
            if j > i:
                delta = self._bucket_id - 1
                get = entries.get
                for item, arrivals in mult.items():
                    entry = get(item)
                    if entry is not None:
                        entries[item] = (entry[0] + arrivals, entry[1])
                    else:
                        entries[item] = (arrivals, delta)
                self._seen += j - i
                if self._seen % width == 0:
                    self._prune()
                    self._bucket_id += 1
                    entries = self._entries  # _prune rebinds the dict
            blocked = j < limit
            i = j
            if blocked:
                self.insert(items[i])
                entries = self._entries  # insert may prune (rebind)
                i += 1

    def _prune(self) -> None:
        """Standard boundary prune: drop entries with count + Δ ≤ b."""
        b = self._bucket_id
        self._entries = {
            item: (count, delta)
            for item, (count, delta) in self._entries.items()
            if count + delta > b
        }

    def _shed(self) -> None:
        """Hard-cap enforcement: drop the weakest ~25% of entries."""
        if not self._entries:
            return
        ranked = sorted(
            self._entries.items(), key=lambda kv: kv[1][0] + kv[1][1]
        )
        drop = max(1, len(ranked) // 4)
        for item, _ in ranked[:drop]:
            del self._entries[item]

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        entry = self._entries.get(item)
        return float(entry[0]) if entry else 0.0

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        ranked = sorted(
            self._entries.items(), key=lambda kv: (-kv[1][0], kv[0])
        )
        return [
            ItemReport(item=item, significance=float(c), frequency=float(c))
            for item, (c, _) in ranked[:k]
        ]

    def __len__(self) -> int:
        return len(self._entries)
