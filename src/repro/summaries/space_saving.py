"""Space-Saving (Metwally, Agrawal, El Abbadi 2005) — paper baseline "SS".

Monitors ``capacity`` items.  A hit increments the item's counter; a miss
when full *replaces* the minimum item and sets the newcomer's counter to
``min + 1`` (the overestimation the paper's Long-tail Replacement is
designed to avoid).  Uses the genuine Stream-Summary structure for O(1)
amortised updates.
"""

from __future__ import annotations

from typing import List

from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary
from repro.summaries.stream_summary import StreamSummaryList


class SpaceSaving(StreamSummary):
    """Classic Space-Saving top-k frequent-items summary.

    Args:
        capacity: Number of monitored counters (the paper derives this from
            the memory budget; see :meth:`from_memory`).
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._summary = StreamSummaryList()

    @classmethod
    def from_memory(cls, budget: MemoryBudget) -> "SpaceSaving":
        """Size the summary for a byte budget (8 bytes per cell)."""
        return cls(capacity=budget.counter_cells())

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        summary = self._summary
        if item in summary:
            summary.increment(item)
        elif len(summary) < self.capacity:
            summary.add(item, count=1, error=0)
        else:
            summary.replace_min(item)

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self._summary.count_of(item))

    def guaranteed_count(self, item: int) -> int:
        """Lower bound on the true frequency (count − error)."""
        return self._summary.count_of(item) - self._summary.error_of(item)

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(item=item, significance=float(c), frequency=float(c))
            for item, c in self._summary.top(k)
        ]

    def __len__(self) -> int:
        return len(self._summary)
