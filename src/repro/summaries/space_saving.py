"""Space-Saving (Metwally, Agrawal, El Abbadi 2005) — paper baseline "SS".

Monitors ``capacity`` items.  A hit increments the item's counter; a miss
when full *replaces* the minimum item and sets the newcomer's counter to
``min + 1`` (the overestimation the paper's Long-tail Replacement is
designed to avoid).  Uses the genuine Stream-Summary structure for O(1)
amortised updates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs, sanitize
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts
from repro.summaries.stream_summary import StreamSummaryList


class SpaceSaving(StreamSummary):
    """Classic Space-Saving top-k frequent-items summary.

    Args:
        capacity: Number of monitored counters (the paper derives this from
            the memory budget; see :meth:`from_memory`).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._summary = StreamSummaryList()
        self._m_batch = obs.batch_size_histogram(type(self).__name__)
        if sanitize.env_enabled():
            sanitize.install_space_saving(self)

    @classmethod
    def from_memory(cls, budget: MemoryBudget) -> "SpaceSaving":
        """Size the summary for a byte budget (8 bytes per cell)."""
        return cls(capacity=budget.counter_cells())

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        summary = self._summary
        if item in summary:
            summary.increment(item)
        elif len(summary) < self.capacity:
            summary.add(item, count=1, error=0)
        else:
            summary.replace_min(item)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        The batch is split into maximal *runs* of events that are either
        hits on monitored items or first appearances while a counter cell
        is still free — within such a run membership never shrinks, so
        the run folds to per-item multiplicities and one
        :meth:`StreamSummaryList.apply_run` bulk pass.  The event that
        breaks a run (a miss against a full table) is the order-sensitive
        eviction and is replayed singly via ``replace_min``.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        summary = self._summary
        nodes = summary._nodes
        capacity = self.capacity
        apply_run = summary.apply_run
        i = 0
        while i < total:
            mult: Dict[int, int] = {}
            last: Dict[int, int] = {}
            free = capacity - len(nodes)
            j = i
            while j < total:
                item = items[j]
                if item in mult:
                    mult[item] += 1
                elif item in nodes:
                    mult[item] = 1
                elif free > 0:
                    mult[item] = 1
                    free -= 1
                else:
                    break
                last[item] = j
                j += 1
            if mult:
                apply_run(mult, last)
            i = j
            if i < total:
                summary.replace_min(items[i])
                i += 1

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self._summary.count_of(item))

    def guaranteed_count(self, item: int) -> int:
        """Lower bound on the true frequency (count − error)."""
        return self._summary.count_of(item) - self._summary.error_of(item)

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(item=item, significance=float(c), frequency=float(c))
            for item, c in self._summary.top(k)
        ]

    def __len__(self) -> int:
        return len(self._summary)
