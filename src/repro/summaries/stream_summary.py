"""The Stream-Summary structure of Metwally et al.

Space-Saving's O(1) operation set relies on this structure: a doubly-linked
list of *count buckets* in increasing count order, where each bucket chains
the monitored items that currently share that exact count.  Incrementing an
item detaches it from its bucket and re-attaches it to the (possibly new)
``count + 1`` bucket; the global minimum is always the first bucket.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class _Node:
    """A monitored item: count plus the overestimation error bound."""

    __slots__ = ("item", "count", "error", "bucket", "prev", "next")

    def __init__(self, item: int, count: int, error: int) -> None:
        self.item = item
        self.count = count
        self.error = error
        self.bucket: "_Bucket | None" = None
        self.prev: "_Node | None" = None
        self.next: "_Node | None" = None


class _Bucket:
    """All nodes sharing one exact count, linked in count order."""

    __slots__ = ("count", "head", "prev", "next")

    def __init__(self, count: int) -> None:
        self.count = count
        self.head: "_Node | None" = None
        self.prev: "_Bucket | None" = None
        self.next: "_Bucket | None" = None


class StreamSummaryList:
    """Ordered counters over monitored items with O(1) increment.

    This is a faithful structure (not a heap emulation): tests verify the
    bucket ordering invariant after arbitrary operation sequences.
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, _Node] = {}
        self._min_bucket: "_Bucket | None" = None

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, item: int) -> bool:
        return item in self._nodes

    def count_of(self, item: int) -> int:
        """Current count of ``item`` (0 when not monitored)."""
        node = self._nodes.get(item)
        return node.count if node else 0

    def error_of(self, item: int) -> int:
        """Overestimation error bound of ``item``."""
        node = self._nodes.get(item)
        return node.error if node else 0

    def min_count(self) -> int:
        """Count of the least-counted monitored item (0 when empty)."""
        return self._min_bucket.count if self._min_bucket else 0

    # -------------------------------------------------------------- mutation
    def add(self, item: int, count: int = 1, error: int = 0) -> None:
        """Start monitoring ``item`` with the given count."""
        if item in self._nodes:
            raise ValueError(f"item {item} already monitored")
        node = _Node(item, count, error)
        self._nodes[item] = node
        self._attach(node, self._find_bucket(count))

    def increment(self, item: int, delta: int = 1) -> int:
        """Increase ``item``'s count by ``delta``; returns the new count."""
        node = self._nodes[item]
        for _ in range(delta):
            self._move_up_one(node)
        return node.count

    def replace_min(self, item: int) -> Tuple[int, int]:
        """Space-Saving eviction: replace the minimum item with ``item``.

        The new item inherits ``min_count + 1`` as its count and
        ``min_count`` as its error bound.  Returns ``(evicted, min_count)``.
        """
        bucket = self._min_bucket
        if bucket is None:
            raise IndexError("replace_min on empty summary")
        node = bucket.head
        assert node is not None
        evicted, min_count = node.item, node.count
        del self._nodes[evicted]
        node.item = item
        node.error = min_count
        self._nodes[item] = node
        self._move_up_one(node)
        return evicted, min_count

    def apply_run(self, mult: Dict[int, int], last: Dict[int, int]) -> None:
        """Apply a run of hits/adds in one pass, replay-identical.

        ``mult`` maps item -> number of arrivals in the run; items not yet
        monitored are added fresh (the caller guarantees capacity for
        them).  ``last`` maps item -> the arrival index of the item's
        final occurrence within the run.

        Replaying the run per event attaches a node at the head of its
        bucket on every increment, so afterwards each bucket holds its
        touched nodes in descending last-occurrence order, ahead of any
        untouched nodes.  Reproducing that order exactly matters because
        :meth:`replace_min` evicts the *head* of the minimum bucket, so
        intra-bucket order decides future evictions.  We detach every
        touched node, bump counts wholesale, then re-attach in ascending
        ``(final count, last occurrence)`` order with a single forward
        walk of the bucket list — head-attachment makes the largest
        last-occurrence end up at each bucket's head.
        """
        nodes = self._nodes
        touched = []
        for item, arrivals in mult.items():
            node = nodes.get(item)
            if node is not None:
                self._detach(node)
                node.count += arrivals
            else:
                node = _Node(item, arrivals, 0)
                nodes[item] = node
            touched.append((node.count, last[item], node))
        touched.sort()
        prev = None
        bucket = self._min_bucket
        for count, _, node in touched:
            while bucket is not None and bucket.count < count:
                prev, bucket = bucket, bucket.next
            if bucket is None or bucket.count != count:
                created = _Bucket(count)
                created.prev = prev
                created.next = bucket
                if prev is None:
                    self._min_bucket = created
                else:
                    prev.next = created
                if bucket is not None:
                    bucket.prev = created
                bucket = created
            self._attach(node, bucket)

    # ------------------------------------------------------------- iteration
    def items(self) -> Iterator[Tuple[int, int]]:
        """Yield ``(item, count)`` in non-decreasing count order."""
        bucket = self._min_bucket
        while bucket is not None:
            node = bucket.head
            while node is not None:
                yield node.item, node.count
                node = node.next
            bucket = bucket.next

    def top(self, k: int) -> "list[tuple[int, int]]":
        """The k largest ``(item, count)`` pairs, count-descending."""
        ranked = sorted(self.items(), key=lambda p: (-p[1], p[0]))
        return ranked[:k]

    # ------------------------------------------------------------- internals
    def _find_bucket(self, count: int) -> _Bucket:
        """Find or create the bucket for ``count`` (linear from the min;
        only used by ``add``, which Space-Saving calls with count 1)."""
        prev = None
        bucket = self._min_bucket
        while bucket is not None and bucket.count < count:
            prev = bucket
            bucket = bucket.next
        if bucket is not None and bucket.count == count:
            return bucket
        created = _Bucket(count)
        created.prev = prev
        created.next = bucket
        if prev is None:
            self._min_bucket = created
        else:
            prev.next = created
        if bucket is not None:
            bucket.prev = created
        return created

    def _attach(self, node: _Node, bucket: _Bucket) -> None:
        node.bucket = bucket
        node.prev = None
        node.next = bucket.head
        if bucket.head is not None:
            bucket.head.prev = node
        bucket.head = node

    def _detach(self, node: _Node) -> None:
        bucket = node.bucket
        assert bucket is not None
        if node.prev is not None:
            node.prev.next = node.next
        else:
            bucket.head = node.next
        if node.next is not None:
            node.next.prev = node.prev
        node.prev = node.next = None
        if bucket.head is None:
            self._remove_bucket(bucket)

    def _remove_bucket(self, bucket: _Bucket) -> None:
        if bucket.prev is not None:
            bucket.prev.next = bucket.next
        else:
            self._min_bucket = bucket.next
        if bucket.next is not None:
            bucket.next.prev = bucket.prev

    def _move_up_one(self, node: _Node) -> None:
        """Move ``node`` from its bucket to the ``count + 1`` bucket."""
        old = node.bucket
        assert old is not None
        target_count = node.count + 1
        nxt = old.next
        # Peek at the successor before possibly deleting the old bucket.
        if nxt is not None and nxt.count == target_count:
            target = nxt
            self._detach(node)
        else:
            self._detach(node)
            target = _Bucket(target_count)
            # Re-derive neighbours: old may have been removed by _detach.
            prev = old if old.head is not None else old.prev
            # Walk forward from prev to keep ordering exact even after
            # removals (at most one step in practice).
            if prev is None:
                nxt2 = self._min_bucket
                while nxt2 is not None and nxt2.count < target_count:
                    prev, nxt2 = nxt2, nxt2.next
            else:
                nxt2 = prev.next
                while nxt2 is not None and nxt2.count < target_count:
                    prev, nxt2 = nxt2, nxt2.next
            if nxt2 is not None and nxt2.count == target_count:
                target = nxt2
            else:
                target.prev = prev
                target.next = nxt2
                if prev is None:
                    self._min_bucket = target
                else:
                    prev.next = target
                if nxt2 is not None:
                    nxt2.prev = target
        node.count = target_count
        self._attach(node, target)

    def check_invariant(self) -> bool:
        """Buckets strictly increasing; every node in its bucket (tests)."""
        counts = []
        bucket = self._min_bucket
        while bucket is not None:
            counts.append(bucket.count)
            node = bucket.head
            if node is None:
                return False
            while node is not None:
                if node.count != bucket.count or node.bucket is not bucket:
                    return False
                node = node.next
            bucket = bucket.next
        return counts == sorted(set(counts))
