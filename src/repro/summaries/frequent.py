"""Frequent / Misra–Gries (1982) — paper baseline "Frequent".

Keeps at most ``capacity`` counters.  A miss on a full table decrements
*every* counter and evicts the zeros — the classic deterministic heavy-
hitter guarantee ``f̂ ≥ f − N/(capacity+1)``.  Although the decrement-all
touches every counter, each unit removed was added by exactly one earlier
insertion, so the amortised cost per arrival is O(1).
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary


class Frequent(StreamSummary):
    """Misra–Gries summary over at most ``capacity`` counters."""

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counters: Dict[int, int] = {}  # item -> estimate (no offset)
        self.decrements = 0  # total global decrements (for the MG bound)

    @classmethod
    def from_memory(cls, budget: MemoryBudget) -> "Frequent":
        """Size the summary for a byte budget (8 bytes per cell)."""
        return cls(capacity=budget.counter_cells())

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        counters = self._counters
        if item in counters:
            counters[item] += 1
            return
        if len(counters) < self.capacity:
            counters[item] = 1
            return
        # Decrement-all; purge zeros.  Amortised O(1): each unit of count
        # removed here was added by exactly one earlier insertion.
        self.decrements += 1
        dead = []
        for key in counters:
            counters[key] -= 1
            if counters[key] == 0:
                dead.append(key)
        for key in dead:
            del counters[key]

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self._counters.get(item, 0))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        ranked = sorted(self._counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            ItemReport(item=item, significance=float(c), frequency=float(c))
            for item, c in ranked[:k]
        ]

    def __len__(self) -> int:
        return len(self._counters)
