"""Frequent / Misra–Gries (1982) — paper baseline "Frequent".

Keeps at most ``capacity`` counters.  A miss on a full table decrements
*every* counter and evicts the zeros — the classic deterministic heavy-
hitter guarantee ``f̂ ≥ f − N/(capacity+1)``.  Although the decrement-all
touches every counter, each unit removed was added by exactly one earlier
insertion, so the amortised cost per arrival is O(1).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts


class Frequent(StreamSummary):
    """Misra–Gries summary over at most ``capacity`` counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counters: Dict[int, int] = {}  # item -> estimate (no offset)
        self.decrements = 0  # total global decrements (for the MG bound)
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(cls, budget: MemoryBudget) -> "Frequent":
        """Size the summary for a byte budget (8 bytes per cell)."""
        return cls(capacity=budget.counter_cells())

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        counters = self._counters
        if item in counters:
            counters[item] += 1
            return
        if len(counters) < self.capacity:
            counters[item] = 1
            return
        # Decrement-all; purge zeros.  Amortised O(1): each unit of count
        # removed here was added by exactly one earlier insertion.
        self.decrements += 1
        dead = []
        for key in counters:
            counters[key] -= 1
            if counters[key] == 0:
                dead.append(key)
        for key in dead:
            del counters[key]

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Hits and free-slot adds commute within a run (the counter set
        only grows), so maximal runs fold to per-item multiplicities
        applied in first-occurrence order — preserving the dict insertion
        order a per-event replay produces.  The run-breaking event (a new
        item against a full table) is the global decrement and is applied
        singly.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        counters = self._counters
        capacity = self.capacity
        i = 0
        while i < total:
            mult: Dict[int, int] = {}
            free = capacity - len(counters)
            j = i
            while j < total:
                item = items[j]
                if item in mult:
                    mult[item] += 1
                elif item in counters:
                    mult[item] = 1
                elif free > 0:
                    mult[item] = 1
                    free -= 1
                else:
                    break
                j += 1
            get = counters.get
            for item, arrivals in mult.items():
                counters[item] = get(item, 0) + arrivals
            i = j
            if i < total:
                self.decrements += 1
                dead = []
                for key in counters:
                    counters[key] -= 1
                    if counters[key] == 0:
                        dead.append(key)
                for key in dead:
                    del counters[key]
                i += 1

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self._counters.get(item, 0))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        ranked = sorted(self._counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            ItemReport(item=item, significance=float(c), frequency=float(c))
            for item, c in ranked[:k]
        ]

    def __len__(self) -> int:
        return len(self._counters)
