"""Frequent / Misra–Gries (1982) — paper baseline "Frequent".

Keeps at most ``capacity`` counters.  A miss on a full table decrements
*every* counter and evicts the zeros — the classic deterministic heavy-
hitter guarantee ``f̂ ≥ f − N/(capacity+1)``.  Although the decrement-all
touches every counter, each unit removed was added by exactly one earlier
insertion, so the amortised cost per arrival is O(1).
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro import obs
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts


class Frequent(StreamSummary):
    """Misra–Gries summary over at most ``capacity`` counters."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._counters: Dict[int, int] = {}  # item -> estimate (no offset)
        self.decrements = 0  # total global decrements (for the MG bound)
        self._fold_backoff = 0  # chunks to skip Counter-folding after a miss
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(cls, budget: MemoryBudget) -> "Frequent":
        """Size the summary for a byte budget (8 bytes per cell)."""
        return cls(capacity=budget.counter_cells())

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        counters = self._counters
        if item in counters:
            counters[item] += 1
            return
        if len(counters) < self.capacity:
            counters[item] = 1
            return
        # Decrement-all; purge zeros.  Amortised O(1): each unit of count
        # removed here was added by exactly one earlier insertion.
        self.decrements += 1
        dead = []
        for key in counters:
            counters[key] -= 1
            if counters[key] == 0:
                dead.append(key)
        for key in dead:
            del counters[key]

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Hits and free-slot adds commute within a run (the counter set
        only grows), so maximal runs fold to per-item multiplicities
        applied in first-occurrence order — preserving the dict insertion
        order a per-event replay produces.  The batch is processed in
        chunks, each folded into a C-speed :class:`collections.Counter`
        (which preserves first-occurrence order) and applied wholesale
        when one of two commuting regimes holds:

        * **everything fits** — the chunk's new distinct items all find
          free slots, so no decrement round can trigger;
        * **full table, no deaths** — the table is full and the chunk's
          ``R`` untracked arrivals each trigger one decrement round; when
          ``R`` is smaller than the minimum counter no counter can reach
          zero in any interleaving, so the rounds fold to one pass
          subtracting ``R`` and every untracked arrival is dropped —
          exactly the per-event outcome.

        Chunks matching neither regime replay through the ordered run
        scan, with streaks of consecutive new items folding their
        decrement rounds while no counter can die.  A failed fold attempt
        backs off for a couple of chunks so churn-heavy regimes (capacity
        far below the distinct count) don't pay for folds that never
        apply — the backoff only picks between identical-outcome paths.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        counters = self._counters
        capacity = self.capacity
        i = 0
        while i < total:
            stop = min(total, i + 4096)
            if self._fold_backoff:
                self._fold_backoff -= 1
                i = self._replay_runs(items, i, stop)
                continue
            folded = Counter(items[i:stop])
            news_distinct = 0
            news_arrivals = 0
            for key, arrivals in folded.items():
                if key not in counters:
                    news_distinct += 1
                    news_arrivals += arrivals
            if news_distinct <= capacity - len(counters):
                get = counters.get
                for key, arrivals in folded.items():
                    counters[key] = get(key, 0) + arrivals
                i = stop
                continue
            if len(counters) == capacity:
                cmin = min(counters.values())
                if news_arrivals < cmin:
                    for key, arrivals in folded.items():
                        if key in counters:
                            counters[key] += arrivals
                    self.decrements += news_arrivals
                    for key in counters:
                        counters[key] -= news_arrivals
                    i = stop
                    continue
            self._fold_backoff = 2
            i = self._replay_runs(items, i, stop)

    def _replay_runs(self, items: Sequence[int], i: int, stop: int) -> int:
        """Ordered per-event fallback for one chunk; returns the next index.

        The per-event logic inlined (hits and free adds verbatim), except
        that a run-breaking new item extends over the streak of
        consecutive new items while no counter can reach zero — those
        decrement rounds kill nothing, so they fold to one pass
        subtracting the streak length.
        """
        counters = self._counters
        capacity = self.capacity
        while i < stop:
            item = items[i]
            if item in counters:
                counters[item] += 1
                i += 1
            elif len(counters) < capacity:
                counters[item] = 1
                i += 1
            else:
                cmin = min(counters.values())
                r = 1
                while (
                    r < cmin - 1
                    and i + r < stop
                    and items[i + r] not in counters
                ):
                    r += 1
                self.decrements += r
                if r <= cmin - 1:
                    for key in counters:
                        counters[key] -= r
                else:  # r == 1 and some counter sits at 1: purge zeros.
                    dead = []
                    for key in counters:
                        counters[key] -= 1
                        if counters[key] == 0:
                            dead.append(key)
                    for key in dead:
                        del counters[key]
                i += r
        return i

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self._counters.get(item, 0))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        ranked = sorted(self._counters.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            ItemReport(item=item, significance=float(c), frequency=float(c))
            for item, c in ranked[:k]
        ]

    def __len__(self) -> int:
        return len(self._counters)
