"""Counter-based frequent-item summaries (paper §II-A baselines).

All summaries speak the same protocol (:class:`repro.summaries.base.StreamSummary`):
``insert(item)``, optional ``end_period()`` / ``finalize()``, ``query(item)``
and ``top_k(k)``, which is what :meth:`repro.streams.PeriodicStream.run`
drives and what the experiment harness evaluates.
"""

from repro.summaries.base import ItemReport, StreamSummary
from repro.summaries.heap import TopKHeap
from repro.summaries.stream_summary import StreamSummaryList
from repro.summaries.space_saving import SpaceSaving
from repro.summaries.lossy_counting import LossyCounting
from repro.summaries.frequent import Frequent

__all__ = [
    "StreamSummary",
    "ItemReport",
    "TopKHeap",
    "StreamSummaryList",
    "SpaceSaving",
    "LossyCounting",
    "Frequent",
]
