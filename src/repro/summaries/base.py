"""The common stream-summary protocol and report record."""

from __future__ import annotations

import abc
from itertools import repeat
from typing import Iterable, List, NamedTuple, Optional, Sequence


def expand_counts(items: Iterable[int], counts: Iterable[int]) -> List[int]:
    """Flatten a weighted batch into per-arrival items, in stream order.

    ``(items, counts)`` describes ``counts[i]`` consecutive arrivals of
    ``items[i]``; the expansion is the exact event sequence a per-event
    replay would see.  Negative counts are rejected; zero counts drop the
    item.
    """
    out: List[int] = []
    extend = out.extend
    for item, count in zip(items, counts):
        if count < 0:
            raise ValueError("counts must be non-negative")
        extend(repeat(item, count))
    return out


class ItemReport(NamedTuple):
    """One reported item with its estimated statistics.

    ``frequency`` and ``persistency`` are estimates; summaries that track
    only one dimension fill the other with 0.  ``significance`` is the
    quantity the summary ranks by (for frequent-only summaries it equals
    the frequency estimate).
    """

    item: int
    significance: float
    frequency: float = 0.0
    persistency: float = 0.0


class StreamSummary(abc.ABC):
    """Abstract base for every approximate summary in this library.

    The periodic-stream driver calls :meth:`insert` for each arrival,
    :meth:`end_period` at each period boundary and :meth:`finalize` once at
    stream end.  Structures that ignore periods inherit the no-op defaults.
    """

    @abc.abstractmethod
    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Process a batch of arrivals, in order.

        ``counts``, when given, weights the batch: ``counts[i]``
        consecutive arrivals of ``items[i]`` (see :func:`expand_counts`).
        Semantically identical to calling :meth:`insert` per expanded
        item; the default is a plain loop with the method lookup hoisted.
        Summaries with a cheaper amortised batch path (LTC, FastLTC, and
        every comparison baseline) override this — differential tests pin
        every override cell-for-cell equal to the one-at-a-time reference.
        """
        insert = self.insert
        if counts is None:
            for item in items:
                insert(item)
            return
        for item, count in zip(items, counts):
            if count < 0:
                raise ValueError("counts must be non-negative")
            for _ in range(count):
                insert(item)

    def end_period(self) -> None:
        """React to a period boundary (no-op for frequency-only summaries)."""

    def finalize(self) -> None:
        """Flush end-of-stream state (no-op by default)."""

    @abc.abstractmethod
    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``.

        Returns 0 for items the summary believes it never saw.
        """

    @abc.abstractmethod
    def top_k(self, k: int) -> List[ItemReport]:
        """Report (up to) the k items with the largest estimates."""

    def reported_pairs(self, k: int) -> "list[tuple[int, float]]":
        """Convenience: ``(item, significance)`` pairs for the metrics API."""
        return [(r.item, r.significance) for r in self.top_k(k)]
