"""Zipfian synthetic stream generation.

Item frequencies in the paper's real traces follow a long-tail (Zipfian)
distribution — the property Long-tail Replacement relies on (paper §III-D,
Fig. 6).  This module produces streams with exactly-controlled Zipf shape:
the frequency of the rank-``i`` item is proportional to ``1 / i**skew``,
normalised to the requested number of events with largest-remainder
rounding so totals are exact and deterministic.
"""

from __future__ import annotations

import random
from typing import List

from repro.streams.model import PeriodicStream


def zipf_frequencies(num_events: int, num_distinct: int, skew: float) -> List[int]:
    """Return exact per-rank frequencies for a Zipf(``skew``) population.

    The result sums to ``num_events``; rank 0 is the most frequent item.
    Ranks whose rounded share is zero are dropped, so the returned list may
    be shorter than ``num_distinct``.
    """
    if num_events < 1:
        raise ValueError("num_events must be >= 1")
    if num_distinct < 1:
        raise ValueError("num_distinct must be >= 1")
    weights = [1.0 / (i + 1) ** skew for i in range(num_distinct)]
    total = sum(weights)
    raw = [num_events * w / total for w in weights]
    freqs = [int(x) for x in raw]
    remainder = num_events - sum(freqs)
    # Largest-remainder apportionment keeps the tail shape and the total exact.
    by_frac = sorted(range(len(raw)), key=lambda i: raw[i] - freqs[i], reverse=True)
    for i in by_frac[:remainder]:
        freqs[i] += 1
    return [f for f in freqs if f > 0]


def zipf_stream(
    num_events: int,
    num_distinct: int,
    skew: float = 1.0,
    num_periods: int = 100,
    seed: int = 1,
    name: str | None = None,
) -> PeriodicStream:
    """Generate a temporally-uniform Zipfian stream.

    Each item's arrivals are scattered uniformly over the stream (a random
    permutation of the multiset), which makes frequent items persistent as
    well — the regime of the paper's CAIDA trace.  Item ids are drawn from a
    shuffled 32-bit space so that hash-bucket placement is unbiased.

    Args:
        num_events: Total arrivals ``N``.
        num_distinct: Target distinct item count ``M`` (may shrink; see
            :func:`zipf_frequencies`).
        skew: Zipf exponent ``γ``.
        num_periods: Number of equal periods ``T``.
        seed: RNG seed; equal seeds give identical streams.
        name: Label for reports; defaults to ``zipf-γ<skew>``.
    """
    rng = random.Random(seed)
    freqs = zipf_frequencies(num_events, num_distinct, skew)
    ids = _random_ids(len(freqs), rng)
    events: List[int] = []
    for item_id, f in zip(ids, freqs):
        events.extend([item_id] * f)
    rng.shuffle(events)
    return PeriodicStream(
        events=events,
        num_periods=num_periods,
        name=name or f"zipf-g{skew:g}",
    )


def _random_ids(count: int, rng: random.Random) -> List[int]:
    """Draw ``count`` distinct ids from the 32-bit space."""
    ids = set()
    while len(ids) < count:
        ids.add(rng.getrandbits(32))
    return list(ids)
