"""Synthetic substitutes for the paper's three real traces.

The paper evaluates on Social (1.5M messages / 200 periods), Network
(stack-exchange interactions, 10M items / 1000 periods) and CAIDA
(anonymised 2016 trace, 10M packets / 500 periods).  None of these traces
ship with this repository, so we synthesise workloads with the statistical
structure that drives the algorithms under test (DESIGN.md §3):

* a Zipfian frequency distribution (the long-tail assumption of §III-D);
* a controllable *decoupling* of frequency and persistency: a fraction of
  items are *bursty* — all of their arrivals land inside a narrow time
  window, so they can be frequent without being persistent (this is what
  makes the significant-items problem different from plain heavy hitters);
* optional diurnal rate modulation (Social).

Stream sizes default to ~1e5 events so pure-Python experiments complete in
minutes; memory budgets in the experiment configs are scaled down by the
same factor, keeping the cells-per-distinct-item operating point of the
paper intact.
"""

from __future__ import annotations

import math
import random
from typing import Any, Callable, List, Tuple

from repro.streams.model import PeriodicStream
from repro.streams.synthetic import zipf_frequencies


def temporal_zipf_stream(
    num_events: int,
    num_distinct: int,
    skew: float,
    num_periods: int,
    burst_fraction: float = 0.0,
    burst_width: float = 0.05,
    diurnal_amplitude: float = 0.0,
    diurnal_cycles: int = 8,
    seed: int = 1,
    name: str = "temporal-zipf",
) -> PeriodicStream:
    """Generate a Zipfian stream with explicit temporal structure.

    Every item receives a Zipf-distributed frequency.  Each item is then
    classified as *persistent* (arrival times uniform over the whole stream)
    or *bursty* (arrival times uniform inside one random window of relative
    width ``burst_width``).  Events are sorted by arrival time, so bursty
    items appear in only a few consecutive periods.

    Args:
        num_events: Total arrivals ``N``.
        num_distinct: Target distinct item count ``M``.
        skew: Zipf exponent.
        num_periods: Number of equal periods ``T``.
        burst_fraction: Probability that an item is bursty.
        burst_width: Relative width of a bursty item's activity window.
        diurnal_amplitude: ``A ∈ [0, 1)`` of a ``1 + A·sin`` arrival-rate
            modulation (0 disables it).
        diurnal_cycles: Number of full diurnal cycles over the stream.
        seed: RNG seed.
        name: Stream label.
    """
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError("burst_fraction must be in [0, 1]")
    if not 0.0 <= diurnal_amplitude < 1.0:
        raise ValueError("diurnal_amplitude must be in [0, 1)")
    rng = random.Random(seed)
    freqs = zipf_frequencies(num_events, num_distinct, skew)
    ids = _distinct_ids(len(freqs), rng)

    timed: List[Tuple[float, int]] = []
    for item_id, f in zip(ids, freqs):
        bursty = rng.random() < burst_fraction
        sampler: Callable[[], float]
        if bursty:
            width = max(burst_width * rng.random(), 1.0 / max(num_periods, 1))
            start = rng.random() * (1.0 - width)
            sampler = lambda r=rng, s=start, w=width: s + r.random() * w
        else:
            sampler = rng.random
        for _ in range(f):
            t = sampler()
            if diurnal_amplitude:
                t = _diurnal_warp(t, diurnal_amplitude, diurnal_cycles, rng)
            timed.append((t, item_id))
    timed.sort()
    return PeriodicStream(
        events=[item for _, item in timed],
        num_periods=num_periods,
        name=name,
    )


def _diurnal_warp(t: float, amplitude: float, cycles: int, rng: random.Random) -> float:
    """Resample ``t`` under a ``1 + A·sin(2π·c·t)`` intensity via rejection."""
    while True:
        intensity = 1.0 + amplitude * math.sin(2.0 * math.pi * cycles * t)
        if rng.random() * (1.0 + amplitude) <= intensity:
            return t
        t = rng.random()


def _distinct_ids(count: int, rng: random.Random) -> List[int]:
    ids = set()
    while len(ids) < count:
        ids.add(rng.getrandbits(32))
    return list(ids)


def caida_like(
    num_events: int = 100_000,
    num_distinct: int = 20_000,
    num_periods: int = 50,
    seed: int = 11,
) -> PeriodicStream:
    """CAIDA-like trace: heavy Zipf skew, stable heavy hitters.

    Source-IP packet counts in backbone traces are strongly Zipfian and the
    big sources transmit continuously, so frequent items are also
    persistent.  Paper scale: 10M packets / 500 periods; default here is
    100k / 50 (same events-per-period ratio class).
    """
    return temporal_zipf_stream(
        num_events=num_events,
        num_distinct=num_distinct,
        skew=1.1,
        num_periods=num_periods,
        burst_fraction=0.1,
        burst_width=0.02,
        seed=seed,
        name="caida-like",
    )


def network_like(
    num_events: int = 100_000,
    num_distinct: int = 25_000,
    num_periods: int = 100,
    seed: int = 13,
) -> PeriodicStream:
    """Network-like trace: moderate skew with heavy churn and bursts.

    The stack-exchange interaction network has many one-shot users and
    bursty mid-rank users, which decouples frequency from persistency —
    this is the dataset where the paper's significant-items experiments are
    most discriminating.  Paper scale: 10M items / 1000 periods.
    """
    return temporal_zipf_stream(
        num_events=num_events,
        num_distinct=num_distinct,
        skew=0.9,
        num_periods=num_periods,
        burst_fraction=0.45,
        burst_width=0.08,
        seed=seed,
        name="network-like",
    )


def social_like(
    num_events: int = 60_000,
    num_distinct: int = 10_000,
    num_periods: int = 40,
    seed: int = 17,
) -> PeriodicStream:
    """Social-like trace: lighter skew with diurnal posting rhythm.

    Message senders in the social trace are less skewed than packet
    sources and posting intensity oscillates daily.  Paper scale: 1.5M
    messages / 200 periods.
    """
    return temporal_zipf_stream(
        num_events=num_events,
        num_distinct=num_distinct,
        skew=0.8,
        num_periods=num_periods,
        burst_fraction=0.3,
        burst_width=0.1,
        diurnal_amplitude=0.6,
        diurnal_cycles=10,
        seed=seed,
        name="social-like",
    )


DATASETS = {
    "caida": caida_like,
    "network": network_like,
    "social": social_like,
}


def load_dataset(name: str, **kwargs: Any) -> PeriodicStream:
    """Build one of the three paper-dataset substitutes by name."""
    try:
        factory = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; expected one of {sorted(DATASETS)}"
        ) from None
    return factory(**kwargs)
