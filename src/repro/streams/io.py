"""Trace file I/O: load real traces into the periodic stream model.

The synthetic generators in :mod:`repro.streams.datasets` stand in for the
paper's traces, but a user with the real data (or any other log) can load
it here.  Two formats:

* **item-only**: one item id per line — periods are assigned by count,
  exactly like the paper's CAIDA preprocessing ("we regard the index as
  the timestamp");
* **timestamped**: ``item<sep>timestamp`` per line — the time range is cut
  into ``num_periods`` equal intervals, like the Social and Network
  preprocessing ("we divide it into T periods with a fixed time
  interval").

Non-integer item ids are accepted and canonicalised to 64-bit keys with
:func:`repro.hashing.canonical_key`.
"""

from __future__ import annotations

import io
from typing import List, TextIO, Tuple, Union

from repro.hashing.family import canonical_key
from repro.streams.model import PeriodicStream

Source = Union[str, TextIO]


def _open(source: Source) -> Tuple[TextIO, bool]:
    if isinstance(source, str):
        return open(source, "r"), True
    return source, False


def _parse_item(token: str) -> int:
    token = token.strip()
    try:
        return int(token)
    except ValueError:
        return canonical_key(token)


def load_items(
    source: Source,
    num_periods: int,
    name: str = "trace",
    comment: str = "#",
) -> PeriodicStream:
    """Load an item-per-line trace; periods are count-based.

    Args:
        source: File path or open text handle.
        num_periods: Number of equal-count periods to divide into.
        name: Stream label.
        comment: Lines starting with this prefix are skipped.
    """
    handle, owned = _open(source)
    try:
        events = [
            _parse_item(line)
            for line in handle
            if line.strip() and not line.startswith(comment)
        ]
    finally:
        if owned:
            handle.close()
    if not events:
        raise ValueError("trace contains no events")
    return PeriodicStream(
        events=events, num_periods=min(num_periods, len(events)), name=name
    )


def load_timestamped(
    source: Source,
    num_periods: int,
    separator: str | None = None,
    item_column: int = 0,
    time_column: int = 1,
    name: str = "trace",
    comment: str = "#",
) -> PeriodicStream:
    """Load an ``item separator timestamp`` trace; periods are time-based.

    Records are sorted by timestamp and the covered time range is divided
    into ``num_periods`` equal intervals — the paper's fixed-time-interval
    preprocessing.  The result is a :class:`TimeBinnedStream` whose
    ``iter_periods`` yields the (variable-count) time bins in order.

    Args:
        source: File path or open text handle.
        num_periods: Number of equal time intervals.
        separator: Field separator (``None`` = any whitespace).
        item_column: Index of the item field.
        time_column: Index of the timestamp field (float or int).
        name: Stream label.
        comment: Comment-line prefix.
    """
    handle, owned = _open(source)
    try:
        records: List[Tuple[float, int]] = []
        for line in handle:
            if not line.strip() or line.startswith(comment):
                continue
            fields = line.split(separator)
            records.append(
                (float(fields[time_column]), _parse_item(fields[item_column]))
            )
    finally:
        if owned:
            handle.close()
    if not records:
        raise ValueError("trace contains no events")
    records.sort()
    return TimeBinnedStream.from_records(records, num_periods, name=name)


class TimeBinnedStream(PeriodicStream):
    """A periodic stream whose periods are equal *time* intervals.

    Count-based ``PeriodicStream`` slices events into equal-count periods;
    real traces have equal-duration periods with varying event counts, so
    this subclass carries explicit period boundaries (event indices) and
    overrides the period logic accordingly.
    """

    def __init__(
        self, events: List[int], boundaries: List[int], name: str = "trace"
    ) -> None:
        # boundaries[i] = first event index of period i+1; len == T-1.
        self._boundaries = list(boundaries)
        super().__init__(
            events=events, num_periods=len(boundaries) + 1, name=name
        )

    def _validate(self) -> None:
        # Time intervals may legitimately be empty, so a time-binned
        # stream can have more periods than events.
        if self.num_periods < 1:
            raise ValueError("num_periods must be >= 1")

    @classmethod
    def from_records(
        cls,
        records: "List[Tuple[float, int]]",
        num_periods: int,
        name: str = "trace",
    ) -> "TimeBinnedStream":
        """Build from time-sorted ``(timestamp, item)`` records."""
        if num_periods < 1:
            raise ValueError("num_periods must be >= 1")
        t0, t1 = records[0][0], records[-1][0]
        span = max(t1 - t0, 1e-12)
        boundaries = []
        next_period = 1
        for index, (t, _) in enumerate(records):
            while (
                next_period < num_periods
                and t >= t0 + span * next_period / num_periods
            ):
                boundaries.append(index)
                next_period += 1
        while next_period < num_periods:
            boundaries.append(len(records))
            next_period += 1
        return cls(
            events=[item for _, item in records],
            boundaries=boundaries,
            name=name,
        )

    @property
    def period_length(self) -> int:
        """Average events per period (drives the CLOCK step size)."""
        return max(1, len(self.events) // self.num_periods)

    def period_of(self, event_index: int) -> int:
        """Period index of the arrival at ``event_index``."""
        import bisect

        return bisect.bisect_right(self._boundaries, event_index)

    def period_slices(self) -> List[Tuple[int, int]]:
        """Each time bin's ``(start, end)`` event-index range, in order."""
        starts = [0] + self._boundaries
        ends = self._boundaries + [len(self.events)]
        return list(zip(starts, ends))


def dump_items(stream: PeriodicStream, target: Source) -> None:
    """Write a stream as an item-per-line trace (inverse of load_items)."""
    handle, owned = (
        (open(target, "w"), True) if isinstance(target, str) else (target, False)
    )
    try:
        for item in stream.events:
            handle.write(f"{item}\n")
    finally:
        if owned:
            handle.close()


def loads_items(text: str, num_periods: int, name: str = "trace") -> PeriodicStream:
    """Parse an item-per-line trace from a string."""
    return load_items(io.StringIO(text), num_periods, name=name)
