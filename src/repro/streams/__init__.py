"""Data-stream model, synthetic workload generators and the exact oracle.

The paper evaluates on three real traces (Social, Network, CAIDA).  Those
traces are not redistributable; :mod:`repro.streams.datasets` builds
synthetic equivalents with matched statistical structure (Zipfian item
frequencies plus per-dataset temporal behaviour) — see DESIGN.md §3 for the
substitution rationale.
"""

from repro.streams.model import PeriodicStream, StreamStats
from repro.streams.synthetic import zipf_frequencies, zipf_stream
from repro.streams.adversarial import (
    boundary_straddler,
    distinct_flood,
    grinder,
)
from repro.streams.datasets import (
    caida_like,
    network_like,
    social_like,
    temporal_zipf_stream,
)
from repro.streams.ground_truth import GroundTruth
from repro.streams.io import (
    TimeBinnedStream,
    dump_items,
    load_items,
    load_timestamped,
    loads_items,
)

__all__ = [
    "TimeBinnedStream",
    "load_items",
    "load_timestamped",
    "loads_items",
    "dump_items",
    "PeriodicStream",
    "StreamStats",
    "zipf_frequencies",
    "zipf_stream",
    "caida_like",
    "network_like",
    "social_like",
    "temporal_zipf_stream",
    "distinct_flood",
    "grinder",
    "boundary_straddler",
    "GroundTruth",
]
