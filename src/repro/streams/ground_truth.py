"""Exact frequency/persistency/significance oracle.

Every accuracy experiment compares an approximate summary against the exact
answer.  :class:`GroundTruth` makes one pass over a stream and records, for
each distinct item, the exact frequency and the exact set-of-periods
persistency, then answers top-k significance queries for any ``(α, β)``.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.streams.model import PeriodicStream


class GroundTruth:
    """Exact per-item statistics of a periodic stream."""

    def __init__(self, stream: PeriodicStream) -> None:
        freq: Dict[int, int] = {}
        pers: Dict[int, int] = {}
        seen_this_period: Set[int] = set()
        for period in stream.iter_periods():
            seen_this_period.clear()
            for item in period:
                freq[item] = freq.get(item, 0) + 1
                if item not in seen_this_period:
                    seen_this_period.add(item)
                    pers[item] = pers.get(item, 0) + 1
        self._freq = freq
        self._pers = pers
        self.num_events = len(stream)
        self.num_periods = stream.num_periods

    @property
    def num_distinct(self) -> int:
        """Number of distinct items seen."""
        return len(self._freq)

    def frequency(self, item: int) -> int:
        """Exact number of appearances of ``item`` (0 if never seen)."""
        return self._freq.get(item, 0)

    def persistency(self, item: int) -> int:
        """Exact number of periods in which ``item`` appeared."""
        return self._pers.get(item, 0)

    def significance(self, item: int, alpha: float, beta: float) -> float:
        """Exact significance ``α·f + β·p`` of ``item``."""
        return alpha * self.frequency(item) + beta * self.persistency(item)

    def items(self) -> List[int]:
        """All distinct items, in arbitrary order."""
        return list(self._freq)

    def top_k(self, k: int, alpha: float, beta: float) -> List[Tuple[int, float]]:
        """Exact top-k significant items as ``(item, significance)`` pairs.

        Ties are broken by item id so the answer is deterministic.
        """
        scored = [
            (alpha * f + beta * self._pers[item], item)
            for item, f in self._freq.items()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return [(item, sig) for sig, item in scored[:k]]

    def top_k_items(self, k: int, alpha: float, beta: float) -> Set[int]:
        """The exact top-k item set (the paper's φ)."""
        return {item for item, _ in self.top_k(k, alpha, beta)}

    def frequencies_sorted(self) -> List[int]:
        """All exact frequencies, descending (for distribution plots)."""
        return sorted(self._freq.values(), reverse=True)
