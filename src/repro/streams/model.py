"""The periodic data-stream model used throughout the library.

Following the paper's problem definition, a stream is a sequence of item
arrivals divided into ``T`` equal-sized periods.  :class:`PeriodicStream`
stores the arrivals (integer item identifiers) together with the period
structure and knows how to drive any summary that implements the small
protocol ``insert(item)`` / ``end_period()`` / ``finalize()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, List, Sequence, Tuple

try:  # numpy enables zero-copy array batches; loops otherwise.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


@dataclass(frozen=True)
class StreamStats:
    """Summary statistics of a stream (used in reports and tests)."""

    name: str
    num_events: int
    num_distinct: int
    num_periods: int

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.num_events} events, "
            f"{self.num_distinct} distinct items, {self.num_periods} periods"
        )


@dataclass
class PeriodicStream:
    """A data stream of integer item ids divided into equal periods.

    Args:
        events: Item arrivals in stream order.
        num_periods: Number of equal-sized periods ``T``.  The last period
            absorbs the remainder when ``len(events)`` is not divisible.
        name: Human-readable label used in experiment reports.
    """

    events: List[int]
    num_periods: int
    name: str = "stream"
    _distinct: int = field(default=0, repr=False)
    _events_cache: Any = field(default=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self._validate()

    def _validate(self) -> None:
        """Count-based streams cannot have more periods than events;
        subclasses with explicit boundaries may relax this."""
        if self.num_periods < 1:
            raise ValueError("num_periods must be >= 1")
        if self.num_periods > max(len(self.events), 1):
            raise ValueError("num_periods cannot exceed the number of events")

    def __len__(self) -> int:
        return len(self.events)

    @property
    def period_length(self) -> int:
        """Number of arrivals per period (the paper's ``n``)."""
        return max(1, len(self.events) // self.num_periods)

    @property
    def stats(self) -> StreamStats:
        """Summary statistics of the stream."""
        if not self._distinct:
            self._distinct = len(set(self.events))
        return StreamStats(
            name=self.name,
            num_events=len(self.events),
            num_distinct=self._distinct,
            num_periods=self.num_periods,
        )

    def period_of(self, event_index: int) -> int:
        """Return the period index of the arrival at ``event_index``."""
        return min(event_index // self.period_length, self.num_periods - 1)

    def period_slices(self) -> List[Tuple[int, int]]:
        """Return each period's ``(start, end)`` event-index range, in order.

        The single source of truth for period structure: ``iter_periods``,
        ``period_batches``, and the array-batch iteration used by the
        process-parallel transport all slice ``events`` by these ranges.
        Count-based streams cut equal slices with the last period absorbing
        the remainder; boundary-based subclasses override this.
        """
        n = self.period_length
        slices: List[Tuple[int, int]] = []
        for p in range(self.num_periods):
            start = p * n
            end = len(self.events) if p == self.num_periods - 1 else start + n
            slices.append((start, end))
        return slices

    def iter_periods(self) -> Iterator[Sequence[int]]:
        """Yield the arrivals of each period, in order."""
        for start, end in self.period_slices():
            yield self.events[start:end]

    def events_array(self) -> Any:
        """The whole event sequence as a cached ``int64`` numpy array.

        Returns ``None`` when numpy is unavailable or any event does not
        fit in a signed 64-bit integer (canonical keys can reach
        ``2**64 - 1``); callers fall back to the list-based paths.  The
        conversion is lossless when it succeeds — ``int64`` round-trips
        every representable Python int exactly — so array batches feed
        summaries the same values the list batches would.
        """
        if self._events_cache is False:
            if _np is None:
                self._events_cache = None
            else:
                try:
                    self._events_cache = _np.asarray(
                        self.events, dtype=_np.int64
                    )
                except (OverflowError, TypeError, ValueError):
                    self._events_cache = None
        return self._events_cache

    def iter_period_arrays(self) -> Iterator[Any]:
        """Yield each period as a zero-copy ``int64`` numpy array view.

        Requires :meth:`events_array` to be available — callers must gate
        on it returning non-``None``.
        """
        events = self.events_array()
        if events is None:
            raise RuntimeError(
                "array batches unavailable (no numpy or oversized keys)"
            )
        for start, end in self.period_slices():
            yield events[start:end]

    def period_batches(self) -> List[List[int]]:
        """Materialise every period as its own list, in period order.

        The picklable shard payload for process-based ingestion
        (:mod:`repro.distributed.parallel`): replaying the batches through
        ``insert_many`` + ``end_period`` + ``finalize`` is exactly
        ``run(summary, batched=True)``.  Subclasses with explicit
        boundaries (time-binned streams) inherit this via their
        ``iter_periods`` override.
        """
        return [list(period) for period in self.iter_periods()]

    def run(self, summary: Any, *, batched: bool = False) -> None:
        """Feed the entire stream through ``summary``.

        Calls ``summary.insert(item)`` for every arrival, ``end_period()``
        after each period boundary if the summary defines it, and
        ``finalize()`` once at the end if defined.

        With ``batched=True`` each whole-period slice is handed to
        ``summary.insert_many(items)`` instead — the amortised fast path
        for summaries that override it (LTC, FastLTC, and via the
        :class:`~repro.summaries.base.StreamSummary` default every other
        summary).  Both modes produce identical summary state; batched
        mode only changes the per-arrival interpreter overhead.
        """
        end_period = getattr(summary, "end_period", None)
        insert_many = getattr(summary, "insert_many", None) if batched else None
        insert = summary.insert
        for period in self.iter_periods():
            if insert_many is not None:
                insert_many(period)
            else:
                for item in period:
                    insert(item)
            if end_period is not None:
                end_period()
        finalize = getattr(summary, "finalize", None)
        if finalize is not None:
            finalize()

    def head(self, num_events: int, name: str | None = None) -> "PeriodicStream":
        """Return a prefix of the stream with a proportional period count."""
        num_events = min(num_events, len(self.events))
        periods = max(1, self.num_periods * num_events // max(len(self.events), 1))
        return PeriodicStream(
            events=self.events[:num_events],
            num_periods=periods,
            name=name or f"{self.name}-head{num_events}",
        )
