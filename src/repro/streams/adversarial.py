"""Adversarial workload generators (robustness evaluation; extension).

The paper evaluates on benign long-tail traces.  A production deployment
also faces pathological input — sometimes crafted (an attacker who knows
the summary's structure), sometimes emergent (scan traffic).  These
generators implement the classic stress patterns for counter-based
summaries:

* :func:`distinct_flood` — a one-hit-wonder flood around a small core of
  genuinely significant items: maximises Significance-Decrementing
  pressure (every flood packet decrements some incumbent);
* :func:`grinder` — alternates a burst of fresh distinct items with a
  single target's arrivals, trying to grind the target's cell to zero
  between its own arrivals;
* :func:`boundary_straddler` — items that arrive only in the instants
  around period boundaries, the worst case for the basic one-flag CLOCK
  (the deviation of paper Fig. 4) and a no-op for the Deviation
  Eliminator.

All generators return ordinary :class:`~repro.streams.model.PeriodicStream`
objects, so every summary and the whole experiment harness run on them
unchanged (see ``benchmarks/bench_ext_adversarial.py``).
"""

from __future__ import annotations

import random
from typing import List

from repro.streams.model import PeriodicStream


def distinct_flood(
    num_periods: int = 40,
    core_items: int = 50,
    core_per_period: int = 5,
    flood_per_period: int = 1_000,
    seed: int = 0xF100D,
) -> PeriodicStream:
    """A small persistent core buried in a flood of one-hit wonders.

    Every flood arrival is a miss for every summary, so the eviction /
    decrement machinery runs at full pressure while the signal items
    supply only ``core_per_period`` arrivals each per period.
    """
    rng = random.Random(seed)
    core = [rng.getrandbits(32) for _ in range(core_items)]
    events: List[int] = []
    for _ in range(num_periods):
        block = []
        for item in core:
            block += [item] * core_per_period
        block += [rng.getrandbits(32) for _ in range(flood_per_period)]
        rng.shuffle(block)
        events += block
    return PeriodicStream(
        events=events, num_periods=num_periods, name="adversarial-flood"
    )


def grinder(
    num_periods: int = 40,
    targets: int = 20,
    grind_burst: int = 30,
    seed: int = 0x62D,
) -> PeriodicStream:
    """Fresh-distinct bursts interleaved between each target arrival.

    The attacker tries to decrement a target's cell to zero before its
    next arrival restores it — the direct assault on Significance
    Decrementing.  Long-tail Replacement is the designed defence: even
    when a grind succeeds, the target re-enters near its old value.
    """
    rng = random.Random(seed)
    target_ids = [rng.getrandbits(32) for _ in range(targets)]
    events: List[int] = []
    for _ in range(num_periods):
        block: List[int] = []
        for target in target_ids:
            block.append(target)
            block += [rng.getrandbits(32) for _ in range(grind_burst)]
        events += block  # deliberately unshuffled: maximal grind locality
    return PeriodicStream(
        events=events, num_periods=num_periods, name="adversarial-grinder"
    )


def boundary_straddler(
    num_periods: int = 40,
    stradlers: int = 30,
    filler_per_period: int = 200,
    seed: int = 0x5712,
) -> PeriodicStream:
    """Items arriving at the very end AND very start of adjacent periods.

    True persistency counts both periods; the basic one-flag CLOCK can
    double-harvest within one period or miss across the boundary
    depending on pointer phase — the deviation the two-flag version
    eliminates exactly.
    """
    rng = random.Random(seed)
    ids = [rng.getrandbits(32) for _ in range(stradlers)]
    periods: List[List[int]] = []
    for p in range(num_periods):
        filler = [rng.getrandbits(32) for _ in range(filler_per_period)]
        block = list(ids) + filler + list(ids)  # start and end of period
        periods.append(block)
    events = [item for block in periods for item in block]
    return PeriodicStream(
        events=events, num_periods=num_periods, name="adversarial-straddler"
    )
