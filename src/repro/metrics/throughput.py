"""Insertion-throughput measurement.

The paper reports million-insertions-per-second on a C++/Xeon testbed; the
absolute numbers here are Python-scale, so benchmarks report *relative*
throughput between algorithms (DESIGN.md §3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.streams.model import PeriodicStream


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one summary over one stream."""

    name: str
    events: int
    seconds: float
    mode: str = "per-event"  # "per-event" or "batched"

    @property
    def mops(self) -> float:
        """Million insertions per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.events / self.seconds / 1e6

    @property
    def ops(self) -> float:
        """Insertions per second."""
        return self.mops * 1e6

    def to_dict(self) -> dict:
        """JSON-safe record (consumed by ``BENCH_throughput.json``)."""
        return {
            "name": self.name,
            "mode": self.mode,
            "events": self.events,
            "seconds": self.seconds,
            "ops_per_second": self.ops,
            "mops": self.mops,
        }

    def __str__(self) -> str:
        return (
            f"{self.name} [{self.mode}]: {self.mops:.3f} Mops "
            f"({self.events} events)"
        )


def measure_query_throughput(
    summary,
    items,
    name: str = "summary",
    repeats: int = 1,
) -> ThroughputResult:
    """Measure point-query throughput of an already-populated summary.

    Args:
        summary: Populated summary exposing ``query(item)``.
        items: The keys to probe (a mix of present and absent keys gives
            the most representative number).
        name: Label for the result.
        repeats: Fastest of N passes is reported.
    """
    items = list(items)
    query = summary.query
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for item in items:
            query(item)
        best = min(best, time.perf_counter() - start)
    return ThroughputResult(name=name, events=len(items), seconds=best)


def measure_throughput(
    factory,
    stream: PeriodicStream,
    name: str = "summary",
    repeats: int = 1,
    batched: bool = False,
) -> ThroughputResult:
    """Measure end-to-end insertion throughput of a summary.

    Args:
        factory: Zero-argument callable building a fresh summary.
        stream: The workload, driven through ``PeriodicStream.run``.
        name: Label for the result.
        repeats: Number of fresh runs; the fastest is reported (standard
            practice to suppress scheduler noise).
        batched: Drive the stream through the ``insert_many`` fast path
            (``PeriodicStream.run(batched=True)``) instead of per-event
            inserts.
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        summary = factory()
        start = time.perf_counter()
        stream.run(summary, batched=batched)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return ThroughputResult(
        name=name,
        events=len(stream),
        seconds=best,
        mode="batched" if batched else "per-event",
    )


def measure_coordinator_throughput(
    coordinator_factory,
    site_streams,
    k: int,
    name: str = "coordinator",
    repeats: int = 1,
):
    """Measure end-to-end ingest+merge throughput of a distributed run.

    Times ``coordinator.run(site_streams, k)`` — for the process-based
    engine that includes shipping batches to workers, parallel ingestion,
    and merging the returned summaries, so sequential and parallel
    coordinators are compared on the same total work.

    Args:
        coordinator_factory: Zero-argument callable building a fresh
            coordinator (sequential or parallel — anything with ``run``).
        site_streams: The partitioned workload handed to every run.
        k: Report size requested from each run.
        name: Label for the result.
        repeats: Fastest of N fresh runs is reported.

    Returns:
        ``(ThroughputResult, CoordinatorReport)`` — the timing plus the
        last run's report (so callers can differentially check answers).
    """
    events = sum(len(stream) for stream in site_streams)
    best = float("inf")
    report = None
    for _ in range(max(1, repeats)):
        coordinator = coordinator_factory()
        start = time.perf_counter()
        report = coordinator.run(site_streams, k)
        best = min(best, time.perf_counter() - start)
    return (
        ThroughputResult(
            name=name, events=events, seconds=best, mode="coordinator"
        ),
        report,
    )


def compare_modes(
    factory,
    stream: PeriodicStream,
    name: str = "summary",
    repeats: int = 2,
) -> "tuple[ThroughputResult, ThroughputResult]":
    """Measure the same summary per-event and batched over one stream."""
    per_event = measure_throughput(
        factory, stream, name=name, repeats=repeats, batched=False
    )
    batched = measure_throughput(
        factory, stream, name=name, repeats=repeats, batched=True
    )
    return per_event, batched
