"""Insertion-throughput measurement.

The paper reports million-insertions-per-second on a C++/Xeon testbed; the
absolute numbers here are Python-scale, so benchmarks report *relative*
throughput between algorithms (DESIGN.md §3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.streams.model import PeriodicStream


@dataclass(frozen=True)
class ThroughputResult:
    """Throughput of one summary over one stream."""

    name: str
    events: int
    seconds: float

    @property
    def mops(self) -> float:
        """Million insertions per second."""
        if self.seconds <= 0:
            return float("inf")
        return self.events / self.seconds / 1e6

    def __str__(self) -> str:
        return f"{self.name}: {self.mops:.3f} Mops ({self.events} events)"


def measure_query_throughput(
    summary,
    items,
    name: str = "summary",
    repeats: int = 1,
) -> ThroughputResult:
    """Measure point-query throughput of an already-populated summary.

    Args:
        summary: Populated summary exposing ``query(item)``.
        items: The keys to probe (a mix of present and absent keys gives
            the most representative number).
        name: Label for the result.
        repeats: Fastest of N passes is reported.
    """
    items = list(items)
    query = summary.query
    best = float("inf")
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        for item in items:
            query(item)
        best = min(best, time.perf_counter() - start)
    return ThroughputResult(name=name, events=len(items), seconds=best)


def measure_throughput(
    factory,
    stream: PeriodicStream,
    name: str = "summary",
    repeats: int = 1,
) -> ThroughputResult:
    """Measure end-to-end insertion throughput of a summary.

    Args:
        factory: Zero-argument callable building a fresh summary.
        stream: The workload, driven through ``PeriodicStream.run``.
        name: Label for the result.
        repeats: Number of fresh runs; the fastest is reported (standard
            practice to suppress scheduler noise).
    """
    best = float("inf")
    for _ in range(max(1, repeats)):
        summary = factory()
        start = time.perf_counter()
        stream.run(summary)
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return ThroughputResult(name=name, events=len(stream), seconds=best)
