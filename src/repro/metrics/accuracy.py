"""Accuracy metrics from the paper's §V-A.

Given the exact top-k set φ and a reported set ψ with estimated
significances ŝ, the paper measures

* **precision** ``|φ ∩ ψ| / k``, and
* **ARE** (average relative error) ``(1/k) Σ |s_i − ŝ_i| / s_i`` over the
  *reported* items, where ``s_i`` is the item's real significance.

AAE is also provided (the paper computes it but omits it from plots because
it scales with α, β).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set, Tuple


def precision(reported: Iterable[int], exact: Set[int]) -> float:
    """Fraction of the exact top-k contained in the reported set.

    Args:
        reported: Reported item ids (the paper's ψ).
        exact: Exact top-k item set (the paper's φ).
    """
    reported_set = set(reported)
    if not exact:
        return 1.0
    return len(reported_set & exact) / len(exact)


def recall(reported: Iterable[int], exact: Set[int]) -> float:
    """Alias of :func:`precision` when ``|ψ| = |φ| = k`` (kept for clarity
    in experiments where the reported set may be smaller than k)."""
    return precision(reported, exact)


def average_relative_error(
    reported: Sequence[Tuple[int, float]],
    true_significance,
) -> float:
    """ARE of the reported significances against the truth.

    Args:
        reported: ``(item, estimated_significance)`` pairs.
        true_significance: Callable ``item -> float`` giving the real value.

    Items whose true significance is zero (never-seen items that a sloppy
    summary may report) contribute their full estimate as relative error 1
    plus the estimate magnitude is ignored — we count them as error 1.0,
    the most conservative bounded choice.
    """
    if not reported:
        return 0.0
    total = 0.0
    for item, estimate in reported:
        real = true_significance(item)
        if real == 0:
            total += 1.0
        else:
            total += abs(real - estimate) / real
    return total / len(reported)


def average_absolute_error(
    reported: Sequence[Tuple[int, float]],
    true_significance,
) -> float:
    """AAE of the reported significances against the truth."""
    if not reported:
        return 0.0
    total = sum(abs(true_significance(item) - est) for item, est in reported)
    return total / len(reported)
