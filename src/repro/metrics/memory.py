"""The shared memory model used for head-to-head comparisons.

The paper gives every algorithm the same memory budget (§V-C) and derives
each structure's cell count from it.  This module centralises the byte
accounting so all summaries and all benchmarks size themselves identically:

===========================  =====================================  ======
structure                    cell layout                            bytes
===========================  =====================================  ======
LTC cell                     4B key + 4B freq + 4B persist./flags     12
counter summary cell (SS,    4B key + 4B counter                       8
Lossy Counting, Frequent)
sketch counter               4B                                        4
top-k heap entry             4B key + 4B value                         8
Bloom filter                 1 bit per bit                             —
STBF cell (PIE)              12-bit fingerprint + 16-bit symbol +       4
                             2 flag bits, padded
===========================  =====================================  ======

Pointer overheads of the C++ structures (Stream-Summary links, heap
indices) are excluded on both sides, matching the paper's accounting
granularity.
"""

from __future__ import annotations

from dataclasses import dataclass

BYTES_PER_KEY = 4
BYTES_PER_COUNTER = 4

LTC_CELL_BYTES = BYTES_PER_KEY + 2 * BYTES_PER_COUNTER  # 12
COUNTER_CELL_BYTES = BYTES_PER_KEY + BYTES_PER_COUNTER  # 8
SKETCH_COUNTER_BYTES = BYTES_PER_COUNTER  # 4
HEAP_ENTRY_BYTES = BYTES_PER_KEY + BYTES_PER_COUNTER  # 8
STBF_CELL_BYTES = 4


def kb(n: float) -> int:
    """Convert kilobytes to bytes (1 KB = 1024 B, as in the paper)."""
    return int(n * 1024)


@dataclass(frozen=True)
class MemoryBudget:
    """A memory budget in bytes with the sizing rules of §V-C.

    Every summary constructor in this library accepts explicit structural
    parameters; the class methods here translate a byte budget into those
    parameters exactly the way the paper's experiment setup does.
    """

    total_bytes: int

    def __post_init__(self) -> None:
        if self.total_bytes <= 0:
            raise ValueError("memory budget must be positive")

    # ------------------------------------------------------------------ LTC
    def ltc_buckets(self, d: int) -> int:
        """Number of LTC buckets ``w`` for bucket width ``d``."""
        cells = self.total_bytes // LTC_CELL_BYTES
        return max(1, cells // d)

    # ------------------------------------------------- counter-based top-k
    def counter_cells(self) -> int:
        """Cell count for Space-Saving / Lossy Counting / Frequent."""
        return max(1, self.total_bytes // COUNTER_CELL_BYTES)

    # ------------------------------------------------------------ sketches
    def sketch_width(self, rows: int, heap_k: int) -> int:
        """Per-row counter count for a sketch + top-k heap (frequent mode).

        The heap holds ``heap_k`` entries; the remaining budget is split
        across ``rows`` equal-width counter arrays (the paper uses 3).
        """
        remaining = self.total_bytes - heap_k * HEAP_ENTRY_BYTES
        counters = max(rows, remaining // SKETCH_COUNTER_BYTES)
        return max(1, counters // rows)

    def split(self, *fractions: float) -> "list[MemoryBudget]":
        """Split the budget into sub-budgets by the given fractions."""
        if abs(sum(fractions) - 1.0) > 1e-9:
            raise ValueError("fractions must sum to 1")
        return [
            MemoryBudget(max(1, int(self.total_bytes * f))) for f in fractions
        ]

    def halves(self) -> "tuple[MemoryBudget, MemoryBudget]":
        """Even split (used for BF+sketch and the two-structure baseline)."""
        first, second = self.split(0.5, 0.5)
        return first, second

    # ------------------------------------------------------- Bloom filters
    def bloom_bits(self) -> int:
        """Bit count for a Bloom filter occupying the whole budget."""
        return max(8, self.total_bytes * 8)

    # ----------------------------------------------------------------- PIE
    def stbf_cells(self) -> int:
        """STBF cell count for a budget dedicated to one period's filter."""
        return max(1, self.total_bytes // STBF_CELL_BYTES)

    def __mul__(self, factor: float) -> "MemoryBudget":
        return MemoryBudget(max(1, int(self.total_bytes * factor)))

    __rmul__ = __mul__

    def __str__(self) -> str:
        return f"{self.total_bytes / 1024:g}KB"
