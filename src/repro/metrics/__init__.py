"""Evaluation metrics (paper §V-A) and the shared memory model."""

from repro.metrics.accuracy import (
    average_absolute_error,
    average_relative_error,
    precision,
    recall,
)
from repro.metrics.memory import (
    BYTES_PER_COUNTER,
    BYTES_PER_KEY,
    MemoryBudget,
    kb,
)
from repro.metrics.throughput import measure_query_throughput, measure_throughput

__all__ = [
    "precision",
    "recall",
    "average_relative_error",
    "average_absolute_error",
    "MemoryBudget",
    "BYTES_PER_KEY",
    "BYTES_PER_COUNTER",
    "kb",
    "measure_throughput",
    "measure_query_throughput",
]
