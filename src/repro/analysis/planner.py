"""Memory planning: invert the §IV correct-rate bound (extension).

Deployments ask the question backwards from the paper: not "what accuracy
does M bytes buy" but "how many bytes do I need for target accuracy".
:func:`recommend_memory` answers it by evaluating the §IV-B correct-rate
lower bound over a Zipf model of the workload and binary-searching the
smallest LTC table whose *guaranteed* rate clears the target.  Because
the bound is conservative (paper Fig. 7(a), reproduced in
``bench_fig07_bounds.py``), the recommendation errs on the safe side.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.bounds import mean_topk_correct_rate_bound
from repro.analysis.zipf import zipf_model_frequencies
from repro.metrics.memory import LTC_CELL_BYTES


@dataclass(frozen=True)
class MemoryPlan:
    """Outcome of :func:`recommend_memory`."""

    num_buckets: int
    bucket_width: int
    total_bytes: int
    guaranteed_rate: float  # the bound's value at the recommendation
    target_rate: float

    @property
    def total_cells(self) -> int:
        return self.num_buckets * self.bucket_width

    def __str__(self) -> str:
        return (
            f"{self.total_bytes / 1024:.1f}KB "
            f"({self.num_buckets}×{self.bucket_width} cells): guaranteed "
            f"correct rate {self.guaranteed_rate:.2f} ≥ {self.target_rate:.2f}"
        )


def recommend_memory(
    num_distinct: int,
    stream_length: int,
    skew: float,
    k: int,
    target_rate: float = 0.9,
    bucket_width: int = 8,
    max_buckets: int = 1 << 22,
) -> MemoryPlan:
    """Smallest LTC sizing whose §IV-B bound meets ``target_rate``.

    Args:
        num_distinct: Expected distinct items ``M``.
        stream_length: Expected arrivals ``N``.
        skew: Zipf exponent of the workload (measure it with
            :func:`repro.analysis.distribution.fit_zipf`).
        k: Top-k size the deployment will query.
        target_rate: Required mean correct rate over the top-k.
        bucket_width: Cells per bucket (paper default 8).
        max_buckets: Search ceiling; exceeding it raises.

    Raises:
        ValueError: If the target is unreachable within ``max_buckets``
            (or arguments are out of range).
    """
    if not 0.0 < target_rate < 1.0:
        raise ValueError("target_rate must be in (0, 1)")
    if num_distinct < 1 or stream_length < 1 or k < 1:
        raise ValueError("workload parameters must be positive")
    freqs = zipf_model_frequencies(stream_length, num_distinct, skew)

    def rate(buckets: int) -> float:
        return mean_topk_correct_rate_bound(
            freqs, buckets, bucket_width, k, sample=8
        )

    # Exponential search for an upper bracket…
    low, high = 1, 2
    while rate(high) < target_rate:
        low, high = high, high * 2
        if high > max_buckets:
            raise ValueError(
                f"target rate {target_rate} unreachable within "
                f"{max_buckets} buckets for this workload"
            )
    # …then binary search for the smallest satisfying bucket count.
    while low + 1 < high:
        mid = (low + high) // 2
        if rate(mid) >= target_rate:
            high = mid
        else:
            low = mid
    guaranteed = rate(high)
    return MemoryPlan(
        num_buckets=high,
        bucket_width=bucket_width,
        total_bytes=high * bucket_width * LTC_CELL_BYTES,
        guaranteed_rate=guaranteed,
        target_rate=target_rate,
    )
