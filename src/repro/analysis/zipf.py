"""The Zipf stream model of the paper's analysis (§IV-B, Eq. 3).

For a stream with ``M`` distinct items, total length ``N`` and skew ``γ``,
the rank-``i`` frequency is modelled as ``f_i = N / (i^γ · ζ(γ))`` with
``ζ(γ) = Σ_{i=1}^{M} i^{-γ}`` (the truncated zeta normaliser).
"""

from __future__ import annotations

from typing import List


def zeta(gamma: float, num_items: int) -> float:
    """Truncated zeta ``Σ_{i=1}^{M} i^{-γ}``."""
    if num_items < 1:
        raise ValueError("num_items must be >= 1")
    return sum(i ** -gamma for i in range(1, num_items + 1))


def zipf_model_frequencies(
    total: int, num_items: int, gamma: float
) -> List[float]:
    """Model frequencies ``f_1 ≥ f_2 ≥ … ≥ f_M`` of Eq. 3 (real-valued)."""
    z = zeta(gamma, num_items)
    return [total / (i ** gamma * z) for i in range(1, num_items + 1)]
