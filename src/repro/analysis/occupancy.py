"""Bucket-occupancy model for the lossy table (design-choice analysis).

Why d = 8?  With ``M`` contending items hashed over ``w`` buckets, the
number landing in one bucket is Binomial(M, 1/w) ≈ Poisson(M/w).  A
bucket overflows (forces Significance Decrementing) once it holds more
than ``d`` contenders.  This module computes that overflow probability,
which makes the accuracy-vs-d trade-off quantitative — with an important
regime split:

* **underloaded** (contenders < total cells, the regime of the items
  worth protecting — the top-k are far fewer than the cells): at fixed
  total cells ``w·d``, larger d lowers the overflow probability (better
  load balancing), with diminishing returns past d ≈ 8 — the plateau
  measured by ``bench_appx_vary_d``;
* **overloaded** (contenders ≫ cells, the long tail of noise): every
  wide bucket overflows with near certainty, so bucket slack protects
  nothing — there, the defence is Significance Decrementing itself.
"""

from __future__ import annotations

import math


def poisson_tail(mean: float, threshold: int) -> float:
    """``P[X > threshold]`` for ``X ~ Poisson(mean)``."""
    if mean < 0:
        raise ValueError("mean must be non-negative")
    if threshold < 0:
        return 1.0
    term = math.exp(-mean)
    cdf = term
    for k in range(1, threshold + 1):
        term *= mean / k
        cdf += term
    return max(0.0, 1.0 - cdf)


def bucket_overflow_probability(num_items: int, w: int, d: int) -> float:
    """Probability that a given bucket receives more than ``d`` of the
    ``num_items`` contenders (Poisson approximation)."""
    if w < 1 or d < 1:
        raise ValueError("w and d must be >= 1")
    if num_items < 0:
        raise ValueError("num_items must be non-negative")
    return poisson_tail(num_items / w, d)


def expected_overflowing_buckets(num_items: int, w: int, d: int) -> float:
    """Expected number of buckets in overflow."""
    return w * bucket_overflow_probability(num_items, w, d)


def overflow_curve(num_items: int, total_cells: int, widths) -> "list[tuple[int, float]]":
    """Overflow probability for each candidate ``d`` at fixed total cells.

    Args:
        num_items: Contending distinct items.
        total_cells: The memory budget in cells (``w = total_cells // d``).
        widths: Candidate bucket widths.
    """
    curve = []
    for d in widths:
        w = max(1, total_cells // d)
        curve.append((d, bucket_overflow_probability(num_items, w, d)))
    return curve
