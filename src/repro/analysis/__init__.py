"""Theoretical analysis of LTC (paper §IV): Zipf stream model, the
correct-rate lower bound, and the error (Markov) bound."""

from repro.analysis.zipf import zeta, zipf_model_frequencies
from repro.analysis.bounds import (
    correct_rate_lower_bound,
    error_probability_bound,
    expected_decrements,
    p_small,
)
from repro.analysis.distribution import (
    LongTailReport,
    ZipfFit,
    fit_zipf,
    is_long_tailed,
    sample_frequencies,
    tail_ratio,
)
from repro.analysis.occupancy import (
    bucket_overflow_probability,
    expected_overflowing_buckets,
    overflow_curve,
    poisson_tail,
)
from repro.analysis.planner import MemoryPlan, recommend_memory

__all__ = [
    "zeta",
    "zipf_model_frequencies",
    "correct_rate_lower_bound",
    "error_probability_bound",
    "expected_decrements",
    "p_small",
    "fit_zipf",
    "is_long_tailed",
    "tail_ratio",
    "sample_frequencies",
    "ZipfFit",
    "LongTailReport",
    "MemoryPlan",
    "recommend_memory",
    "poisson_tail",
    "bucket_overflow_probability",
    "expected_overflowing_buckets",
    "overflow_curve",
]
