"""Long-tail distribution diagnostics (paper §III-D, "Shortcoming").

Long-tail Replacement assumes a long-tail frequency distribution; the
paper advises users to check their data before enabling it: "users can
sample the dataset, and plot a figure to show the frequency distribution
to check whether there is a long tail".  This module implements that
check programmatically:

* :func:`fit_zipf` — least-squares fit of ``log f = c − γ·log rank``;
* :func:`tail_ratio` — head-to-tail mass ratio;
* :func:`is_long_tailed` — the go/no-go answer with a report;
* :func:`sample_frequencies` — reservoir-style sampling for large inputs.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Counter as CounterT, Iterable, List, Sequence


@dataclass(frozen=True)
class ZipfFit:
    """Least-squares Zipf fit of a descending frequency sequence."""

    skew: float  # fitted γ (slope magnitude in log-log space)
    intercept: float  # fitted log f at rank 1
    r_squared: float  # goodness of fit in log-log space

    def predicted(self, rank: int) -> float:
        """Fitted frequency at ``rank`` (1-based)."""
        return math.exp(self.intercept - self.skew * math.log(rank))


def fit_zipf(frequencies_desc: Sequence[float]) -> ZipfFit:
    """Fit a power law to a descending frequency sequence.

    Args:
        frequencies_desc: Positive frequencies sorted descending (at least
            two distinct ranks are required).
    """
    points = [
        (math.log(rank), math.log(freq))
        for rank, freq in enumerate(frequencies_desc, start=1)
        if freq > 0
    ]
    if len(points) < 2:
        raise ValueError("need at least two positive frequencies")
    n = len(points)
    mean_x = sum(x for x, _ in points) / n
    mean_y = sum(y for _, y in points) / n
    sxx = sum((x - mean_x) ** 2 for x, _ in points)
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in points)
    if sxx == 0:
        raise ValueError("degenerate rank range")
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    syy = sum((y - mean_y) ** 2 for _, y in points)
    r_squared = 0.0 if syy == 0 else (sxy * sxy) / (sxx * syy)
    return ZipfFit(skew=-slope, intercept=intercept, r_squared=r_squared)


def tail_ratio(frequencies_desc: Sequence[float], head_fraction: float = 0.01) -> float:
    """Mass share of the top ``head_fraction`` of items.

    A uniform distribution gives ≈ ``head_fraction``; a long tail gives a
    far larger share (the paper's datasets put >30% of mass in the top 1%).
    """
    if not 0.0 < head_fraction <= 1.0:
        raise ValueError("head_fraction must be in (0, 1]")
    total = sum(frequencies_desc)
    if total <= 0:
        raise ValueError("frequencies must have positive mass")
    head = max(1, int(len(frequencies_desc) * head_fraction))
    return sum(frequencies_desc[:head]) / total


@dataclass(frozen=True)
class LongTailReport:
    """Outcome of the long-tail check."""

    long_tailed: bool
    fit: ZipfFit
    head_share: float

    def __str__(self) -> str:
        verdict = "long-tailed" if self.long_tailed else "NOT long-tailed"
        return (
            f"{verdict}: fitted skew {self.fit.skew:.2f} "
            f"(R²={self.fit.r_squared:.2f}), top-1% share {self.head_share:.0%}"
        )


def is_long_tailed(
    frequencies: Iterable[float],
    min_skew: float = 0.5,
    min_head_share: float = 0.1,
) -> LongTailReport:
    """Decide whether a frequency population is long-tailed enough for
    Long-tail Replacement.

    Args:
        frequencies: Item frequencies, any order.
        min_skew: Minimum fitted Zipf exponent.
        min_head_share: Minimum mass share of the top 1% of items.
    """
    desc = sorted((f for f in frequencies if f > 0), reverse=True)
    fit = fit_zipf(desc)
    head = tail_ratio(desc, 0.01)
    return LongTailReport(
        long_tailed=fit.skew >= min_skew and head >= min_head_share,
        fit=fit,
        head_share=head,
    )


def sample_frequencies(
    events: Iterable[int], sample_size: int = 100_000, seed: int = 1
) -> List[int]:
    """Frequencies of a uniform sample of the stream (for huge inputs).

    Reservoir-samples ``sample_size`` events and counts them — the sampled
    frequency distribution preserves the head/tail shape, which is all the
    long-tail check needs.
    """
    if sample_size < 1:
        raise ValueError("sample_size must be >= 1")
    rng = random.Random(seed)
    reservoir: List[int] = []
    for index, item in enumerate(events):
        if index < sample_size:
            reservoir.append(item)
        else:
            slot = rng.randrange(index + 1)
            if slot < sample_size:
                reservoir[slot] = item
    from collections import Counter

    counts: CounterT[int] = Counter(reservoir)
    return sorted(counts.values(), reverse=True)
