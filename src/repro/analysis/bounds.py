"""LTC's theoretical guarantees (paper §IV).

Correct-rate bound (§IV-B).  Lemma IV.1: an item's reported significance
is exact if (1) its first arrival found a free cell and (2) its cell was
never the bucket minimum.  Call a competitor ``e_i`` *useful* for ``e`` if
it lands in ``e``'s bucket and its count ever exceeded ``e``'s:

    k_i = 1/w                      if f_i > f
    k_i = (1/w) · f_i / (f + 1)    otherwise

(The provided paper text garbles this formula; this is the reconstruction
that is monotone in ``f_i``, equals ``1/w`` at ``f_i = f + 1``, and
reproduces the paper's Fig. 7(a) behaviour — a conservative lower bound
that tightens with memory.)  With ``dp[j][x]`` the probability that the
``j`` most frequent items contain exactly ``x`` useful ones (Eq. 4),

    P ≥ Σ_{x=0}^{d-2} dp[M][x]                                   (Eq. 5)

Error bound (§IV-C).  ``X_i``, the number of Significance-Decrementing
operations performed on ``e_i``, satisfies ``E(X_i) = P_small · E(V)``
with ``E(V) = (1/w) Σ_{j>i} f_j`` (Eqs. 8–9); Markov gives

    Pr{ s_i − ŝ_i ≥ εN } ≤ P_small · E(V) · (α+β) / (εN)          (Eq. 11)

``P_small``, the probability that a fixed cell of a ``d``-cell bucket is
the minimum, is ``1/d`` by symmetry — the binomial sum printed as Eq. 7
telescopes to exactly that (DESIGN.md §3).
"""

from __future__ import annotations

from typing import List, Sequence


def p_small(d: int) -> float:
    """Probability that a fixed cell is its bucket's minimum (Eq. 7)."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return 1.0 / d


def useful_probability(f_i: float, f: float, w: int) -> float:
    """``k_i``: competitor ``e_i`` shares the bucket and ever overtakes ``e``."""
    if w < 1:
        raise ValueError("w must be >= 1")
    if f_i > f:
        return 1.0 / w
    return (f_i / (f + 1.0)) / w


def correct_rate_lower_bound(
    frequencies: Sequence[float], w: int, d: int, f: float
) -> float:
    """Lower-bound the probability that an item of frequency ``f`` is
    reported exactly (Eqs. 4–5).

    Args:
        frequencies: Model or empirical frequencies of all distinct items,
            any order (the dp product is order-independent).
        w: Number of buckets.
        d: Cells per bucket.
        f: The queried item's frequency.
    """
    if d < 2:
        return 0.0
    limit = d - 1  # we only need dp[·][0 .. d-2]
    dp = [0.0] * (limit + 1)
    dp[0] = 1.0
    for f_i in frequencies:
        k = useful_probability(f_i, f, w)
        if k == 0.0:
            continue
        # In-place downward update of the Poisson-binomial prefix.
        for x in range(limit, 0, -1):
            dp[x] = dp[x] * (1.0 - k) + dp[x - 1] * k
        dp[0] *= 1.0 - k
    return sum(dp[: d - 1])


def expected_decrements(
    frequencies_desc: Sequence[float], rank: int, w: int, d: int
) -> float:
    """``E(X_i)`` for the rank-``rank`` item (0-based; Eqs. 8–9).

    ``frequencies_desc`` must be sorted descending; items ranked below
    ``rank`` are the potential decrementers (less significant, same
    bucket with probability ``1/w``).
    """
    e_v = sum(frequencies_desc[rank + 1 :]) / w
    return p_small(d) * e_v


def error_probability_bound(
    frequencies_desc: Sequence[float],
    rank: int,
    w: int,
    d: int,
    alpha: float,
    beta: float,
    epsilon: float,
    total: float,
) -> float:
    """Markov bound ``Pr{s_i − ŝ_i ≥ εN}`` for the rank-``rank`` item
    (Eq. 11), clipped to 1."""
    if epsilon <= 0 or total <= 0:
        raise ValueError("epsilon and total must be positive")
    bound = (
        expected_decrements(frequencies_desc, rank, w, d)
        * (alpha + beta)
        / (epsilon * total)
    )
    return min(bound, 1.0)


def mean_topk_correct_rate_bound(
    frequencies_desc: Sequence[float],
    w: int,
    d: int,
    k: int,
    sample: int = 32,
) -> float:
    """Average of the correct-rate bound over the top-k items — the
    quantity Fig. 7(a) plots against the measured correct rate.

    The per-item dp is O(M·d); evaluating it at every one of the k ranks is
    wasteful because the bound varies smoothly with rank, so it is computed
    at ``sample`` evenly spaced ranks and averaged.
    """
    k = min(k, len(frequencies_desc))
    if k == 0:
        return 1.0
    sample = max(1, min(sample, k))
    ranks = [rank * k // sample for rank in range(sample)]
    bounds: List[float] = []
    for rank in ranks:
        f = frequencies_desc[rank]
        others = list(frequencies_desc[:rank]) + list(frequencies_desc[rank + 1 :])
        bounds.append(correct_rate_lower_bound(others, w, d, f))
    return sum(bounds) / len(bounds)
