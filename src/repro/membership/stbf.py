"""Space-Time Bloom Filter (STBF) — PIE's per-period structure.

Each cell carries a small fingerprint, one Raptor-encoded symbol of the
item identifier (the symbol index is the cell index, so the decoder knows
each symbol's equation from its position), and a 2-state flag.  Cells
written by two different items become *collided* and are excluded from
decoding; cells written (possibly repeatedly) by a single item stay
*singletons* and feed the fountain-code decoder.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Tuple

from repro.codes.raptor import RaptorCode
from repro.hashing.family import HashFamily, as_key_array, numpy_available

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class CellState(enum.IntEnum):
    """Lifecycle state of an STBF cell."""
    EMPTY = 0
    OCCUPIED = 1
    COLLIDED = 2


class SpaceTimeBloomFilter:
    """One period's STBF.

    Args:
        num_cells: Cell count ``m``.
        code: The shared Raptor code used to encode identifiers.
        num_hashes: Cells written per insertion ``r``.
        fp_bits: Fingerprint width; collisions of both fingerprint *and*
            symbol are undetectable (inherent to PIE), larger widths trade
            memory for fewer decoding losses.
        seed: Hash-family seed (shared across periods so an item writes the
            same cells in every period's filter).
    """

    def __init__(
        self,
        num_cells: int,
        code: RaptorCode,
        num_hashes: int = 3,
        fp_bits: int = 12,
        seed: int = 0x91E,
    ):
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_cells = num_cells
        self.num_hashes = num_hashes
        self.fp_bits = fp_bits
        self.code = code
        self._family = HashFamily(seed)
        self._cell_hashes = [self._family.member(i) for i in range(num_hashes)]
        self._fp_hash = self._family.member(num_hashes)
        self._states: List[int] = [CellState.EMPTY] * num_cells
        self._fps: List[int] = [0] * num_cells
        self._symbols: List[int] = [0] * num_cells

    def fingerprint(self, item: int) -> int:
        """Fingerprint value of ``item``."""
        return self._fp_hash(item) & ((1 << self.fp_bits) - 1)

    def cells_of(self, item: int) -> List[int]:
        """The cell indices ``item`` maps to."""
        m = self.num_cells
        return [h(item) % m for h in self._cell_hashes]

    def insert(self, item: int) -> None:
        """Record one appearance of ``item`` in this period.

        Re-inserting the same item is idempotent: it writes the identical
        fingerprint and symbol, so singletons stay singletons.
        """
        fp = self.fingerprint(item)
        for cell in self.cells_of(item):
            state = self._states[cell]
            if state == CellState.EMPTY:
                self._states[cell] = CellState.OCCUPIED
                self._fps[cell] = fp
                self._symbols[cell] = self.code.encode(item, cell)
            elif state == CellState.OCCUPIED:
                if (
                    self._fps[cell] != fp
                    or self._symbols[cell] != self.code.encode(item, cell)
                ):
                    self._states[cell] = CellState.COLLIDED
            # COLLIDED cells stay collided.

    def insert_many(self, items) -> None:
        """Record a batch of appearances in one pass, replay-identical.

        Re-inserts are idempotent, so the batch folds to its distinct
        identifiers; they are replayed in first-occurrence order (the
        first writer of a cell leaves the residual fingerprint/symbol a
        later collision preserves, so order is part of the replicated
        state) with the per-row cell indices and fingerprints hashed in
        one vectorised pass.
        """
        if not numpy_available():
            insert = self.insert
            for item in items:
                insert(item)
            return
        arr = as_key_array(items)
        if arr.size == 0:
            return
        uniq, first = _np.unique(arr, return_index=True)
        uniq = uniq[_np.argsort(first, kind="stable")]
        m = _np.uint64(self.num_cells)
        cell_rows = [
            (self._family.hash_array(i, uniq) % m).astype(_np.int64).tolist()
            for i in range(self.num_hashes)
        ]
        fp_mask = (1 << self.fp_bits) - 1
        fps = (self._family.hash_array(self.num_hashes, uniq)).tolist()
        states = self._states
        cell_fps = self._fps
        symbols = self._symbols
        encode = self.code.encode
        for item, fp_raw, cells in zip(uniq.tolist(), fps, zip(*cell_rows)):
            fp = fp_raw & fp_mask
            for cell in cells:
                state = states[cell]
                if state == CellState.EMPTY:
                    states[cell] = CellState.OCCUPIED
                    cell_fps[cell] = fp
                    symbols[cell] = encode(item, cell)
                elif state == CellState.OCCUPIED:
                    if cell_fps[cell] != fp or symbols[cell] != encode(item, cell):
                        states[cell] = CellState.COLLIDED

    def singletons(self) -> Iterator[Tuple[int, int, int]]:
        """Yield ``(cell_index, fingerprint, symbol)`` of singleton cells."""
        for cell in range(self.num_cells):
            if self._states[cell] == CellState.OCCUPIED:
                yield cell, self._fps[cell], self._symbols[cell]

    def state_of(self, cell: int) -> CellState:
        """Lifecycle state of one cell."""
        return CellState(self._states[cell])

    def might_contain(self, item: int) -> bool:
        """Membership test: every mapped cell non-empty and fp-compatible."""
        fp = self.fingerprint(item)
        for cell in self.cells_of(item):
            state = self._states[cell]
            if state == CellState.EMPTY:
                return False
            if state == CellState.OCCUPIED and self._fps[cell] != fp:
                return False
        return True

    @property
    def occupancy(self) -> Tuple[int, int, int]:
        """Counts of (empty, occupied, collided) cells."""
        empty = self._states.count(CellState.EMPTY)
        collided = self._states.count(CellState.COLLIDED)
        return empty, self.num_cells - empty - collided, collided
