"""Standard Bloom filter (Bloom 1970).

Used by the sketch-based persistent-items adaptation to answer "has this
item already appeared in the current period?" with no false negatives.
"""

from __future__ import annotations

import math

from repro.hashing.family import HashFamily
from repro.metrics.memory import MemoryBudget


class BloomFilter:
    """A clearable Bloom filter over integer keys.

    Args:
        num_bits: Size of the bit array.
        num_hashes: Number of hash functions; if omitted it is chosen as
            ``max(1, round(ln2 · m/n))`` for the expected load, defaulting
            to 3 when no expectation is given.
        expected_items: Optional expected insert count per epoch, used only
            to pick ``num_hashes``.
        seed: Hash-family seed.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int | None = None,
        expected_items: int | None = None,
        seed: int = 0xB100,
    ):
        if num_bits < 1:
            raise ValueError("num_bits must be >= 1")
        if num_hashes is None:
            if expected_items:
                num_hashes = max(1, round(math.log(2) * num_bits / expected_items))
            else:
                num_hashes = 3
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._family = HashFamily(seed)
        self._hashes = [self._family.member(i) for i in range(num_hashes)]
        self._bits = bytearray((num_bits + 7) // 8)
        self._inserted = 0

    @classmethod
    def from_memory(
        cls, budget: MemoryBudget, expected_items: int | None = None, seed: int = 0xB100
    ) -> "BloomFilter":
        """Build a filter occupying the whole byte budget."""
        return cls(budget.bloom_bits(), expected_items=expected_items, seed=seed)

    def insert(self, key: int) -> None:
        """Set ``key``'s bits."""
        bits = self._bits
        m = self.num_bits
        for h in self._hashes:
            idx = h(key) % m
            bits[idx >> 3] |= 1 << (idx & 7)
        self._inserted += 1

    def __contains__(self, key: int) -> bool:
        bits = self._bits
        m = self.num_bits
        for h in self._hashes:
            idx = h(key) % m
            if not bits[idx >> 3] & (1 << (idx & 7)):
                return False
        return True

    def insert_if_absent(self, key: int) -> bool:
        """Insert ``key``; returns True iff it was (probably) absent.

        Single-pass variant used on the hot path of the persistent
        adaptations: one round of hashing for both test and set.
        """
        bits = self._bits
        m = self.num_bits
        absent = False
        for h in self._hashes:
            idx = h(key) % m
            mask = 1 << (idx & 7)
            if not bits[idx >> 3] & mask:
                absent = True
                bits[idx >> 3] |= mask
        if absent:
            self._inserted += 1
        return absent

    def clear(self) -> None:
        """Reset all bits (called at period boundaries)."""
        for i in range(len(self._bits)):
            self._bits[i] = 0
        self._inserted = 0

    def estimated_fpp(self) -> float:
        """Estimated false-positive probability at the current load."""
        k, m, n = self.num_hashes, self.num_bits, self._inserted
        if n == 0:
            return 0.0
        return (1.0 - math.exp(-k * n / m)) ** k

    @property
    def bits_set(self) -> int:
        """Number of set bits (diagnostics)."""
        return sum(bin(b).count("1") for b in self._bits)
