"""Standard Bloom filter (Bloom 1970).

Used by the sketch-based persistent-items adaptation to answer "has this
item already appeared in the current period?" with no false negatives.
"""

from __future__ import annotations

import math
from typing import List

from repro.hashing.family import HashFamily, as_key_array, numpy_available
from repro.metrics.memory import MemoryBudget

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class BloomFilter:
    """A clearable Bloom filter over integer keys.

    Args:
        num_bits: Size of the bit array.
        num_hashes: Number of hash functions; if omitted it is chosen as
            ``max(1, round(ln2 · m/n))`` for the expected load, defaulting
            to 3 when no expectation is given.
        expected_items: Optional expected insert count per epoch, used only
            to pick ``num_hashes``.
        seed: Hash-family seed.
    """

    def __init__(
        self,
        num_bits: int,
        num_hashes: int | None = None,
        expected_items: int | None = None,
        seed: int = 0xB100,
    ):
        if num_bits < 1:
            raise ValueError("num_bits must be >= 1")
        if num_hashes is None:
            if expected_items:
                num_hashes = max(1, round(math.log(2) * num_bits / expected_items))
            else:
                num_hashes = 3
        if num_hashes < 1:
            raise ValueError("num_hashes must be >= 1")
        self.num_bits = num_bits
        self.num_hashes = num_hashes
        self._family = HashFamily(seed)
        self._hashes = [self._family.member(i) for i in range(num_hashes)]
        self._bits = bytearray((num_bits + 7) // 8)
        self._inserted = 0

    @classmethod
    def from_memory(
        cls, budget: MemoryBudget, expected_items: int | None = None, seed: int = 0xB100
    ) -> "BloomFilter":
        """Build a filter occupying the whole byte budget."""
        return cls(budget.bloom_bits(), expected_items=expected_items, seed=seed)

    def insert(self, key: int) -> None:
        """Set ``key``'s bits."""
        bits = self._bits
        m = self.num_bits
        for h in self._hashes:
            idx = h(key) % m
            bits[idx >> 3] |= 1 << (idx & 7)
        self._inserted += 1

    def __contains__(self, key: int) -> bool:
        bits = self._bits
        m = self.num_bits
        for h in self._hashes:
            idx = h(key) % m
            if not bits[idx >> 3] & (1 << (idx & 7)):
                return False
        return True

    def insert_if_absent(self, key: int) -> bool:
        """Insert ``key``; returns True iff it was (probably) absent.

        Single-pass variant used on the hot path of the persistent
        adaptations: one round of hashing for both test and set.
        """
        bits = self._bits
        m = self.num_bits
        absent = False
        for h in self._hashes:
            idx = h(key) % m
            mask = 1 << (idx & 7)
            if not bits[idx >> 3] & mask:
                absent = True
                bits[idx >> 3] |= mask
        if absent:
            self._inserted += 1
        return absent

    def insert_if_absent_many(self, keys) -> List[bool]:
        """Batch :meth:`insert_if_absent`: one result per key, in order.

        Replay-identical to the per-key calls: any occurrence of a key
        after its first within the batch is guaranteed present (its bits
        were just set), so only first occurrences are probed — in stream
        order, because which probe sets which bit decides later false
        positives — and their hash indices are computed in one vectorised
        pass per hash function.
        """
        if not numpy_available():
            insert_if_absent = self.insert_if_absent
            return [insert_if_absent(key) for key in keys]
        arr = as_key_array(keys)
        n = int(arr.size)
        if n == 0:
            return []
        uniq, first = _np.unique(arr, return_index=True)
        order = _np.argsort(first, kind="stable")
        uniq = uniq[order]
        first = first[order]
        m = _np.uint64(self.num_bits)
        idx_rows = [
            (self._family.hash_array(i, uniq) % m).astype(_np.int64).tolist()
            for i in range(self.num_hashes)
        ]
        bits = self._bits
        results = [False] * n
        inserted = 0
        for pos, slots in zip(first.tolist(), zip(*idx_rows)):
            absent = False
            for idx in slots:
                mask = 1 << (idx & 7)
                if not bits[idx >> 3] & mask:
                    absent = True
                    bits[idx >> 3] |= mask
            if absent:
                inserted += 1
                results[pos] = True
        self._inserted += inserted
        return results

    def clear(self) -> None:
        """Reset all bits (called at period boundaries)."""
        # A fresh zeroed buffer is O(n) in C; the old in-place byte loop
        # dominated period boundaries at realistic filter sizes.
        self._bits = bytearray(len(self._bits))
        self._inserted = 0

    def estimated_fpp(self) -> float:
        """Estimated false-positive probability at the current load."""
        k, m, n = self.num_hashes, self.num_bits, self._inserted
        if n == 0:
            return 0.0
        return (1.0 - math.exp(-k * n / m)) ** k

    @property
    def bits_set(self) -> int:
        """Number of set bits (diagnostics)."""
        return sum(bin(b).count("1") for b in self._bits)
