"""Approximate membership structures.

The standard Bloom filter is the per-period dedup substrate of the
sketch→persistent adaptation (§II-B); the Space-Time Bloom Filter is PIE's
per-period structure.
"""

from repro.membership.bloom import BloomFilter
from repro.membership.stbf import CellState, SpaceTimeBloomFilter

__all__ = ["BloomFilter", "SpaceTimeBloomFilter", "CellState"]
