"""Sketch-based persistent-items adaptation (paper §II-B).

"The thorniest problem is that some items might appear more than once in
one period … we maintain a standard Bloom filter to record whether it has
appeared in the current period.  We also need to maintain a min-heap to
assist in finding top-k persistent items."

Memory split (paper §V-C): half the budget to the Bloom filter, the rest
to sketch + heap.
"""

from __future__ import annotations

from typing import List

from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary
from repro.summaries.heap import TopKHeap


class SketchPersistent(StreamSummary):
    """Top-k persistent items via per-period BF dedup + sketch + heap.

    Args:
        sketch: Any point-query sketch (CM, CU or Count sketch); it counts
            *period-first appearances*, i.e. persistency.
        bloom: Per-period dedup filter; cleared at every boundary.
        k: Heap capacity.
    """

    def __init__(self, sketch, bloom: BloomFilter, k: int):
        self.sketch = sketch
        self.bloom = bloom
        self.heap = TopKHeap(k)

    @classmethod
    def from_memory(
        cls,
        sketch_cls,
        budget: MemoryBudget,
        k: int,
        rows: int = 3,
        expected_per_period: int | None = None,
        seed: int = 0x5EED,
    ) -> "SketchPersistent":
        """Paper sizing: 50% Bloom filter, 50% sketch + heap."""
        bloom_budget, sketch_budget = budget.halves()
        bloom = BloomFilter.from_memory(
            bloom_budget, expected_items=expected_per_period, seed=seed ^ 0xBF
        )
        sketch = sketch_cls.from_memory(sketch_budget, rows=rows, heap_k=k, seed=seed)
        return cls(sketch, bloom, k)

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        if self.bloom.insert_if_absent(item):
            estimate = self.sketch.update_and_query(item)
            self.heap.offer(item, float(estimate))

    def end_period(self) -> None:
        """React to a period boundary."""
        self.bloom.clear()

    def query(self, item: int) -> float:
        """Estimated persistency of ``item``."""
        return float(self.sketch.query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(item=item, significance=value, persistency=value)
            for item, value in self.heap.best(k)
        ]
