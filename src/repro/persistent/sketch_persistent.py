"""Sketch-based persistent-items adaptation (paper §II-B).

"The thorniest problem is that some items might appear more than once in
one period … we maintain a standard Bloom filter to record whether it has
appeared in the current period.  We also need to maintain a min-heap to
assist in finding top-k persistent items."

Memory split (paper §V-C): half the budget to the Bloom filter, the rest
to sketch + heap.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro import obs
from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts
from repro.summaries.heap import TopKHeap


class SketchPersistent(StreamSummary):
    """Top-k persistent items via per-period BF dedup + sketch + heap.

    Args:
        sketch: Any point-query sketch (CM, CU or Count sketch); it counts
            *period-first appearances*, i.e. persistency.
        bloom: Per-period dedup filter; cleared at every boundary.
        k: Heap capacity.
    """

    def __init__(self, sketch: Any, bloom: BloomFilter, k: int) -> None:
        self.sketch = sketch
        self.bloom = bloom
        self.heap = TopKHeap(k)
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(
        cls,
        sketch_cls: Any,
        budget: MemoryBudget,
        k: int,
        rows: int = 3,
        expected_per_period: int | None = None,
        seed: int = 0x5EED,
    ) -> "SketchPersistent":
        """Paper sizing: 50% Bloom filter, 50% sketch + heap."""
        bloom_budget, sketch_budget = budget.halves()
        bloom = BloomFilter.from_memory(
            bloom_budget, expected_items=expected_per_period, seed=seed ^ 0xBF
        )
        sketch = sketch_cls.from_memory(sketch_budget, rows=rows, heap_k=k, seed=seed)
        return cls(sketch, bloom, k)

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        if self.bloom.insert_if_absent(item):
            estimate = float(self.sketch.update_and_query(item))
            heap = self.heap
            values = heap._values
            if (
                len(values) == heap.capacity
                and estimate <= values[0]
                and item not in heap._pos
            ):
                return  # provable no-op: full heap, untracked item below floor
            heap.offer(item, estimate)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Period-first survivors of the Bloom filter's batch probe feed the
        sketch's ``update_and_query_many`` (when available), and the heap
        replays the per-event estimates with the same no-op skip as
        :class:`repro.sketches.topk.SketchTopK`.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        if self._m_batch is not None:
            self._m_batch.observe(len(items))
        absent = self.bloom.insert_if_absent_many(items)
        survivors = [item for item, fresh in zip(items, absent) if fresh]
        if not survivors:
            return
        batch_query = getattr(self.sketch, "update_and_query_many", None)
        if batch_query is not None:
            estimates = batch_query(survivors)
            if hasattr(estimates, "astype"):
                estimates = estimates.astype(float).tolist()
        else:
            update_and_query = self.sketch.update_and_query
            estimates = [update_and_query(item) for item in survivors]
        heap = self.heap
        offer = heap.offer
        values = heap._values
        pos = heap._pos
        capacity = heap.capacity
        for item, estimate in zip(survivors, estimates):
            estimate = float(estimate)
            if (
                len(values) == capacity
                and estimate <= values[0]
                and item not in pos
            ):
                continue
            offer(item, estimate)

    def end_period(self) -> None:
        """React to a period boundary."""
        self.bloom.clear()

    def query(self, item: int) -> float:
        """Estimated persistency of ``item``."""
        return float(self.sketch.query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(item=item, significance=value, persistency=value)
            for item, value in self.heap.best(k)
        ]
