"""Persistent-items baselines (paper §II-B).

PIE — the state of the art the paper compares against — plus the
sketch-based adaptation (per-period Bloom filter + sketch + top-k heap)
the paper constructs for the comparison.
"""

from repro.persistent.pie import PIE
from repro.persistent.sketch_persistent import SketchPersistent
from repro.persistent.small_space import SmallSpacePersistent
from repro.persistent.ss_persistent import SpaceSavingPersistent

__all__ = [
    "PIE",
    "SketchPersistent",
    "SmallSpacePersistent",
    "SpaceSavingPersistent",
]
