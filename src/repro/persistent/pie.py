"""PIE (Dai, Shahzad, Liu, Zhu 2016) — persistent-items state of the art.

One Space-Time Bloom Filter per period records Raptor-coded fragments of
the identifiers seen in that period.  After the stream ends, each period's
singleton cells are grouped by fingerprint and fed to the fountain-code
decoder; an identifier decoded in a period counts one unit of persistency.

Memory: PIE keeps *all* period filters, so the paper grants it ``T×`` the
budget of the single-structure algorithms to make it comparable (§V-C) —
:meth:`PIE.from_memory` takes the per-period budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro import obs
from repro.codes.raptor import RaptorCode
from repro.hashing.family import as_key_array, numpy_available
from repro.membership.stbf import SpaceTimeBloomFilter
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

_ID_MASK32 = 0xFFFFFFFF


class PIE(StreamSummary):
    """Persistent-item detection via per-period STBFs and Raptor decoding.

    Args:
        cells_per_period: STBF cell count per period.
        num_hashes: Cells written per insertion.
        fp_bits: Fingerprint width.
        seed: Hash seed, shared across periods.
        code: Raptor code; a default 4+2-chunk code over 32-bit ids is
            built when omitted.
    """

    def __init__(
        self,
        cells_per_period: int,
        num_hashes: int = 3,
        fp_bits: int = 12,
        seed: int = 0x91E,
        code: RaptorCode | None = None,
    ) -> None:
        self.cells_per_period = cells_per_period
        self.num_hashes = num_hashes
        self.fp_bits = fp_bits
        self.seed = seed
        self.code = code or RaptorCode(num_source=2, num_parity=1, chunk_bits=16)
        self._filters: List[SpaceTimeBloomFilter] = []
        self._current = self._new_filter()
        self._persistency: Dict[int, int] = {}
        self._decoded = False
        # STBF insertion is idempotent within a period, so repeat arrivals
        # can be skipped outright.  This set is a pure speed cache (the C++
        # original simply pays the per-duplicate hash cost).
        self._seen_this_period: Set[int] = set()
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(
        cls,
        per_period_budget: MemoryBudget,
        num_hashes: int = 3,
        fp_bits: int = 12,
        seed: int = 0x91E,
    ) -> "PIE":
        """Size one period's filter from the per-period byte budget."""
        return cls(
            cells_per_period=per_period_budget.stbf_cells(),
            num_hashes=num_hashes,
            fp_bits=fp_bits,
            seed=seed,
        )

    def _new_filter(self) -> SpaceTimeBloomFilter:
        # Each period's filter hashes with a period-derived seed.  This
        # decorrelates both cell collisions and fountain-decode failures
        # across periods: an item whose symbol equations happen to be rank-
        # deficient in one period is recoverable in the next, instead of
        # being permanently undetectable.
        period_seed = self.seed + 0x9E3779B9 * (len(self._filters) + 1)
        return SpaceTimeBloomFilter(
            num_cells=self.cells_per_period,
            code=self.code,
            num_hashes=self.num_hashes,
            fp_bits=self.fp_bits,
            seed=period_seed,
        )

    # ------------------------------------------------------------ streaming
    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        item &= _ID_MASK32
        if item in self._seen_this_period:
            return
        self._seen_this_period.add(item)
        self._current.insert(item)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Persistency only cares about period-first appearances, so the
        batch folds to its distinct masked identifiers (first-occurrence
        order, which the STBF preserves in collided cells' residuals),
        minus those already seen this period; the survivors go to the
        current filter's vectorised ``insert_many``.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        if self._m_batch is not None:
            self._m_batch.observe(len(items))
        if not numpy_available():
            insert = self.insert
            for item in items:
                insert(item)
            return
        arr = as_key_array(items) & _np.uint64(_ID_MASK32)
        if arr.size == 0:
            return
        uniq, first = _np.unique(arr, return_index=True)
        uniq = uniq[_np.argsort(first, kind="stable")]
        seen = self._seen_this_period
        fresh = [item for item in uniq.tolist() if item not in seen]
        if not fresh:
            return
        seen.update(fresh)
        self._current.insert_many(fresh)

    def end_period(self) -> None:
        """Archive the period's filter and start a fresh one."""
        self._filters.append(self._current)
        self._current = self._new_filter()
        self._seen_this_period.clear()
        self._decoded = False

    def finalize(self) -> None:
        """Decode every archived filter (idempotent)."""
        if self._decoded:
            return
        self._persistency = {}
        for stbf in self._filters:
            for item in self._decode_period(stbf):
                self._persistency[item] = self._persistency.get(item, 0) + 1
        self._decoded = True

    def _decode_period(self, stbf: SpaceTimeBloomFilter) -> List[int]:
        """Recover the identifiers decodable from one period's filter."""
        by_fp: Dict[int, List[Tuple[int, int]]] = {}
        for cell, fp, symbol in stbf.singletons():
            by_fp.setdefault(fp, []).append((cell, symbol))
        recovered: List[int] = []
        for fp, symbols in by_fp.items():
            value = self.code.decode(symbols)
            if value is None:
                continue
            value &= _ID_MASK32
            # Verification: the decoded id must reproduce the fingerprint
            # and be compatible with the filter (guards against decodes of
            # mixed-item symbol groups that happen to be consistent).
            if stbf.fingerprint(value) != fp:
                continue
            if not stbf.might_contain(value):
                continue
            recovered.append(value)
        return recovered

    # -------------------------------------------------------------- queries
    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        self.finalize()
        return float(self._persistency.get(item & _ID_MASK32, 0))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        self.finalize()
        ranked = sorted(
            self._persistency.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            ItemReport(item=item, significance=float(p), persistency=float(p))
            for item, p in ranked[:k]
        ]

    @property
    def periods_recorded(self) -> int:
        """Number of archived period filters."""
        return len(self._filters)
