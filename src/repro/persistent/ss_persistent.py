"""Space-Saving adapted to persistent items (related-work adaptation).

The paper adapts sketch-based algorithms to persistency with a per-period
Bloom filter (§II-B).  The same adaptation applies to counter-based
algorithms: feed Space-Saving only the *period-first* appearance of each
item, so its counters estimate persistency instead of frequency.  This is
the natural counter-based member of the persistent line-up and inherits
Space-Saving's guarantees over the deduplicated stream: estimates never
undercount a monitored item's persistency by more than the filter's false
positives, and never overcount by more than P/m (P = Σ persistencies).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from repro import obs
from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts
from repro.summaries.space_saving import SpaceSaving


class SpaceSavingPersistent(StreamSummary):
    """Top-k persistent items via per-period BF dedup + Space-Saving.

    Args:
        capacity: Monitored-item count of the inner Space-Saving.
        bloom: Per-period dedup filter, cleared at each boundary.
    """

    def __init__(self, capacity: int, bloom: BloomFilter) -> None:
        self._ss = SpaceSaving(capacity)
        self.bloom = bloom
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(
        cls,
        budget: MemoryBudget,
        expected_per_period: int | None = None,
        seed: int = 0x55BF,
    ) -> "SpaceSavingPersistent":
        """Paper-style sizing: half the budget to the Bloom filter, half
        to the Space-Saving counters."""
        bloom_budget, ss_budget = budget.halves()
        bloom = BloomFilter.from_memory(
            bloom_budget, expected_items=expected_per_period, seed=seed
        )
        return cls(capacity=ss_budget.counter_cells(), bloom=bloom)

    def insert(self, item: int) -> None:
        """Process one arrival; only period-first appearances count."""
        if self.bloom.insert_if_absent(item):
            self._ss.insert(item)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        The Bloom filter's batch probe returns each arrival's
        absent/present verdict in stream order; the period-first
        survivors then feed Space-Saving's own batch path.  The two
        structures share no state, so splitting the interleaved per-event
        sequence into two passes is exact.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        if self._m_batch is not None:
            self._m_batch.observe(len(items))
        absent = self.bloom.insert_if_absent_many(items)
        self._ss.insert_many(
            [item for item, fresh in zip(items, absent) if fresh]
        )

    def end_period(self) -> None:
        """Clear the dedup filter at the period boundary."""
        self.bloom.clear()

    def query(self, item: int) -> float:
        """Estimated persistency of ``item``."""
        return self._ss.query(item)

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k most persistent monitored items."""
        return [
            ItemReport(
                item=r.item,
                significance=r.significance,
                persistency=r.significance,
            )
            for r in self._ss.top_k(k)
        ]

    def __len__(self) -> int:
        return len(self._ss)
