"""Hash-based small-space sampling for persistent items (cf. [30], [17]).

The sampling-based alternative the paper's related work cites: instead of
recording every item, sample a fixed pseudo-random subset of the item
space (all items whose hash falls below a threshold) and track those
*exactly* — id, frequency and per-period presence.  The same hash is used
in every period ("coordinated" sampling), so a sampled item's persistency
is measured without bias; items outside the sample are invisible.

With a p-fraction sample the structure holds ≈ p·M cells; the top-k
persistent items are reported from the sample, so recall is bounded by
the probability that a top item is sampled — the structural weakness the
paper exploits when comparing against sampling methods.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro import obs
from repro.hashing.family import HashFamily, as_key_array, numpy_available
from repro.metrics.memory import COUNTER_CELL_BYTES, MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

_HASH_SPACE = 1 << 64


class SmallSpacePersistent(StreamSummary):
    """Coordinated hash sampling for top-k persistent items.

    Args:
        capacity: Maximum tracked (sampled) items; the sampling threshold
            adapts downward if the sample outgrows it.
        sample_rate: Initial inclusion probability.
        seed: Sampling-hash seed (shared across periods by construction).
    """

    def __init__(
        self, capacity: int, sample_rate: float = 0.05, seed: int = 0x5A
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.capacity = capacity
        self._family = HashFamily(seed)
        self._hash = self._family.member(0)
        self._threshold = int(sample_rate * _HASH_SPACE)
        self._freq: Dict[int, int] = {}
        self._pers: Dict[int, int] = {}
        self._seen_this_period: Set[int] = set()
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(
        cls,
        budget: MemoryBudget,
        expected_distinct: int,
        seed: int = 0x5A,
    ) -> "SmallSpacePersistent":
        """Size for a byte budget: 3 counters (id, f, p) ≈ 12B per cell."""
        capacity = max(1, budget.total_bytes // (COUNTER_CELL_BYTES + 4))
        rate = min(1.0, capacity / max(expected_distinct, 1))
        return cls(capacity=capacity, sample_rate=rate, seed=seed)

    def _sampled(self, item: int) -> bool:
        return self._hash(item) < self._threshold

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        if not self._sampled(item):
            return
        if item not in self._freq and len(self._freq) >= self.capacity:
            self._tighten()
            if not self._sampled(item):
                return
        self._freq[item] = self._freq.get(item, 0) + 1
        if item not in self._seen_this_period:
            self._seen_this_period.add(item)
            self._pers[item] = self._pers.get(item, 0) + 1

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        The sampling hash is computed for the whole batch in one
        vectorised pass; the threshold only ever decreases, so the
        candidates it admits are a superset of the sampled events and
        each candidate re-checks the (possibly tightened) threshold
        before the per-event bookkeeping — non-candidates are exactly the
        events per-event replay drops at the first ``_sampled`` test.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        if self._m_batch is not None:
            self._m_batch.observe(len(items))
        if not numpy_available():
            insert = self.insert
            for item in items:
                insert(item)
            return
        arr = as_key_array(items)
        if arr.size == 0:
            return
        hashes = self._family.hash_array(0, arr)
        candidates = _np.flatnonzero(hashes < _np.uint64(self._threshold))
        if candidates.size == 0:
            return
        freq = self._freq
        pers = self._pers
        seen = self._seen_this_period
        capacity = self.capacity
        for i in candidates.tolist():
            item = items[i]
            if item not in freq:
                if int(hashes[i]) >= self._threshold:
                    continue  # tightened mid-batch below this event's hash
                if len(freq) >= capacity:
                    self._tighten()
                    if int(hashes[i]) >= self._threshold:
                        continue
            freq[item] = freq.get(item, 0) + 1
            if item not in seen:
                seen.add(item)
                pers[item] = pers.get(item, 0) + 1

    def _tighten(self) -> None:
        """Halve the sampling threshold and evict now-unsampled items.

        Coordinated sampling stays consistent: surviving items keep their
        exact statistics because the same hash decided their inclusion in
        every past period.
        """
        self._threshold //= 2
        dead = [item for item in self._freq if not self._sampled(item)]
        for item in dead:
            del self._freq[item]
            del self._pers[item]
            self._seen_this_period.discard(item)

    def end_period(self) -> None:
        """React to a period boundary."""
        self._seen_this_period.clear()

    @property
    def sample_rate(self) -> float:
        """Current effective sampling probability."""
        return self._threshold / _HASH_SPACE

    def query(self, item: int) -> float:
        """Exact persistency for sampled items, 0 for the rest."""
        return float(self._pers.get(item, 0))

    def frequency(self, item: int) -> int:
        """Exact frequency of a sampled item (0 otherwise)."""
        return self._freq.get(item, 0)

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        ranked = sorted(self._pers.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            ItemReport(
                item=item,
                significance=float(p),
                frequency=float(self._freq[item]),
                persistency=float(p),
            )
            for item, p in ranked[:k]
        ]

    def __len__(self) -> int:
        return len(self._freq)
