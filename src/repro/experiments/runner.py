"""Run summaries over periodic streams and score them against the oracle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict

from repro import obs
from repro.metrics.accuracy import (
    average_absolute_error,
    average_relative_error,
    precision,
)
from repro.streams.ground_truth import GroundTruth
from repro.streams.model import PeriodicStream


@dataclass(frozen=True)
class EvalResult:
    """Accuracy of one summary on one workload."""

    name: str
    k: int
    precision: float
    are: float
    aae: float

    def row(self) -> "tuple[str, str, str, str]":
        """The result formatted as table cells."""
        return (
            self.name,
            f"{self.precision:.3f}",
            f"{self.are:.3g}",
            f"{self.aae:.3g}",
        )


def evaluate(
    summary: Any,
    truth: GroundTruth,
    k: int,
    alpha: float,
    beta: float,
    name: str = "summary",
) -> EvalResult:
    """Score an already-populated summary against the exact oracle.

    Precision follows the paper's definition |φ∩ψ|/k; ARE/AAE are computed
    over the reported items against their *real* significance.
    """
    exact = truth.top_k_items(k, alpha, beta)
    reported = summary.reported_pairs(k)

    def true_sig(item: int) -> float:
        return truth.significance(item, alpha, beta)

    return EvalResult(
        name=name,
        k=k,
        precision=precision((item for item, _ in reported), exact),
        are=average_relative_error(reported, true_sig),
        aae=average_absolute_error(reported, true_sig),
    )


def _run_metered(
    summary: Any,
    stream: PeriodicStream,
    truth: GroundTruth,
    k: int,
    alpha: float,
    beta: float,
    name: str,
    batched: bool = False,
) -> None:
    """Drive ``summary`` period by period, recording recall/ARE series.

    Arrival for arrival this is exactly ``stream.run(summary)`` (insert
    per event, ``end_period`` at each boundary, ``finalize`` at the end),
    so the final report is identical to the unmetered path — the extra
    work is only the per-boundary top-k probe.  After every boundary the
    current report is scored against the *final* oracle: recall
    (|reported ∩ exact|/k, the paper's precision) lands in the
    ``runner_period_recall`` histogram and the running ARE in
    ``runner_period_are``, both labelled with the summary's name, giving
    exporters the convergence series FDCMSS/BPTree-style evaluations
    plot.
    """
    reg = obs.registry()
    labels = {"summary": name}
    recall_series = reg.histogram(
        "runner_period_recall",
        "Recall of the final top-k oracle achieved at each period boundary",
        buckets=obs.DEFAULT_RATIO_BUCKETS,
        labels=labels,
    )
    are_series = reg.histogram(
        "runner_period_are",
        "Average relative error of the report at each period boundary",
        buckets=obs.DEFAULT_RATIO_BUCKETS,
        labels=labels,
    )
    recall_gauge = reg.gauge(
        "runner_last_recall", "Recall at the most recent boundary", labels=labels
    )
    are_gauge = reg.gauge(
        "runner_last_are", "ARE at the most recent boundary", labels=labels
    )
    exact = truth.top_k_items(k, alpha, beta)
    end_period = getattr(summary, "end_period", None)
    insert = summary.insert
    insert_many = getattr(summary, "insert_many", None) if batched else None
    for period in stream.iter_periods():
        if insert_many is not None:
            insert_many(period)
        else:
            for item in period:
                insert(item)
        if end_period is not None:
            end_period()
        reported = summary.reported_pairs(k)
        recall = precision((item for item, _ in reported), exact)
        are = average_relative_error(
            reported, lambda item: truth.significance(item, alpha, beta)
        )
        recall_series.observe(recall)
        are_series.observe(are)
        recall_gauge.set(recall)
        are_gauge.set(are)
    finalize = getattr(summary, "finalize", None)
    if finalize is not None:
        finalize()


def run_and_evaluate(
    factories: Dict[str, Callable[[], object]],
    stream: PeriodicStream,
    k: int,
    alpha: float,
    beta: float,
    truth: GroundTruth | None = None,
    batched: bool = False,
) -> "list[EvalResult]":
    """Build, run and score every summary in ``factories``.

    With observability on (:func:`repro.obs.enable`), each summary is
    additionally scored at every period boundary and the per-period
    recall/ARE series land in the active registry (see
    :func:`_run_metered`); the returned results are identical either way.

    Args:
        factories: ``name -> zero-arg factory`` map; each factory builds a
            fresh summary that the stream is then driven through.
        stream: The workload.
        k: Top-k size.
        alpha: Frequency weight of the significance target.
        beta: Persistency weight.
        truth: Pre-computed oracle (recomputed when omitted — pass it when
            sweeping many configurations over one stream).
        batched: Feed each summary whole-period batches through its
            ``insert_many`` fast path instead of per-event ``insert``.
            Every summary's batch path is differentially pinned to the
            per-event replay, so results are identical — only wall-clock
            changes.
    """
    truth = truth or GroundTruth(stream)
    results = []
    for name, factory in factories.items():
        summary = factory()
        if obs.is_enabled():
            _run_metered(
                summary, stream, truth, k, alpha, beta, name, batched=batched
            )
        else:
            stream.run(summary, batched=batched)
        results.append(evaluate(summary, truth, k, alpha, beta, name=name))
    return results
