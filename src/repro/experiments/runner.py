"""Run summaries over periodic streams and score them against the oracle."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

from repro.metrics.accuracy import (
    average_absolute_error,
    average_relative_error,
    precision,
)
from repro.streams.ground_truth import GroundTruth
from repro.streams.model import PeriodicStream


@dataclass(frozen=True)
class EvalResult:
    """Accuracy of one summary on one workload."""

    name: str
    k: int
    precision: float
    are: float
    aae: float

    def row(self) -> "tuple[str, str, str, str]":
        """The result formatted as table cells."""
        return (
            self.name,
            f"{self.precision:.3f}",
            f"{self.are:.3g}",
            f"{self.aae:.3g}",
        )


def evaluate(
    summary,
    truth: GroundTruth,
    k: int,
    alpha: float,
    beta: float,
    name: str = "summary",
) -> EvalResult:
    """Score an already-populated summary against the exact oracle.

    Precision follows the paper's definition |φ∩ψ|/k; ARE/AAE are computed
    over the reported items against their *real* significance.
    """
    exact = truth.top_k_items(k, alpha, beta)
    reported = summary.reported_pairs(k)

    def true_sig(item: int) -> float:
        return truth.significance(item, alpha, beta)

    return EvalResult(
        name=name,
        k=k,
        precision=precision((item for item, _ in reported), exact),
        are=average_relative_error(reported, true_sig),
        aae=average_absolute_error(reported, true_sig),
    )


def run_and_evaluate(
    factories: Dict[str, Callable[[], object]],
    stream: PeriodicStream,
    k: int,
    alpha: float,
    beta: float,
    truth: GroundTruth | None = None,
) -> "list[EvalResult]":
    """Build, run and score every summary in ``factories``.

    Args:
        factories: ``name -> zero-arg factory`` map; each factory builds a
            fresh summary that the stream is then driven through.
        stream: The workload.
        k: Top-k size.
        alpha: Frequency weight of the significance target.
        beta: Persistency weight.
        truth: Pre-computed oracle (recomputed when omitted — pass it when
            sweeping many configurations over one stream).
    """
    truth = truth or GroundTruth(stream)
    results = []
    for name, factory in factories.items():
        summary = factory()
        stream.run(summary)
        results.append(evaluate(summary, truth, k, alpha, beta, name=name))
    return results
