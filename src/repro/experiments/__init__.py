"""Experiment harness: drive summaries over streams, score them against
the exact oracle, and format the per-figure result tables."""

from repro.experiments.runner import EvalResult, evaluate, run_and_evaluate
from repro.experiments.configs import (
    DATASET_BUILDERS,
    default_algorithms_frequent,
    default_algorithms_persistent,
    default_algorithms_significant,
    make_dataset,
)
from repro.experiments.monitor import ChurnEvent, TopKMonitor
from repro.experiments.report import format_table

__all__ = [
    "TopKMonitor",
    "ChurnEvent",
    "EvalResult",
    "evaluate",
    "run_and_evaluate",
    "make_dataset",
    "DATASET_BUILDERS",
    "default_algorithms_frequent",
    "default_algorithms_persistent",
    "default_algorithms_significant",
    "format_table",
]
