"""Plain-text tables for benchmark output (the "figure series")."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Row cell values (stringified).
        title: Optional caption printed above the table.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)
