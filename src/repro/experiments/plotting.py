"""Text rendering of benchmark series (terminal-friendly "figures").

The benchmark harness prints each paper figure as a numeric table; this
module adds a compact visual form so the *shape* is visible at a glance
in CI logs — horizontal bar charts for single series and multi-series
line grids for sweeps.  Pure text, no plotting dependency.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

_BLOCKS = " ▏▎▍▌▋▊▉█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    title: str = "",
    fmt: str = "{:g}",
) -> str:
    """Render one series as horizontal bars.

    Args:
        labels: Row labels.
        values: Non-negative values (one per label).
        width: Maximum bar width in characters.
        title: Optional caption.
        fmt: Value format specification.
    """
    if len(labels) != len(values):
        raise ValueError("labels and values must align")
    if any(v < 0 for v in values):
        raise ValueError("bar_chart requires non-negative values")
    peak = max(values, default=0.0)
    label_width = max((len(str(label)) for label in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        if peak > 0:
            cells = value / peak * width
            full = int(cells)
            frac = int((cells - full) * (len(_BLOCKS) - 1))
            bar = "█" * full + (_BLOCKS[frac] if frac else "")
        else:
            bar = ""
        lines.append(
            f"{str(label).rjust(label_width)} |{bar.ljust(width)}| "
            + fmt.format(value)
        )
    return "\n".join(lines)


def series_grid(
    x_labels: Sequence[object],
    series: Mapping[str, Sequence[float]],
    height: int = 10,
    title: str = "",
    log_scale: bool = False,
) -> str:
    """Render several series over a shared x-axis as a character grid.

    Each series gets a distinct marker; higher rows are higher values.
    ``log_scale`` plots log10(value) (useful for ARE curves spanning
    orders of magnitude; non-positive values clamp to the axis floor).
    """
    if not series:
        raise ValueError("need at least one series")
    lengths = {len(values) for values in series.values()}
    if lengths != {len(x_labels)}:
        raise ValueError("every series must match the x-axis length")

    def transform(v: float) -> float:
        if not log_scale:
            return v
        return math.log10(v) if v > 0 else float("-inf")

    finite = [
        transform(v)
        for values in series.values()
        for v in values
        if transform(v) != float("-inf")
    ]
    if not finite:
        raise ValueError("no finite values to plot")
    low, high = min(finite), max(finite)
    span = (high - low) or 1.0

    markers = "ox+*#@%&"
    grid = [[" "] * len(x_labels) for _ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        for col, value in enumerate(values):
            t = transform(value)
            if t == float("-inf"):
                row = height - 1
            else:
                row = height - 1 - round((t - low) / span * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = marker
            elif grid[row][col] != marker:
                grid[row][col] = "*"  # overlap

    lines = [title] if title else []
    axis_note = " (log10)" if log_scale else ""
    lines.append(f"high {high:g}{axis_note}")
    lines.extend("  " + " ".join(row) for row in grid)
    lines.append(f"low  {low:g}{axis_note}")
    lines.append("  " + " ".join(str(x)[:1] for x in x_labels))
    legend = "  ".join(
        f"{markers[i % len(markers)]}={name}" for i, name in enumerate(series)
    )
    lines.append(f"x: {list(x_labels)}   {legend}")
    return "\n".join(lines)
