"""Continuous top-k monitoring with churn tracking (extension).

The paper's website-evaluation use case wants "the rank … updated in
real time".  :class:`TopKMonitor` wraps any summary, snapshots its top-k
at every period boundary, and reports ranking *churn* — which items
entered, which left, and how stable the set is over time.  Churn is
itself a useful signal: a stable top-k means the significant set has
converged; heavy churn flags regime change (or an attack — see
``repro.streams.adversarial``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Set

from repro.summaries.base import ItemReport


@dataclass(frozen=True)
class ChurnEvent:
    """The top-k delta at one period boundary."""

    period: int
    entered: Set[int]
    left: Set[int]

    @property
    def churn(self) -> int:
        """Number of membership changes at this boundary."""
        return len(self.entered) + len(self.left)


@dataclass
class TopKMonitor:
    """Period-by-period top-k snapshots over any summary.

    Drive it exactly like the wrapped summary; it forwards every call and
    records a snapshot on each ``end_period``.

    Args:
        summary: The wrapped summary (any :class:`StreamSummary`).
        k: Top-k size to monitor.
    """

    summary: Any
    k: int
    snapshots: List[List[int]] = field(default_factory=list)
    events: List[ChurnEvent] = field(default_factory=list)

    def insert(self, item: int) -> None:
        """Forwarded arrival."""
        self.summary.insert(item)

    def end_period(self) -> None:
        """Forward the boundary, then snapshot the top-k and diff it."""
        end_period = getattr(self.summary, "end_period", None)
        if end_period is not None:
            end_period()
        current = [r.item for r in self.summary.top_k(self.k)]
        if self.snapshots:
            previous = set(self.snapshots[-1])
            now = set(current)
            self.events.append(
                ChurnEvent(
                    period=len(self.snapshots),
                    entered=now - previous,
                    left=previous - now,
                )
            )
        self.snapshots.append(current)

    def finalize(self) -> None:
        """Forwarded stream-end flush."""
        finalize = getattr(self.summary, "finalize", None)
        if finalize is not None:
            finalize()

    def query(self, item: int) -> float:
        """Forwarded point query."""
        return float(self.summary.query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        """Forwarded top-k."""
        return list(self.summary.top_k(k))

    # ------------------------------------------------------------- analysis
    def total_churn(self) -> int:
        """Total membership changes across all boundaries."""
        return sum(event.churn for event in self.events)

    def mean_churn(self) -> float:
        """Average membership changes per boundary (0 when < 2 periods)."""
        if not self.events:
            return 0.0
        return self.total_churn() / len(self.events)

    def stabilised_at(self, quiet_periods: int = 3) -> "int | None":
        """First period after which the top-k stayed unchanged for
        ``quiet_periods`` consecutive boundaries (None if never)."""
        run = 0
        for event in self.events:
            run = run + 1 if event.churn == 0 else 0
            if run >= quiet_periods:
                return event.period - quiet_periods + 1
        return None

    def tenure(self, item: int) -> int:
        """Number of snapshots in which ``item`` was in the top-k."""
        return sum(1 for snapshot in self.snapshots if item in snapshot)
