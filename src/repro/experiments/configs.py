"""Per-figure experiment configuration: datasets and algorithm line-ups.

These builders encode the paper's §V-C setup rules once so every benchmark
compares the same way: identical memory for all algorithms (except PIE,
which receives ``T×`` as in the paper), 3 sketch rows, LTC with ``d = 8``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.combined.two_structure import TwoStructureSignificant
from repro.core.config import LTCConfig
from repro.core.kernels import build_ltc
from repro.core.ltc import LTC
from repro.metrics.memory import MemoryBudget
from repro.persistent.pie import PIE
from repro.persistent.sketch_persistent import SketchPersistent
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.topk import SketchTopK
from repro.streams.datasets import caida_like, network_like, social_like
from repro.streams.model import PeriodicStream
from repro.summaries.frequent import Frequent
from repro.summaries.lossy_counting import LossyCounting
from repro.summaries.space_saving import SpaceSaving

DATASET_BUILDERS: Dict[str, Callable[..., PeriodicStream]] = {
    "caida": caida_like,
    "network": network_like,
    "social": social_like,
}

_DATASET_CACHE: Dict[str, PeriodicStream] = {}


def make_dataset(name: str, **kwargs: Any) -> PeriodicStream:
    """Build (and cache) one of the paper-dataset substitutes.

    Benchmarks sweep many memory sizes over the same stream; the cache
    keeps generation out of the measured loop.  Only parameter-free
    default builds are cached.
    """
    if kwargs:
        return DATASET_BUILDERS[name](**kwargs)
    if name not in _DATASET_CACHE:
        _DATASET_CACHE[name] = DATASET_BUILDERS[name]()
    return _DATASET_CACHE[name]


def ltc_factory(
    budget: MemoryBudget,
    stream: PeriodicStream,
    alpha: float,
    beta: float,
    **options: Any,
) -> Callable[[], LTC]:
    """Factory for a paper-default LTC sized for ``budget``.

    ``options`` forwards to :class:`repro.core.config.LTCConfig` — in
    particular ``kernel=`` selects the implementation
    (:func:`repro.core.kernels.build_ltc`).
    """

    def build() -> LTC:
        config = LTCConfig.from_memory(
            budget,
            items_per_period=stream.period_length,
            alpha=alpha,
            beta=beta,
            **options,
        )
        return build_ltc(config)

    return build


def default_algorithms_frequent(
    budget: MemoryBudget, stream: PeriodicStream, k: int, **ltc_options: Any
) -> Dict[str, Callable[[], object]]:
    """The Fig. 9/10 line-up: LTC vs SS, LC, Frequent, CM, CU, Count."""
    return {
        "LTC": ltc_factory(budget, stream, alpha=1.0, beta=0.0, **ltc_options),
        "SS": lambda: SpaceSaving.from_memory(budget),
        "LC": lambda: LossyCounting.from_memory(budget),
        "Freq": lambda: Frequent.from_memory(budget),
        "CM": lambda: SketchTopK.from_memory(CountMinSketch, budget, k),
        "CU": lambda: SketchTopK.from_memory(CUSketch, budget, k),
        "Count": lambda: SketchTopK.from_memory(CountSketch, budget, k),
    }


def default_algorithms_persistent(
    budget: MemoryBudget, stream: PeriodicStream, k: int, **ltc_options: Any
) -> Dict[str, Callable[[], object]]:
    """The Fig. 12/13 line-up: LTC vs PIE (T× memory) and BF+sketch+heap."""
    per_period = stream.period_length
    return {
        "LTC": ltc_factory(budget, stream, alpha=0.0, beta=1.0, **ltc_options),
        # Paper §V-C: PIE keeps one filter per period, so it receives the
        # default budget *per period* (T times the total).
        "PIE": lambda: PIE.from_memory(budget),
        "CM+BF": lambda: SketchPersistent.from_memory(
            CountMinSketch, budget, k, expected_per_period=per_period
        ),
        "CU+BF": lambda: SketchPersistent.from_memory(
            CUSketch, budget, k, expected_per_period=per_period
        ),
        "Count+BF": lambda: SketchPersistent.from_memory(
            CountSketch, budget, k, expected_per_period=per_period
        ),
    }


def default_algorithms_significant(
    budget: MemoryBudget,
    stream: PeriodicStream,
    k: int,
    alpha: float,
    beta: float,
    **ltc_options: Any,
) -> Dict[str, Callable[[], object]]:
    """The Fig. 14/15 line-up: LTC vs the two-structure CU and CM combos
    (CU is the paper's strongest baseline; CM shown for reference)."""
    return {
        "LTC": ltc_factory(budget, stream, alpha=alpha, beta=beta, **ltc_options),
        "CU+CU": lambda: TwoStructureSignificant.from_memory(
            CUSketch, budget, k, alpha, beta
        ),
        "CM+CM": lambda: TwoStructureSignificant.from_memory(
            CountMinSketch, budget, k, alpha, beta
        ),
    }
