"""LTC state serialization: checkpoint and restore a running structure.

Two formats:

* :func:`to_state` / :func:`from_state` — a plain dict (JSON-safe), handy
  for debugging and cross-version tooling;
* :func:`to_bytes` / :func:`from_bytes` — a compact binary image whose
  per-cell record mirrors the paper's cell layout (key, frequency,
  persistency counter, flag bits), preceded by a small header with the
  configuration and CLOCK position.

Restoring reproduces the structure exactly: estimates, CLOCK phase,
period parity, the timed-mode accumulator and last-seen timestamp all
survive a round-trip (property-tested), so a stream split by
checkpoint/restore is bit-identical to an uninterrupted run in both
count-based and timed driving modes.

Binary format versions:

* ``LTC1`` (v1) — config, parity, CLOCK ``hand``/``scanned``/``_acc``.
  Readable forever; no longer written.
* ``LTC2`` (v2) — v1 plus the timed-mode state the v1 header silently
  dropped: a float fractional accumulator and ``LTC._last_timestamp``
  (with a presence flag).  Readable; no longer written.
* ``LTC3`` (v3) — v2 with the float accumulator replaced by the integer
  tick accumulator ``_tacc`` (``ClockPointer.TICKS_PER_PERIOD`` ticks
  per period), matching the exact time-based CLOCK arithmetic.  Current
  write format.  Reading a v2 image converts the float fraction to
  ticks, rounding to the nearest tick.

Both restore paths accept a ``cls=`` parameter (default
:class:`repro.core.ltc.LTC`) so engineering subclasses such as
:class:`repro.core.fast_ltc.FastLTC` can be revived as themselves; after
the cells are filled the subclass hook ``_reindex()`` rebuilds any
derived lookup state (FastLTC's item→slot index, ColumnarLTC's column
arrays).
"""

from __future__ import annotations

import math
import struct
from typing import Any, Dict, Optional, Type

from repro.core.clock import ClockPointer
from repro.core.config import LTCConfig
from repro.core.ltc import LTC

_MAGIC_V1 = b"LTC1"
_MAGIC_V2 = b"LTC2"
_MAGIC_V3 = b"LTC3"
_EMPTY_KEY = 0xFFFFFFFFFFFFFFFF
_HEADER_V1 = struct.Struct("<4sIIddIBBBxIIIqQ")
# v2 appends: facc (double), has_timestamp (byte), last_timestamp (double).
_HEADER_V2 = struct.Struct("<4sIIddIBBBxIIIqQdBd")
# v3 replaces the float facc with the integer tick accumulator (uint64).
_HEADER_V3 = struct.Struct("<4sIIddIBBBxIIIqQQBd")
_HEADER = _HEADER_V3  # the write format
_CELL = struct.Struct("<QiiB")

_POLICY_CODES = {None: 0, "longtail": 1, "one": 2, "space-saving": 3}
_POLICY_NAMES = {code: name for name, code in _POLICY_CODES.items()}


def _ticks_from_fraction(facc: float) -> int:
    """Convert a legacy (v2) fractional accumulator to integer ticks."""
    ticks = round(facc * ClockPointer.TICKS_PER_PERIOD)
    return min(max(ticks, 0), ClockPointer.TICKS_PER_PERIOD - 1)


def to_state(ltc: LTC) -> Dict[str, Any]:
    """Snapshot an LTC as a JSON-safe dict."""
    cfg = ltc.config
    return {
        "config": {
            "num_buckets": cfg.num_buckets,
            "bucket_width": cfg.bucket_width,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "items_per_period": cfg.items_per_period,
            "deviation_eliminator": cfg.deviation_eliminator,
            "longtail_replacement": cfg.longtail_replacement,
            "replacement_policy": cfg.replacement_policy,
            "seed": cfg.seed,
        },
        "parity": ltc._parity,
        "last_timestamp": ltc._last_timestamp,
        "clock": {
            "hand": ltc._clock.hand,
            "acc": ltc._clock._acc,
            "tacc": ltc._clock._tacc,
            "scanned_in_period": ltc._clock.scanned_in_period,
        },
        # int() casts keep the dict JSON-safe for columnar subclasses
        # whose cell columns hold numpy scalars.
        "cells": [
            {
                "key": key if key is None else int(key),
                "freq": int(ltc._freqs[j]),
                "counter": int(ltc._counters[j]),
                "flags": int(ltc._flags[j]),
            }
            for j, key in enumerate(ltc._keys)
        ],
    }


# reprolint: detached — restores a freshly built structure before any listener attaches; the hooks contract says attach does not replay history
def from_state(state: Dict[str, Any], cls: Type[LTC] = LTC) -> LTC:
    """Rebuild an LTC (or subclass ``cls``) from :func:`to_state` output.

    States written before the format carried the timed-mode fields
    restore with those fields at their fresh-structure defaults; legacy
    states carrying a float ``facc`` restore via tick conversion.
    """
    ltc = cls(LTCConfig(**state["config"]))
    cells = state["cells"]
    if len(cells) != ltc.total_cells:
        raise ValueError("cell count does not match configuration")
    for j, cell in enumerate(cells):
        ltc._keys[j] = cell["key"]
        ltc._freqs[j] = cell["freq"]
        ltc._counters[j] = cell["counter"]
        ltc._flags[j] = cell["flags"]
    _restore_dynamic(
        ltc, state["parity"], state["clock"], state.get("last_timestamp")
    )
    return ltc


def _restore_dynamic(
    ltc: LTC,
    parity: int,
    clock: Dict[str, Any],
    last_timestamp: Optional[float] = None,
) -> None:
    ltc._parity = parity
    if ltc._de:
        ltc._set_bit = 1 << parity
        ltc._harvest_bit = 1 << (parity ^ 1)
    ltc._clock.hand = clock["hand"]
    ltc._clock._acc = clock["acc"]
    if "tacc" in clock:
        ltc._clock._tacc = clock["tacc"]
    else:
        ltc._clock._tacc = _ticks_from_fraction(clock.get("facc", 0.0))
    ltc._clock.scanned_in_period = clock["scanned_in_period"]
    ltc._last_timestamp = last_timestamp
    ltc._reindex()


def to_bytes(ltc: LTC) -> bytes:
    """Serialise an LTC to a compact binary image (v3 format)."""
    cfg = ltc.config
    policy_code = _POLICY_CODES[cfg.replacement_policy]
    ts = ltc._last_timestamp
    header = _HEADER_V3.pack(
        _MAGIC_V3,
        cfg.num_buckets,
        cfg.bucket_width,
        cfg.alpha,
        cfg.beta,
        cfg.items_per_period,
        int(cfg.deviation_eliminator),
        int(cfg.longtail_replacement),
        policy_code,
        ltc._parity,
        ltc._clock.hand,
        ltc._clock.scanned_in_period,
        ltc._clock._acc,
        # Already 64-bit (LTCConfig normalizes at construction); the mask
        # stays as a guard for configs built before that invariant.
        cfg.seed & 0xFFFFFFFFFFFFFFFF,
        ltc._clock._tacc,
        int(ts is not None),
        0.0 if ts is None else ts,
    )
    cells = bytearray()
    for j, key in enumerate(ltc._keys):
        cells += _CELL.pack(
            _EMPTY_KEY if key is None else int(key),
            int(ltc._freqs[j]),
            int(ltc._counters[j]),
            int(ltc._flags[j]),
        )
    return header + bytes(cells)


# reprolint: detached — restores a freshly built structure before any listener attaches; the hooks contract says attach does not replay history
def from_bytes(blob: bytes, cls: Type[LTC] = LTC) -> LTC:
    """Restore an LTC (or subclass ``cls``) from :func:`to_bytes` output.

    Reads the current v3 images plus legacy v2 ``LTC2`` (float
    accumulator, converted to ticks) and v1 ``LTC1`` images (whose
    timed-mode accumulator and last timestamp restore as fresh defaults).
    """
    magic = blob[:4]
    if magic == _MAGIC_V3:
        header_struct = _HEADER_V3
    elif magic == _MAGIC_V2:
        header_struct = _HEADER_V2
    elif magic == _MAGIC_V1:
        header_struct = _HEADER_V1
    else:
        raise ValueError("not an LTC image (bad magic)")
    fields = header_struct.unpack_from(blob, 0)
    (
        _,
        num_buckets,
        bucket_width,
        alpha,
        beta,
        items_per_period,
        de,
        ltr,
        policy_code,
        parity,
        hand,
        scanned,
        acc,
        seed,
    ) = fields[:14]
    last_timestamp: Optional[float]
    if magic == _MAGIC_V1:
        tacc, last_timestamp = 0, None
    else:
        raw_acc, has_ts, last_timestamp_raw = fields[14:]
        last_timestamp = last_timestamp_raw if has_ts else None
        if last_timestamp is not None and math.isnan(last_timestamp):
            raise ValueError("corrupt LTC image (NaN timestamp)")
        tacc = _ticks_from_fraction(raw_acc) if magic == _MAGIC_V2 else raw_acc
    if policy_code not in _POLICY_NAMES:
        raise ValueError(f"corrupt LTC image (unknown policy code {policy_code})")
    policy = _POLICY_NAMES[policy_code]
    ltc = cls(
        LTCConfig(
            num_buckets=num_buckets,
            bucket_width=bucket_width,
            alpha=alpha,
            beta=beta,
            items_per_period=items_per_period,
            deviation_eliminator=bool(de),
            longtail_replacement=bool(ltr),
            replacement_policy=policy,
            seed=seed,
        )
    )
    offset = header_struct.size
    for j in range(ltc.total_cells):
        key, freq, counter, flags = _CELL.unpack_from(blob, offset)
        offset += _CELL.size
        ltc._keys[j] = None if key == _EMPTY_KEY else key
        ltc._freqs[j] = freq
        ltc._counters[j] = counter
        ltc._flags[j] = flags
    if offset != len(blob):
        raise ValueError("trailing bytes in LTC image")
    _restore_dynamic(
        ltc,
        parity,
        {"hand": hand, "acc": acc, "tacc": tacc, "scanned_in_period": scanned},
        last_timestamp,
    )
    return ltc
