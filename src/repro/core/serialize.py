"""LTC state serialization: checkpoint and restore a running structure.

Two formats:

* :func:`to_state` / :func:`from_state` — a plain dict (JSON-safe), handy
  for debugging and cross-version tooling;
* :func:`to_bytes` / :func:`from_bytes` — a compact binary image whose
  per-cell record mirrors the paper's cell layout (key, frequency,
  persistency counter, flag bits), preceded by a small header with the
  configuration and CLOCK position.

Restoring reproduces the structure exactly: estimates, CLOCK phase and
period parity all survive a round-trip (property-tested).
"""

from __future__ import annotations

import struct
from typing import Any, Dict

from repro.core.config import LTCConfig
from repro.core.ltc import LTC

_MAGIC = b"LTC1"
_EMPTY_KEY = 0xFFFFFFFFFFFFFFFF
_HEADER = struct.Struct("<4sIIddIBBBxIIIqQ")
_CELL = struct.Struct("<QiiB")


def to_state(ltc: LTC) -> Dict[str, Any]:
    """Snapshot an LTC as a JSON-safe dict."""
    cfg = ltc.config
    return {
        "config": {
            "num_buckets": cfg.num_buckets,
            "bucket_width": cfg.bucket_width,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "items_per_period": cfg.items_per_period,
            "deviation_eliminator": cfg.deviation_eliminator,
            "longtail_replacement": cfg.longtail_replacement,
            "replacement_policy": cfg.replacement_policy,
            "seed": cfg.seed,
        },
        "parity": ltc._parity,
        "clock": {
            "hand": ltc._clock.hand,
            "acc": ltc._clock._acc,
            "scanned_in_period": ltc._clock.scanned_in_period,
        },
        "cells": [
            {
                "key": ltc._keys[j],
                "freq": ltc._freqs[j],
                "counter": ltc._counters[j],
                "flags": ltc._flags[j],
            }
            for j in range(ltc.total_cells)
        ],
    }


def from_state(state: Dict[str, Any]) -> LTC:
    """Rebuild an LTC from :func:`to_state` output."""
    ltc = LTC(LTCConfig(**state["config"]))
    cells = state["cells"]
    if len(cells) != ltc.total_cells:
        raise ValueError("cell count does not match configuration")
    for j, cell in enumerate(cells):
        ltc._keys[j] = cell["key"]
        ltc._freqs[j] = cell["freq"]
        ltc._counters[j] = cell["counter"]
        ltc._flags[j] = cell["flags"]
    _restore_dynamic(ltc, state["parity"], state["clock"])
    return ltc


def _restore_dynamic(ltc: LTC, parity: int, clock: Dict[str, int]) -> None:
    ltc._parity = parity
    if ltc._de:
        ltc._set_bit = 1 << parity
        ltc._harvest_bit = 1 << (parity ^ 1)
    ltc._clock.hand = clock["hand"]
    ltc._clock._acc = clock["acc"]
    ltc._clock.scanned_in_period = clock["scanned_in_period"]


def to_bytes(ltc: LTC) -> bytes:
    """Serialise an LTC to a compact binary image."""
    cfg = ltc.config
    policy_code = {None: 0, "longtail": 1, "one": 2, "space-saving": 3}[
        cfg.replacement_policy
    ]
    header = _HEADER.pack(
        _MAGIC,
        cfg.num_buckets,
        cfg.bucket_width,
        cfg.alpha,
        cfg.beta,
        cfg.items_per_period,
        int(cfg.deviation_eliminator),
        int(cfg.longtail_replacement),
        policy_code,
        ltc._parity,
        ltc._clock.hand,
        ltc._clock.scanned_in_period,
        ltc._clock._acc,
        cfg.seed & 0xFFFFFFFFFFFFFFFF,
    )
    cells = bytearray()
    for j in range(ltc.total_cells):
        key = ltc._keys[j]
        cells += _CELL.pack(
            _EMPTY_KEY if key is None else key,
            ltc._freqs[j],
            ltc._counters[j],
            ltc._flags[j],
        )
    return header + bytes(cells)


def from_bytes(blob: bytes) -> LTC:
    """Restore an LTC from :func:`to_bytes` output."""
    if blob[:4] != _MAGIC:
        raise ValueError("not an LTC image (bad magic)")
    (
        _,
        num_buckets,
        bucket_width,
        alpha,
        beta,
        items_per_period,
        de,
        ltr,
        policy_code,
        parity,
        hand,
        scanned,
        acc,
        seed,
    ) = _HEADER.unpack_from(blob, 0)
    policy = {0: None, 1: "longtail", 2: "one", 3: "space-saving"}[policy_code]
    ltc = LTC(
        LTCConfig(
            num_buckets=num_buckets,
            bucket_width=bucket_width,
            alpha=alpha,
            beta=beta,
            items_per_period=items_per_period,
            deviation_eliminator=bool(de),
            longtail_replacement=bool(ltr),
            replacement_policy=policy,
            seed=seed,
        )
    )
    offset = _HEADER.size
    for j in range(ltc.total_cells):
        key, freq, counter, flags = _CELL.unpack_from(blob, offset)
        offset += _CELL.size
        ltc._keys[j] = None if key == _EMPTY_KEY else key
        ltc._freqs[j] = freq
        ltc._counters[j] = counter
        ltc._flags[j] = flags
    if offset != len(blob):
        raise ValueError("trailing bytes in LTC image")
    _restore_dynamic(
        ltc, parity, {"hand": hand, "acc": acc, "scanned_in_period": scanned}
    )
    return ltc
