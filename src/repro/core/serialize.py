"""LTC state serialization: checkpoint and restore a running structure.

Two formats:

* :func:`to_state` / :func:`from_state` — a plain dict (JSON-safe), handy
  for debugging and cross-version tooling;
* :func:`to_bytes` / :func:`from_bytes` — a compact binary image whose
  per-cell record mirrors the paper's cell layout (key, frequency,
  persistency counter, flag bits), preceded by a small header with the
  configuration and CLOCK position.

Restoring reproduces the structure exactly: estimates, CLOCK phase,
period parity, the timed-mode accumulator and last-seen timestamp all
survive a round-trip (property-tested), so a stream split by
checkpoint/restore is bit-identical to an uninterrupted run in both
count-based and timed driving modes.

Binary format versions:

* ``LTC1`` (v1) — config, parity, CLOCK ``hand``/``scanned``/``_acc``.
  Readable forever; no longer written.
* ``LTC2`` (v2) — v1 plus the timed-mode state the v1 header silently
  dropped: the fractional CLOCK accumulator ``_facc`` and
  ``LTC._last_timestamp`` (with a presence flag).  Current write format.

Both restore paths accept a ``cls=`` parameter (default
:class:`repro.core.ltc.LTC`) so engineering subclasses such as
:class:`repro.core.fast_ltc.FastLTC` can be revived as themselves; after
the cells are filled the subclass hook ``_reindex()`` rebuilds any
derived lookup state (FastLTC's item→slot index).
"""

from __future__ import annotations

import math
import struct
from typing import Any, Dict, Optional, Type

from repro.core.config import LTCConfig
from repro.core.ltc import LTC

_MAGIC_V1 = b"LTC1"
_MAGIC_V2 = b"LTC2"
_EMPTY_KEY = 0xFFFFFFFFFFFFFFFF
_HEADER_V1 = struct.Struct("<4sIIddIBBBxIIIqQ")
# v2 appends: facc (double), has_timestamp (byte), last_timestamp (double).
_HEADER_V2 = struct.Struct("<4sIIddIBBBxIIIqQdBd")
_HEADER = _HEADER_V2  # the write format
_CELL = struct.Struct("<QiiB")

_POLICY_CODES = {None: 0, "longtail": 1, "one": 2, "space-saving": 3}
_POLICY_NAMES = {code: name for name, code in _POLICY_CODES.items()}


def to_state(ltc: LTC) -> Dict[str, Any]:
    """Snapshot an LTC as a JSON-safe dict."""
    cfg = ltc.config
    return {
        "config": {
            "num_buckets": cfg.num_buckets,
            "bucket_width": cfg.bucket_width,
            "alpha": cfg.alpha,
            "beta": cfg.beta,
            "items_per_period": cfg.items_per_period,
            "deviation_eliminator": cfg.deviation_eliminator,
            "longtail_replacement": cfg.longtail_replacement,
            "replacement_policy": cfg.replacement_policy,
            "seed": cfg.seed,
        },
        "parity": ltc._parity,
        "last_timestamp": ltc._last_timestamp,
        "clock": {
            "hand": ltc._clock.hand,
            "acc": ltc._clock._acc,
            "facc": ltc._clock._facc,
            "scanned_in_period": ltc._clock.scanned_in_period,
        },
        "cells": [
            {
                "key": ltc._keys[j],
                "freq": ltc._freqs[j],
                "counter": ltc._counters[j],
                "flags": ltc._flags[j],
            }
            for j in range(ltc.total_cells)
        ],
    }


def from_state(state: Dict[str, Any], cls: Type[LTC] = LTC) -> LTC:
    """Rebuild an LTC (or subclass ``cls``) from :func:`to_state` output.

    States written before the format carried ``facc``/``last_timestamp``
    restore with those fields at their fresh-structure defaults.
    """
    ltc = cls(LTCConfig(**state["config"]))
    cells = state["cells"]
    if len(cells) != ltc.total_cells:
        raise ValueError("cell count does not match configuration")
    for j, cell in enumerate(cells):
        ltc._keys[j] = cell["key"]
        ltc._freqs[j] = cell["freq"]
        ltc._counters[j] = cell["counter"]
        ltc._flags[j] = cell["flags"]
    _restore_dynamic(
        ltc, state["parity"], state["clock"], state.get("last_timestamp")
    )
    return ltc


def _restore_dynamic(
    ltc: LTC,
    parity: int,
    clock: Dict[str, Any],
    last_timestamp: Optional[float] = None,
) -> None:
    ltc._parity = parity
    if ltc._de:
        ltc._set_bit = 1 << parity
        ltc._harvest_bit = 1 << (parity ^ 1)
    ltc._clock.hand = clock["hand"]
    ltc._clock._acc = clock["acc"]
    ltc._clock._facc = clock.get("facc", 0.0)
    ltc._clock.scanned_in_period = clock["scanned_in_period"]
    ltc._last_timestamp = last_timestamp
    ltc._reindex()


def to_bytes(ltc: LTC) -> bytes:
    """Serialise an LTC to a compact binary image (v2 format)."""
    cfg = ltc.config
    policy_code = _POLICY_CODES[cfg.replacement_policy]
    ts = ltc._last_timestamp
    header = _HEADER_V2.pack(
        _MAGIC_V2,
        cfg.num_buckets,
        cfg.bucket_width,
        cfg.alpha,
        cfg.beta,
        cfg.items_per_period,
        int(cfg.deviation_eliminator),
        int(cfg.longtail_replacement),
        policy_code,
        ltc._parity,
        ltc._clock.hand,
        ltc._clock.scanned_in_period,
        ltc._clock._acc,
        # Already 64-bit (LTCConfig normalizes at construction); the mask
        # stays as a guard for configs built before that invariant.
        cfg.seed & 0xFFFFFFFFFFFFFFFF,
        ltc._clock._facc,
        int(ts is not None),
        0.0 if ts is None else ts,
    )
    cells = bytearray()
    for j in range(ltc.total_cells):
        key = ltc._keys[j]
        cells += _CELL.pack(
            _EMPTY_KEY if key is None else key,
            ltc._freqs[j],
            ltc._counters[j],
            ltc._flags[j],
        )
    return header + bytes(cells)


def from_bytes(blob: bytes, cls: Type[LTC] = LTC) -> LTC:
    """Restore an LTC (or subclass ``cls``) from :func:`to_bytes` output.

    Reads both the current v2 images and legacy v1 ``LTC1`` images (whose
    timed-mode accumulator and last timestamp restore as fresh defaults).
    """
    magic = blob[:4]
    if magic == _MAGIC_V2:
        header_struct = _HEADER_V2
    elif magic == _MAGIC_V1:
        header_struct = _HEADER_V1
    else:
        raise ValueError("not an LTC image (bad magic)")
    fields = header_struct.unpack_from(blob, 0)
    (
        _,
        num_buckets,
        bucket_width,
        alpha,
        beta,
        items_per_period,
        de,
        ltr,
        policy_code,
        parity,
        hand,
        scanned,
        acc,
        seed,
    ) = fields[:14]
    if magic == _MAGIC_V2:
        facc, has_ts, last_timestamp_raw = fields[14:]
        last_timestamp: Optional[float] = last_timestamp_raw if has_ts else None
        if last_timestamp is not None and math.isnan(last_timestamp):
            raise ValueError("corrupt LTC image (NaN timestamp)")
    else:
        facc, last_timestamp = 0.0, None
    if policy_code not in _POLICY_NAMES:
        raise ValueError(f"corrupt LTC image (unknown policy code {policy_code})")
    policy = _POLICY_NAMES[policy_code]
    ltc = cls(
        LTCConfig(
            num_buckets=num_buckets,
            bucket_width=bucket_width,
            alpha=alpha,
            beta=beta,
            items_per_period=items_per_period,
            deviation_eliminator=bool(de),
            longtail_replacement=bool(ltr),
            replacement_policy=policy,
            seed=seed,
        )
    )
    offset = header_struct.size
    for j in range(ltc.total_cells):
        key, freq, counter, flags = _CELL.unpack_from(blob, offset)
        offset += _CELL.size
        ltc._keys[j] = None if key == _EMPTY_KEY else key
        ltc._freqs[j] = freq
        ltc._counters[j] = counter
        ltc._flags[j] = flags
    if offset != len(blob):
        raise ValueError("trailing bytes in LTC image")
    _restore_dynamic(
        ltc,
        parity,
        {"hand": hand, "acc": acc, "facc": facc, "scanned_in_period": scanned},
        last_timestamp,
    )
    return ltc
