"""Configuration for the LTC structure."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.metrics.memory import MemoryBudget


@dataclass(frozen=True)
class LTCConfig:
    """All tunables of an LTC instance.

    Args:
        num_buckets: Bucket count ``w``.
        bucket_width: Cells per bucket ``d`` (paper default 8, §V-C).
        alpha: Frequency weight α of the significance function.
        beta: Persistency weight β.
        items_per_period: Arrivals per period ``n`` — drives the CLOCK step
            so the pointer sweeps the whole table exactly once per period
            (count-based periods).  Ignored when driving the structure with
            :meth:`repro.core.ltc.LTC.insert_timed`.
        deviation_eliminator: Enable Optimization I (two flags per cell).
        longtail_replacement: Enable Optimization II (second-smallest − 1
            initialisation on replacement).
        replacement_policy: Overrides ``longtail_replacement`` for ablation
            studies.  ``"longtail"`` = Optimization II; ``"one"`` = the
            basic version's 1/0 initialisation; ``"space-saving"`` = no
            Significance Decrementing at all — a full-bucket miss directly
            replaces the minimum cell and inherits its value + 1 (the
            Space-Saving strategy the paper argues against, §I-C).
        seed: Bucket-hash seed.
        sanitize: Install the runtime invariant checker
            (:mod:`repro.sanitize`) on the built structure.  Debug mode:
            every mutation is validated and violations raise
            :class:`repro.sanitize.SanitizeError` at the mutation site.
            Also enabled globally by ``REPRO_SANITIZE=1``.  Excluded from
            config equality/merge compatibility — a sanitized structure
            checkpoints and merges like an unsanitized one.
        kernel: Which LTC implementation :func:`repro.core.kernels.build_ltc`
            constructs for this config: ``"reference"`` (the paper-faithful
            :class:`repro.core.ltc.LTC`), ``"fast"`` (the hash-indexed
            :class:`repro.core.fast_ltc.FastLTC`) or ``"columnar"`` (the
            numpy struct-of-arrays :class:`repro.core.columnar.ColumnarLTC`)
            or ``"auto"`` (:class:`repro.core.auto.AutoLTC`, which probes
            the stream's clean-chunk rate at runtime and picks between the
            columnar and scalar batch paths with hysteresis).
            All kernels are observably identical (differential-tested);
            excluded from config equality/merge compatibility for the same
            reason as ``sanitize``.
    """

    num_buckets: int
    bucket_width: int = 8
    alpha: float = 1.0
    beta: float = 1.0
    items_per_period: int = 1
    deviation_eliminator: bool = True
    longtail_replacement: bool = True
    replacement_policy: "str | None" = None
    seed: int = 0x17C
    sanitize: bool = field(default=False, compare=False)
    kernel: str = field(default="reference", compare=False)

    def __post_init__(self) -> None:
        if self.num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        if self.bucket_width < 1:
            raise ValueError("bucket_width must be >= 1")
        if not (self.alpha >= 0 and self.beta >= 0):  # also rejects NaN
            raise ValueError("alpha and beta must be non-negative")
        if self.alpha == float("inf") or self.beta == float("inf"):
            raise ValueError("alpha and beta must be finite")
        if self.alpha == 0 and self.beta == 0:
            raise ValueError("alpha and beta cannot both be zero")
        if self.items_per_period < 1:
            raise ValueError("items_per_period must be >= 1")
        if self.replacement_policy not in (None, "longtail", "one", "space-saving"):
            raise ValueError(
                "replacement_policy must be 'longtail', 'one' or 'space-saving'"
            )
        if self.kernel not in ("reference", "fast", "columnar", "auto"):
            raise ValueError(
                "kernel must be 'reference', 'fast', 'columnar' or 'auto'"
            )
        # Normalize the seed to its 64-bit image at construction time.
        # Hashing already reduces modulo 2**64 (splitmix64 masks its
        # input), but the binary checkpoint header stores the masked
        # value — without this, a config built with a negative or
        # >64-bit seed would compare unequal to its own restored
        # checkpoint and `repro.core.merge._check_compatible` would
        # refuse the restore-then-merge flow.
        object.__setattr__(self, "seed", self.seed & 0xFFFFFFFFFFFFFFFF)

    @property
    def effective_replacement_policy(self) -> str:
        """The policy in force (explicit override wins over the boolean)."""
        if self.replacement_policy is not None:
            return self.replacement_policy
        return "longtail" if self.longtail_replacement else "one"

    @property
    def total_cells(self) -> int:
        """Table size ``m = w·d`` (also the number of CLOCK time slots)."""
        return self.num_buckets * self.bucket_width

    @classmethod
    def from_memory(
        cls,
        budget: MemoryBudget,
        items_per_period: int,
        bucket_width: int = 8,
        alpha: float = 1.0,
        beta: float = 1.0,
        **kwargs: Any,
    ) -> "LTCConfig":
        """Size the table for a byte budget (12 bytes per cell, §V-C)."""
        return cls(
            num_buckets=budget.ltc_buckets(bucket_width),
            bucket_width=bucket_width,
            alpha=alpha,
            beta=beta,
            items_per_period=items_per_period,
            **kwargs,
        )

    def with_options(self, **changes: Any) -> "LTCConfig":
        """A copy with the given fields replaced (ablation helper)."""
        return replace(self, **changes)
