"""Arbitrary-key adapter: use any summary with string/bytes identifiers.

Every structure in this library keys on 64-bit integers (the wire format
of the paper's traces).  Real applications have URLs, usernames and
tuples.  :class:`KeyedSummary` wraps any summary: keys are canonicalised
with :func:`repro.hashing.canonical_key` on the way in, and a reverse map
of the *currently interesting* keys (capped) lets ``top_k`` report the
original identifiers back.

The reverse map is an adapter convenience outside the paper's memory
model; its size is capped so a hostile key stream cannot grow it without
bound (evicted mappings simply fall back to reporting the integer key).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.hashing.family import canonical_key
from repro.summaries.base import ItemReport, StreamSummary


class KeyedSummary(StreamSummary):
    """Wrap ``inner`` so it accepts ``str`` / ``bytes`` / ``int`` keys.

    Args:
        inner: Any summary keyed on integers.
        reverse_capacity: Maximum retained original-key mappings (LRU by
            insertion recency).  Size it ≳ the number of distinct keys
            you expect to *report*, not the number you insert.
    """

    def __init__(self, inner: StreamSummary, reverse_capacity: int = 65_536) -> None:
        if reverse_capacity < 1:
            raise ValueError("reverse_capacity must be >= 1")
        self.inner = inner
        self.reverse_capacity = reverse_capacity
        self._original: "OrderedDict[int, Hashable]" = OrderedDict()

    def _intern(self, key: Hashable) -> int:
        item = canonical_key(key)
        existing = self._original.get(item)
        if existing is None:
            if len(self._original) >= self.reverse_capacity:
                self._original.popitem(last=False)
            self._original[item] = key
        else:
            self._original.move_to_end(item)
        return item

    def insert(self, key: Hashable) -> None:
        """Process one arrival of ``key``."""
        self.inner.insert(self._intern(key))

    def insert_many(
        self, keys: Iterable[Hashable], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Keys are interned in arrival order (so the reverse map's LRU
        state matches the per-event path), then the integer batch is
        handed to the wrapped summary's own batched fast path.  A row
        with count 0 is skipped without interning — per-event replay
        never sees it either.
        """
        if counts is None:
            self.inner.insert_many([self._intern(key) for key in keys])
            return
        interned: List[int] = []
        kept: List[int] = []
        for key, count in zip(keys, counts):
            if count < 0:
                raise ValueError("counts must be non-negative")
            if count == 0:
                continue
            interned.append(self._intern(key))
            kept.append(count)
        self.inner.insert_many(interned, kept)

    def end_period(self) -> None:
        """Forwarded period boundary."""
        end_period = getattr(self.inner, "end_period", None)
        if end_period is not None:
            end_period()

    def finalize(self) -> None:
        """Forwarded stream-end flush."""
        finalize = getattr(self.inner, "finalize", None)
        if finalize is not None:
            finalize()

    def query(self, key: Hashable) -> float:
        """Estimate for ``key`` (accepts original or integer form)."""
        return self.inner.query(canonical_key(key))

    def original_key(self, item: int) -> Hashable:
        """Original identifier for an interned integer (or the integer
        itself if its mapping was evicted)."""
        return self._original.get(item, item)

    def top_k(self, k: int) -> List[ItemReport]:
        """Top-k with original identifiers restored where known."""
        return [
            ItemReport(
                item=self.original_key(r.item),
                significance=r.significance,
                frequency=r.frequency,
                persistency=r.persistency,
            )
            for r in self.inner.top_k(k)
        ]
