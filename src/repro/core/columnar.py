"""ColumnarLTC: struct-of-arrays LTC kernel with a vectorized batch path.

:class:`repro.core.fast_ltc.FastLTC` removes the bucket scan from the hit
path but still pays one interpreted iteration per arrival.  This kernel
removes the per-arrival loop itself: the cell state lives in numpy
**columns** (``int64`` frequency / persistency / flag arrays plus a
``uint64`` fingerprint column and a boolean occupancy column), a whole
batch is hashed and probed with array expressions, and the CLOCK sweep is
applied as at most two contiguous array slices per harvest.

Replay identity with the per-event path rests on a commutation argument,
valid exactly when the Deviation Eliminator is on (``set`` and ``harvest``
flags are then distinct bits):

* a **hit** touches only its own cell's frequency and set-flag; a
  **harvest** touches only a cell's harvest-flag and persistency counter —
  disjoint state, so hits commute with harvests;
* misses do not commute *within a bucket* (they evict, reseed, and consult
  bucket minima), so any bucket receiving a miss in the current chunk is
  **dirty**.  Clean buckets receive only hits, their key sets provably
  cannot change inside the chunk, and their hits are aggregated up front
  with one ``bincount``.
* operations on **different buckets** touch disjoint cells, so the dirty
  tail only needs per-bucket order: events targeting different dirty
  buckets may be applied in any interleaving.

The dirty tail is resolved by a **segmented, round-based replay**
(:meth:`ColumnarLTC._replay_segmented`): each dirty bucket gets a FIFO
queue of its pending operations (events, plus the CLOCK sweeps of its
slots at their exact arrival offsets), and one *round* applies every
queue's next operation simultaneously — a vectorized classify
(hit / empty-claim / eviction-candidate), a batched ``argmin``
-significance eviction over the ``(n_buckets, d)`` row view, and
vectorized decrement/flag bookkeeping.  Within-bucket order is preserved,
so cell state stays byte-identical to per-event replay.  Sweeps of clean
buckets commute with every chunk operation and are applied in one bulk
pass; the CLOCK accumulator/hand are finalised in closed form.  When too
few buckets stay active for vectorization to pay (a collision storm on
one bucket, or a lightly dirty chunk), the replay degrades to the scalar
per-event loop, which remains the exact reference for the round kernel.

The batch is processed in fixed-size chunks so dirtiness is a per-chunk
property — on hit-heavy streams almost every chunk is all-clean and runs
entirely in numpy.  Without numpy (guarded import below) or with the
Deviation Eliminator off, the class degrades to plain FastLTC behaviour;
the differential suite in ``tests/test_columnar.py`` pins cell-level
equality against FastLTC and the reference LTC either way.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

try:  # numpy accelerates the batch path; scalar paths work without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from repro.core.cell import CellView
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.hashing.family import splitmix64, splitmix64_array
from repro.summaries.base import ItemReport, expand_counts

#: Events per classification chunk.  Dirtiness (bucket received a miss) is
#: decided per chunk, so smaller chunks keep more of a mixed stream on the
#: vectorized path while larger ones amortise the probe; 4096 balances the
#: two for the bench workloads.
_CHUNK = 4096

#: Minimum dirty-tail size before the segmented round replay engages.
#: Below it, queue construction (argsort + segment bookkeeping) costs more
#: than the scalar loop it replaces — the hit-heavy w=512 bench point has
#: a handful of dirty events per chunk and must stay on the scalar tail.
_SEG_MIN_DIRTY = 64

#: Peel-loop drain threshold: once fewer queues than this still hold
#: pending misses, the per-round numpy overhead exceeds the scalar cost
#: of finishing their queues, so the remainder drains through the
#: memoryview per-event path.  Also the adversarial guard: a collision
#: storm on one bucket never pays for degenerate single-lane rounds.
_SEG_MIN_ACTIVE = 16

_INT64_MAX = (1 << 63) - 1
#: Products like ``total_steps * items_per_period`` must stay inside
#: int64 for the vectorized sweep schedule; beyond this the replay falls
#: back to the (arbitrary-precision) scalar tail.
_SCHEDULE_LIMIT = 1 << 62


class ColumnarLTC(FastLTC):
    """LTC with numpy column storage and a vectorized ``insert_many``.

    Observable behaviour is identical to :class:`FastLTC` (and therefore
    to the reference :class:`repro.core.ltc.LTC`); the columns are pure
    acceleration, checked by the differential suite and, under
    ``REPRO_SANITIZE=1``, by the column-agreement invariant in
    :func:`repro.sanitize.check_ltc`.
    """

    def __init__(self, config: LTCConfig) -> None:
        super().__init__(config)
        #: Per-chunk classification hook ``(span, n_clean, n_dirty)`` —
        #: the auto-kernel probe attaches here; one is-None test per chunk
        #: when unused.
        self._probe: Optional[Callable[[int, int, int], None]] = None
        self._vec = _np is not None
        if self._vec:
            self._columnize()

    # ------------------------------------------------------------- columns
    # reprolint: detached — rebinds columns to numpy storage with identical values
    def _columnize(self) -> None:
        """Adopt numpy column storage for the row arrays and build the
        fingerprint/occupancy mirror of the key list."""
        self._freqs = _np.array(self._freqs, dtype=_np.int64)
        self._counters = _np.array(self._counters, dtype=_np.int64)
        self._flags = _np.frombuffer(bytes(self._flags), dtype=_np.uint8).astype(
            _np.int64
        )
        # Memoryviews over the same buffers: scalar indexed read/write is
        # ~2x cheaper than through the ndarray protocol, which is what the
        # per-event insert() short-circuit and the queue drain ride on.
        self._freq_mv = memoryview(self._freqs)
        self._counter_mv = memoryview(self._counters)
        self._flag_mv = memoryview(self._flags)
        # Cached (w, d) row views of the value columns for the batched
        # argmin eviction (reshape is cheap but not free per miss round).
        self._freqs2 = self._freqs.reshape(self._w, self._d)
        self._counters2 = self._counters.reshape(self._w, self._d)
        self._rebuild_key_columns()

    def _rebuild_key_columns(self) -> None:
        m = self.total_cells
        self._kcol = _np.zeros(m, dtype=_np.uint64)
        self._occ = _np.zeros(m, dtype=bool)
        # Per-bucket (w, d) views share memory with the flat columns; the
        # batch probe gathers whole bucket rows through them.
        self._kcol2 = self._kcol.reshape(self._w, self._d)
        self._occ2 = self._occ.reshape(self._w, self._d)
        for j, key in enumerate(self._keys):
            if key is not None:
                self._occ[j] = True
                try:
                    self._kcol[j] = key
                except (OverflowError, TypeError, ValueError):
                    self._disable_vectorization()
                    return

    # reprolint: detached — drops view aliases only; the backing cell arrays are untouched
    def _disable_vectorization(self) -> None:
        # A key outside the uint64 domain cannot live in the fingerprint
        # column (and masking it would alias another key), so the instance
        # permanently falls back to the scalar FastLTC paths.  clear()
        # re-enables vectorization on the fresh table.
        self._vec = False
        self._kcol = None
        self._occ = None
        self._kcol2 = None
        self._occ2 = None
        self._freq_mv = None
        self._counter_mv = None
        self._flag_mv = None
        self._freqs2 = None
        self._counters2 = None

    def _sync_bucket(self, base: int) -> None:
        """Refresh the key columns for one bucket after a scalar miss."""
        kcol = self._kcol
        occ = self._occ
        for j in range(base, base + self._d):
            key = self._keys[j]
            if key is None:
                occ[j] = False
                kcol[j] = 0
            else:
                occ[j] = True
                try:
                    kcol[j] = key
                except (OverflowError, TypeError, ValueError):
                    self._disable_vectorization()
                    return

    # ----------------------------------------------------------- insertion
    def insert(self, item: int) -> None:
        """Single arrival, short-circuited past the ndarray protocol.

        Matches :meth:`repro.core.ltc.LTC.insert` observable-state-for-
        state; the hit path goes through int64 memoryviews (cheap scalar
        indexing) and the CLOCK advance is inlined so per-event mode costs
        no more than :class:`FastLTC` despite the column mirror.
        """
        if not self._vec:
            super().insert(item)
            return
        if self._obs is not None:
            self._m_inserts.inc()
        slot = self._slot_of.get(item)
        if slot is not None:
            self._freq_mv[slot] += 1
            self._flag_mv[slot] |= self._set_bit
            if self._cell_listener is not None:
                self._cell_listener.cell_touched(slot)
        else:
            self._scalar_miss(item)
        clock = self._clock
        acc = clock._acc + clock.num_cells
        n = clock.items_per_period
        if acc < n:
            clock._acc = acc
            return
        steps = acc // n
        clock._acc = acc - steps * n
        self._harvest_segments(steps)

    def _scalar_miss(self, item: int) -> bool:
        """One miss through the memoryview columns (no CLOCK advance).

        Mirrors ``FastLTC._place_miss`` line for line — same float
        scoring, same tie-breaking, same flag reconciliation — but reads
        and writes the int64 columns through memoryviews and syncs only
        the single touched fingerprint slot, instead of re-deriving the
        whole bucket.  Serves both the per-event ``insert`` short-circuit
        and the segmented replay's queue drain.  Returns ``True`` when
        the bucket's key set changed (claim or eviction), ``False`` for a
        Significance Decrement the incumbent survived — the drain uses
        this to know when cached hit slots go stale.
        """
        if not self._vec:
            # A prior oversized key dropped the column mirror mid-stream
            # (callers may hold stale memoryviews over the still-live
            # numpy buffers); finish through the FastLTC path.
            self._place_miss(item)
            return True
        d = self._d
        base = (splitmix64(item ^ self._seed) % self._w) * d
        keys = self._keys
        fmv = self._freq_mv
        cmv = self._counter_mv
        flmv = self._flag_mv
        listener = self._cell_listener
        empty = -1
        for j in range(base, base + d):
            if keys[j] is None:
                empty = j
                break
        if empty >= 0:  # Free cell: claim it.
            keys[empty] = item
            fmv[empty] = 1
            cmv[empty] = 0
            flmv[empty] = self._set_bit
            self._slot_of[item] = empty
            self._occ[empty] = True
            try:
                self._kcol[empty] = item
            except (OverflowError, TypeError, ValueError):
                self._disable_vectorization()
            if listener is not None:
                listener.cell_touched(empty)
            return True
        alpha, beta = self._alpha, self._beta
        metered = self._obs is not None
        jmin = base
        smin = alpha * fmv[base] + beta * cmv[base]
        for j in range(base + 1, base + d):
            s = alpha * fmv[j] + beta * cmv[j]
            if s < smin:
                smin, jmin = s, j
        if self._policy == "space-saving":
            if metered:
                self._m_evictions.inc()
            old = keys[jmin]
            if old is not None:
                del self._slot_of[old]
            keys[jmin] = item
            fmv[jmin] += 1
            flmv[jmin] = self._set_bit
            self._slot_of[item] = jmin
            try:
                self._kcol[jmin] = item
            except (OverflowError, TypeError, ValueError):
                self._disable_vectorization()
            if listener is not None:
                listener.cell_touched(jmin)
            return True
        if metered:
            self._m_decrements.inc()
        fj = fmv[jmin]
        if cmv[jmin] > 0:
            cmv[jmin] -= 1
        elif fj > 0:
            # Charge the decrement to the oldest pending flag when the
            # counter is empty and the flags cover the whole frequency
            # (see LTC._decrement_smallest).
            bits = flmv[jmin]
            if (bits & 1) + (bits >> 1 & 1) >= fj:
                if bits & self._harvest_bit:
                    flmv[jmin] = bits & ~self._harvest_bit & 0xFF
                else:
                    flmv[jmin] = bits & ~self._set_bit & 0xFF
        if fj > 0:
            fj -= 1
            fmv[jmin] = fj
        if alpha * fj + beta * cmv[jmin] > 0:
            if listener is not None:
                listener.cell_touched(jmin)
            return False
        if self._ltr and d > 1:
            f2 = c2 = None
            for j in range(base, base + d):
                if j == jmin:
                    continue
                fv = fmv[j]
                if f2 is None or fv < f2:
                    f2 = fv
                cv = cmv[j]
                if c2 is None or cv < c2:
                    c2 = cv
            assert f2 is not None and c2 is not None
            f0 = max(f2 - 1, 1)
            c0 = min(max(c2 - 1, 0), f0 - 1)
            if metered:
                self._m_longtail.inc()
        else:
            f0, c0 = 1, 0
        if metered:
            self._m_evictions.inc()
        old = keys[jmin]
        if old is not None:
            del self._slot_of[old]
        keys[jmin] = item
        fmv[jmin] = f0
        cmv[jmin] = c0
        flmv[jmin] = self._set_bit
        self._slot_of[item] = jmin
        try:
            self._kcol[jmin] = item
        except (OverflowError, TypeError, ValueError):
            self._disable_vectorization()
        if listener is not None:
            listener.cell_touched(jmin)
        return True

    def _place_miss(self, item: int) -> None:
        super()._place_miss(item)
        if self._vec:
            base = (splitmix64(item ^ self._seed) % self._w) * self._d
            self._sync_bucket(base)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals through the columnar kernel.

        Replay-identical to :meth:`FastLTC.insert_many` (same cells, same
        CLOCK state, same metrics); see the module docstring for the
        commutation argument.  Falls back to the scalar path without
        numpy, with the Deviation Eliminator off (set and harvest flags
        share a bit and stop commuting), or when the batch contains keys
        outside the uint64 domain.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        if not self._vec or not self._de:
            super().insert_many(items)
            return
        seq: Sequence[int] = (
            items if isinstance(items, (list, tuple)) else list(items)
        )
        try:
            arr = _np.asarray(seq, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            super().insert_many(seq)
            return
        total = len(seq)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        if self._obs is not None:
            self._m_inserts.inc(total)
        if total == 0:
            return
        hashed = splitmix64_array(arr ^ _np.uint64(self._seed))
        w = self._w
        if w & (w - 1) == 0:
            # Power-of-two bucket counts (the common sizing) mask instead
            # of paying the uint64 modulo, which costs ~2x the hash.
            buckets = (hashed & _np.uint64(w - 1)).astype(_np.int64)
        else:
            buckets = (hashed % _np.uint64(w)).astype(_np.int64)
        slots0 = buckets * self._d
        for start in range(0, total, _CHUNK):
            self._ingest_chunk(
                seq, arr, buckets, slots0, start, min(start + _CHUNK, total)
            )

    def _ingest_chunk(
        self,
        seq: Sequence[int],
        arr: Any,
        buckets: Any,
        slots0: Any,
        start: int,
        stop: int,
    ) -> None:
        """Classify and apply one chunk against the current table state."""
        b = buckets[start:stop]
        s0 = slots0[start:stop]
        span = stop - start
        eq, hit = self._probe_chunk(b, arr[start:stop])
        # Per-event hit slots, valid wherever ``hit`` holds — reused by
        # both the clean-hit aggregation and the dirty replay's initial
        # classification (no key set changes between here and there).
        slots = s0 + eq.argmax(axis=1)
        if hit.all():
            # All-hit chunk (the steady state on hit-heavy streams): every
            # event is clean, aggregate with one bincount and advance the
            # CLOCK over the whole span in one go.
            if self._probe is not None:
                self._probe(span, span, 0)
            self._apply_hit_slots(slots)
            self._advance_and_harvest(span)
            return
        # An event is clean iff it hits AND precedes its bucket's first
        # in-chunk miss: nothing can have mutated its bucket's key set by
        # its arrival, so the start-state hit stands.
        misses = _np.flatnonzero(~hit)
        first_miss = _np.full(self._w, span, dtype=_np.int64)
        _np.minimum.at(first_miss, b[misses], misses)
        clean = hit & (_np.arange(span, dtype=_np.int64) < first_miss[b])
        dirty = _np.flatnonzero(~clean)
        if self._probe is not None:
            self._probe(span, span - len(dirty), len(dirty))
        if len(dirty) < span:
            # Clean hits commute with everything in the chunk: aggregate
            # them up front with one bincount per chunk.
            self._apply_hit_slots(slots[clean])
        # Initial dirty-tail classification, straight from the chunk
        # probe: the clean hits just applied cannot change any key set.
        dirty_slots = _np.where(hit[dirty], slots[dirty], _np.int64(-1))
        self._replay_dirty(seq, arr, b, start, span, dirty, dirty_slots)

    def _probe_chunk(self, b: Any, karr: Any) -> Tuple[Any, Any]:
        """Probe one chunk's keys against their bucket rows.

        Row-gather through the (w, d) views: one fancy index per column
        instead of materialising a per-event cell-index matrix.  Returns
        the per-event ``(span, d)`` equality matrix and the hit mask.
        """
        eq = (self._kcol2[b] == karr[:, None]) & self._occ2[b]
        return eq, eq.any(axis=1)

    def _apply_hit_slots(self, slots: Any) -> None:
        """Aggregate a set of hit events (given as slots) in one pass."""
        adds = _np.bincount(slots, minlength=self.total_cells)
        self._freqs += adds
        self._flags[adds > 0] |= self._set_bit
        if self._cell_listener is not None:
            self._cell_listener.cells_touched(_np.flatnonzero(adds).tolist())

    # ------------------------------------------------------- dirty replay
    def _replay_dirty(
        self,
        seq: Sequence[int],
        arr: Any,
        b: Any,
        start: int,
        span: int,
        dirty: Any,
        dirty_slots: Any,
    ) -> None:
        """Replay the dirty tail of one chunk (events at offsets ``dirty``).

        ``dirty_slots`` carries the chunk probe's classification of each
        dirty event against the pre-replay table (slot, or -1 for a miss).
        """
        clock = self._clock
        if (
            len(dirty) >= _SEG_MIN_DIRTY
            and clock.items_per_period * (clock.num_cells + 1) < _SCHEDULE_LIMIT
        ):
            self._replay_segmented(seq, arr, b, start, span, dirty, dirty_slots)
        else:
            self._replay_scalar(seq, start, span, dirty.tolist())

    def _replay_scalar(
        self, seq: Sequence[int], start: int, span: int, dirty: List[int]
    ) -> None:
        """Per-event dirty-tail replay (the segmented kernel's reference).

        Events replay one-by-one in stream order, the CLOCK advanced to
        each event's exact arrival offset (inlined on_arrivals arithmetic
        and hit path, as in FastLTC.insert_many) — hits and misses
        through the memoryview columns, which also serves
        :class:`repro.core.auto.AutoLTC` as its whole-batch fast mode.
        """
        listener = self._cell_listener
        get = self._slot_of.get
        freqs = self._freq_mv
        flags = self._flag_mv
        set_bit = self._set_bit
        miss = self._scalar_miss
        clock = self._clock
        n = clock.items_per_period
        m = clock.num_cells
        acc = clock._acc
        prev = 0
        for k in dirty:
            gap = k - prev
            if gap:
                acc += gap * m
                steps = acc // n
                if steps:
                    acc -= steps * n
                    self._harvest_segments(steps)
            item = seq[start + k]
            slot = get(item)
            if slot is not None:
                freqs[slot] += 1
                flags[slot] |= set_bit
                if listener is not None:
                    listener.cell_touched(slot)
            else:
                miss(item)
            acc += m
            steps = acc // n
            if steps:
                acc -= steps * n
                self._harvest_segments(steps)
            prev = k + 1
        if span > prev:
            acc += (span - prev) * m
            steps = acc // n
            if steps:
                acc -= steps * n
                self._harvest_segments(steps)
        clock._acc = acc

    def _replay_segmented(
        self,
        seq: Sequence[int],
        arr: Any,
        b: Any,
        start: int,
        span: int,
        dirty: Any,
        dirty_slots: Any,
    ) -> None:
        """Segmented, round-based vectorized replay of the dirty tail.

        Builds one FIFO operation queue per dirty bucket — the bucket's
        events, merged with the CLOCK sweeps of its slots at the exact
        arrival offsets the per-event path would take them (a sweep
        triggered by arrival ``k`` lands *after* event ``k``, encoded by
        the ``2k`` / ``2k+1`` order keys) — then resolves the queues round
        by round in :meth:`_run_peels`.  Sweeps of clean buckets commute
        with the whole chunk and are applied in one bulk pass; the CLOCK
        state is finalised in closed form (the accumulator evolves mod
        ``items_per_period`` independently of the sweep cap).
        """
        np = _np
        d = self._d
        clock = self._clock
        n = clock.items_per_period
        m = clock.num_cells
        acc0 = clock._acc
        hand0 = clock.hand
        scanned0 = clock.scanned_in_period
        total_steps = (acc0 + span * m) // n
        if total_steps > m - scanned0:
            total_steps = m - scanned0
        if total_steps > 0:
            t = np.arange(1, total_steps + 1, dtype=np.int64)
            sweep_slots = (hand0 + t - 1) % m
            # Sweep t fires after the arrival at offset ceil((t*n-acc0)/m)-1.
            sweep_offsets = (t * n - acc0 - 1) // m
        else:
            sweep_slots = np.empty(0, dtype=np.int64)
            sweep_offsets = sweep_slots
        eb = b[dirty]
        dirty_bucket = np.zeros(self._w, dtype=bool)
        dirty_bucket[eb] = True
        sweep_bucket = sweep_slots // d
        sweep_is_dirty = dirty_bucket[sweep_bucket]
        if not sweep_is_dirty.all():
            self._sweep_slots(sweep_slots[~sweep_is_dirty])
        # Queue construction: events carry their chunk offset as payload,
        # sweeps carry their slot; lexsort groups by bucket and orders each
        # group by the interleaving key.
        okey = np.concatenate(
            (2 * dirty, 2 * sweep_offsets[sweep_is_dirty] + 1)
        )
        obucket = np.concatenate((eb, sweep_bucket[sweep_is_dirty]))
        opayload = np.concatenate((dirty, sweep_slots[sweep_is_dirty]))
        is_sweep = np.zeros(len(okey), dtype=bool)
        is_sweep[len(dirty):] = True
        oslot = np.concatenate(
            (dirty_slots, np.full(len(okey) - len(dirty), -1, dtype=np.int64))
        )
        order = np.lexsort((okey, obucket))
        qbucket = obucket[order]
        payload = opayload[order]
        sweep_op = is_sweep[order]
        seg_start = np.empty(len(qbucket), dtype=bool)
        seg_start[0] = True
        np.not_equal(qbucket[1:], qbucket[:-1], out=seg_start[1:])
        starts = np.flatnonzero(seg_start)
        ends = np.append(starts[1:], np.int64(len(qbucket)))
        self._run_peels(
            seq, arr, start, qbucket, payload, sweep_op, oslot[order],
            np.cumsum(seg_start) - 1, starts, ends,
        )
        clock._acc = (acc0 + span * m) % n
        clock.hand = (hand0 + total_steps) % m
        clock.scanned_in_period = scanned0 + total_steps

    def _run_peels(
        self,
        seq: Sequence[int],
        arr: Any,
        start: int,
        qbucket: Any,
        payload: Any,
        sweep_op: Any,
        hitslot: Any,
        qid: Any,
        starts: Any,
        ends: Any,
    ) -> None:
        """Resolve the per-bucket queues by peeling hit prefixes.

        Each *peel* round applies, per queue, every operation up to (but
        excluding) the queue's first pending **miss** in one bulk pass —
        hit prefixes are valid against the current table because hits and
        sweeps never change a bucket's key set — then applies one miss per
        queue vectorized (:meth:`_apply_misses`).  Only buckets whose key
        set actually changed (claims, evictions) re-probe their remaining
        events; Significance Decrementing that leaves the incumbent in
        place invalidates nothing.  Rounds are therefore bounded by the
        deepest per-bucket *miss* chain, not the deepest event chain, and
        the bulk passes run at full batch width.  When fewer than
        ``_SEG_MIN_ACTIVE`` queues still hold misses, the survivors drain
        through the scalar per-event machinery (which keeps metrics and
        listener notifications exact).
        """
        np = _np
        nops = len(payload)
        nq = len(starts)
        pos = np.arange(nops, dtype=np.int64)
        is_event = ~sweep_op
        # ``hitslot``: per event, the slot its key occupies under the
        # *current* table (-1 = miss), seeded from the chunk probe.  Sweep
        # entries stay -1 but are masked out by ``is_event`` wherever
        # pending misses are collected.
        bucket_of_queue = qbucket[starts]
        # ``live`` holds the (ascending) indices of ops not yet applied;
        # every peel removes a strict per-queue prefix, so each queue's
        # next pending op is simply its minimum surviving index.  After
        # the first round the array shrinks to the contended tail and the
        # per-peel bookkeeping cost follows it down.
        live = pos
        first_miss = np.empty(nq, dtype=np.int64)
        cur = ends
        while True:
            lq = qid[live]
            lp = live[is_event[live] & (hitslot[live] < 0)]
            if len(lp) == 0:
                self._flush_ops(live, payload, sweep_op, hitslot)
                break
            # Ops are ordered by queue, so ``qid[lp]`` is non-decreasing
            # and each run's first element is that queue's earliest miss.
            fq = qid[lp]
            head = np.ones(len(fq), dtype=bool)
            np.not_equal(fq[1:], fq[:-1], out=head[1:])
            first_miss[:] = nops
            first_miss[fq[head]] = lp[head]
            has_miss = first_miss < nops
            if int(np.count_nonzero(has_miss)) < _SEG_MIN_ACTIVE:
                # Too few lanes to pay for vectorized miss resolution:
                # flush the miss-free queues whole, drain the rest scalar.
                keep = has_miss[lq]
                self._flush_ops(live[~keep], payload, sweep_op, hitslot)
                live = live[keep]
                cur = ends.copy()
                if len(live):
                    vq = qid[live]
                    vh = np.ones(len(vq), dtype=bool)
                    np.not_equal(vq[1:], vq[:-1], out=vh[1:])
                    cur[vq[vh]] = live[vh]
                break
            # Miss-free queues get bound=nops, i.e. flush everything.
            bound = np.where(has_miss, first_miss, np.int64(nops))
            fmask = live < bound[lq]
            self._flush_ops(live[fmask], payload, sweep_op, hitslot)
            live = live[~fmask]
            midx = first_miss[has_miss]
            changed = self._apply_misses(
                seq, arr, start, payload[midx], bucket_of_queue[has_miss]
            )
            # The applied misses are exactly each queue's minimum live op.
            live = live[live != first_miss[qid[live]]]
            if changed.any():
                # Re-probe the remaining events of key-changed buckets: a
                # claim/eviction can flip later same-bucket events either
                # way (miss→hit for the installed key, hit→miss for the
                # evicted one).
                changed_q = np.zeros(nq, dtype=bool)
                changed_q[np.flatnonzero(has_miss)[changed]] = True
                rp = live[is_event[live] & changed_q[qid[live]]]
                if len(rp):
                    self._probe_ops(rp, qbucket, payload, arr, start, hitslot)
        # Scalar drain of the surviving queues: per-bucket order is all
        # that matters, so each queue finishes independently through the
        # memoryview per-event machinery.
        rest = np.flatnonzero(cur < ends)
        if len(rest):
            get = self._slot_of.get
            fmv = self._freq_mv
            flmv = self._flag_mv
            set_bit = self._set_bit
            miss = self._scalar_miss
            harvest = self._drain_harvest
            listener = self._cell_listener
            cur_l = cur.tolist()
            ends_l = ends.tolist()
            pay_l = payload.tolist()
            sw_l = sweep_op.tolist()
            hs_l = hitslot.tolist()
            for q in rest.tolist():
                # ``hitslot`` is maintained current for every unapplied
                # op, so the drain can trust it until this queue's first
                # key-set change; after that, fall back to dict lookups.
                fresh = True
                for p in range(cur_l[q], ends_l[q]):
                    if sw_l[p]:
                        harvest(pay_l[p])
                    elif fresh:
                        slot = hs_l[p]
                        if slot >= 0:
                            fmv[slot] += 1
                            flmv[slot] |= set_bit
                            if listener is not None:
                                listener.cell_touched(slot)
                        else:
                            fresh = not miss(seq[start + pay_l[p]])
                    else:
                        item = seq[start + pay_l[p]]
                        slot2 = get(item)
                        if slot2 is not None:
                            fmv[slot2] += 1
                            flmv[slot2] |= set_bit
                            if listener is not None:
                                listener.cell_touched(slot2)
                        else:
                            miss(item)

    def _drain_harvest(self, slot: int) -> None:
        """CLOCK scan of one cell through the memoryview columns.

        Mirrors ``LTC._harvest`` minus the pointer bookkeeping — the
        segmented replay schedules sweeps itself.
        """
        flmv = self._flag_mv
        bits = flmv[slot]
        if bits & self._harvest_bit:
            flmv[slot] = bits & ~self._harvest_bit & 0xFF
            if self._keys[slot] is not None:
                self._counter_mv[slot] += 1
                if self._obs is not None:
                    self._m_harvests.inc()
                if self._cell_listener is not None:
                    self._cell_listener.cell_touched(slot)

    def _probe_ops(
        self,
        idxs: Any,
        qbucket: Any,
        payload: Any,
        arr: Any,
        start: int,
        hitslot: Any,
    ) -> None:
        """Classify event ops against the current table into ``hitslot``."""
        np = _np
        bk = qbucket[idxs]
        keys = arr[start + payload[idxs]]
        eqr = (self._kcol2[bk] == keys[:, None]) & self._occ2[bk]
        hm = eqr.any(axis=1)
        hitslot[idxs] = np.where(
            hm, bk * self._d + eqr.argmax(axis=1), np.int64(-1)
        )

    def _flush_ops(
        self, idxs: Any, payload: Any, sweep_op: Any, hitslot: Any
    ) -> None:
        """Bulk-apply a set of hit events and sweeps (no misses).

        Hits commute with hits (frequency adds and identical set-bit OR)
        and with sweeps (disjoint cell state), so one ``bincount``
        aggregation and one sweep pass apply the whole set exactly.
        """
        if len(idxs) == 0:
            return
        np = _np
        sw = sweep_op[idxs]
        if sw.any():
            self._sweep_slots(payload[idxs[sw]])
            idxs = idxs[~sw]
            if len(idxs) == 0:
                return
        adds = np.bincount(hitslot[idxs], minlength=self.total_cells)
        self._freqs += adds
        self._flags[adds > 0] |= self._set_bit
        if self._cell_listener is not None:
            self._cell_listener.cells_touched(np.flatnonzero(adds).tolist())

    def _apply_misses(
        self, seq: Sequence[int], arr: Any, start: int, koff: Any, ebk: Any
    ) -> Any:
        """Apply one miss per bucket (all ``ebk`` distinct), vectorized.

        Mirrors ``FastLTC._place_miss`` lane for lane: empty-cell claim,
        else Significance Decrementing with the batched argmin eviction.
        Distinct buckets mean the slot-index arrays are duplicate-free, so
        plain fancy writes are exact.  Returns the per-lane mask of
        buckets whose **key set** changed (claim or eviction) — the only
        ones whose pending classifications need re-probing.
        """
        np = _np
        d = self._d
        freqs = self._freqs
        counters = self._counters
        flags = self._flags
        kcol = self._kcol
        occ = self._occ
        keys = self._keys
        slot_of = self._slot_of
        set_bit = self._set_bit
        listener = self._cell_listener
        metered = self._obs is not None
        changed = np.zeros(len(ebk), dtype=bool)
        rows_o = self._occ2[ebk]
        has_empty = ~rows_o.all(axis=1)
        if has_empty.any():
            crow = np.flatnonzero(has_empty)
            # First free cell, as in the scalar scan.
            cslot = ebk[crow] * d + (~rows_o[crow]).argmax(axis=1)
            coff = koff[crow]
            freqs[cslot] = 1
            counters[cslot] = 0
            flags[cslot] = set_bit
            occ[cslot] = True
            kcol[cslot] = arr[start + coff]
            changed[crow] = True
            for s, k in zip(cslot.tolist(), coff.tolist()):
                item = seq[start + k]
                keys[s] = item
                slot_of[item] = s
            if listener is not None:
                listener.cells_touched(cslot.tolist())
        if has_empty.all():
            return changed
        frow = np.flatnonzero(~has_empty)
        fbk = ebk[frow]
        foff = koff[frow]
        rows_f = self._freqs2[fbk]
        rows_c = self._counters2[fbk]
        alpha, beta = self._alpha, self._beta
        # argmin returns the first minimum — the same tie-breaking as the
        # scalar strict-< scan; float64 scoring matches the scalar
        # arithmetic bit for bit.
        jmin = (alpha * rows_f + beta * rows_c).argmin(axis=1)
        slot = fbk * d + jmin
        if self._policy == "space-saving":
            if metered:
                self._m_evictions.inc(len(slot))
            freqs[slot] += 1
            flags[slot] = set_bit
            kcol[slot] = arr[start + foff]
            changed[frow] = True
            for s, k in zip(slot.tolist(), foff.tolist()):
                item = seq[start + k]
                old = keys[s]
                if old is not None:
                    del slot_of[old]
                keys[s] = item
                slot_of[item] = s
            if listener is not None:
                listener.cells_touched(slot.tolist())
            return changed
        if metered:
            self._m_decrements.inc(len(slot))
        hb = self._harvest_bit
        fj = freqs[slot]
        cj = counters[slot]
        has_c = cj > 0
        counters[slot[has_c]] = cj[has_c] - 1
        pend = ~has_c & (fj > 0)
        if pend.any():
            pslot = slot[pend]
            pbits = flags[pslot]
            covered = ((pbits & 1) + ((pbits >> 1) & 1)) >= fj[pend]
            hclear = covered & ((pbits & hb) != 0)
            sclear = covered & ~hclear
            nbits = pbits.copy()
            nbits[hclear] &= ~hb & 0xFF
            nbits[sclear] &= ~set_bit & 0xFF
            flags[pslot] = nbits
        fpos = fj > 0
        freqs[slot[fpos]] = fj[fpos] - 1
        dead = ~(alpha * freqs[slot] + beta * counters[slot] > 0)
        if listener is not None:
            listener.cells_touched(slot.tolist())
        if not dead.any():
            return changed
        drow = np.flatnonzero(dead)
        dslot = slot[drow]
        doff = foff[drow]
        if metered:
            self._m_evictions.inc(len(drow))
        if self._ltr and d > 1:
            if metered:
                self._m_longtail.inc(len(drow))
            # Second-smallest per row with the evicted cell masked out;
            # only that cell changed since the gather, and it is excluded,
            # so the pre-decrement rows are exact for the rest.
            sub = np.arange(len(drow))
            jm = jmin[drow]
            masked_f = rows_f[drow].copy()
            masked_c = rows_c[drow].copy()
            masked_f[sub, jm] = _INT64_MAX
            masked_c[sub, jm] = _INT64_MAX
            f0 = np.maximum(masked_f.min(axis=1) - 1, 1)
            c0 = np.minimum(np.maximum(masked_c.min(axis=1) - 1, 0), f0 - 1)
        else:
            f0 = np.ones(len(drow), dtype=np.int64)
            c0 = np.zeros(len(drow), dtype=np.int64)
        freqs[dslot] = f0
        counters[dslot] = c0
        flags[dslot] = set_bit
        kcol[dslot] = arr[start + doff]
        changed[frow[drow]] = True
        for s, k in zip(dslot.tolist(), doff.tolist()):
            item = seq[start + k]
            old = keys[s]
            if old is not None:
                del slot_of[old]
            keys[s] = item
            slot_of[item] = s
        # The cells_touched above fired before the eviction writes; the
        # hooks contract requires the listener to see the post-eviction
        # state (key replacement included), so touch the evicted slots
        # again now that their columns are final.
        if listener is not None:
            listener.cells_touched(dslot.tolist())
        return changed

    def _sweep_slots(self, slots: Any) -> None:
        """Apply the CLOCK sweep to an explicit (duplicate-free) slot set.

        The harvest itself, without pointer arithmetic — the segmented
        replay schedules sweeps itself and finalises the CLOCK in closed
        form.  A set harvest-flag implies an occupied cell (flags are only
        ever set by hits/claims), matching ``_harvest_segments``.
        """
        if len(slots) == 0:
            return
        flags = self._flags
        bits = flags[slots]
        hm = (bits & self._harvest_bit) != 0
        if not hm.any():
            return
        hs = slots[hm]
        self._counters[hs] += 1
        flags[hs] = bits[hm] & (~self._harvest_bit & 0xFF)
        if self._obs is not None:
            self._m_harvests.inc(int(hm.sum()))
        if self._cell_listener is not None:
            self._cell_listener.cells_touched(hs.tolist())

    # ----------------------------------------------------------- harvesting
    def _advance_and_harvest(self, count: int) -> None:
        """Advance the CLOCK by ``count`` arrivals, harvesting as slices.

        The accumulator arithmetic inlines
        :meth:`repro.core.clock.ClockPointer.on_arrivals`; the swept slot
        range is applied to the flag/counter columns by
        :meth:`_harvest_segments` instead of a per-slot loop.
        """
        clock = self._clock
        acc = clock._acc + count * clock.num_cells
        steps = acc // clock.items_per_period
        clock._acc = acc - steps * clock.items_per_period
        if steps:
            self._harvest_segments(steps)

    def _harvest_segments(self, steps: int) -> None:
        """Sweep ``steps`` slots from the hand as ≤ 2 contiguous slices."""
        clock = self._clock
        m = clock.num_cells
        steps = min(steps, m - clock.scanned_in_period)
        if steps <= 0:
            return
        if steps <= 8:
            # Array-slice overhead dwarfs a handful of scalar probes.
            for slot in clock._take(steps):
                self._harvest(slot)
            return
        hand = clock.hand
        hb = self._harvest_bit
        first = min(steps, m - hand)
        flags = self._flags
        counters = self._counters
        listener = self._cell_listener
        harvested = 0
        for a, b in ((hand, hand + first), (0, steps - first)):
            if b <= a:
                continue
            seg = flags[a:b]
            mask = (seg & hb) != 0
            if mask.any():
                counters[a:b][mask] += 1
                seg &= ~hb
                harvested += int(mask.sum())
                if listener is not None:
                    listener.cells_touched((a + _np.flatnonzero(mask)).tolist())
        clock.hand = (hand + steps) % m
        clock.scanned_in_period += steps
        if harvested and self._obs is not None:
            self._m_harvests.inc(harvested)

    # --------------------------------------------------------------- queries
    # The numpy columns double as the row storage, so the inherited read
    # paths would hand numpy scalars (``np.int64`` / ``np.float64``) to
    # callers — breaking e.g. ``json.dumps`` of a report.  Coerce back to
    # Python scalars at the public read boundary.
    def estimate(self, item: int) -> Tuple[int, int]:
        f, p = super().estimate(item)
        return int(f), int(p)

    def query(self, item: int) -> float:
        return float(super().query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        return [
            r._replace(significance=float(r.significance))
            for r in super().top_k(k)
        ]

    def cells(self) -> Iterator[CellView]:
        for cv in super().cells():
            yield cv._replace(
                frequency=int(cv.frequency), persistency=int(cv.persistency)
            )

    # ------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        """Reset the structure (re-enabling vectorization) to fresh state."""
        super().clear()
        self._vec = _np is not None
        if self._vec:
            self._columnize()

    def _reindex(self) -> None:
        """Rebuild the item→slot index and the key columns (restore path).

        The serializer fills the row arrays element-wise (which works on
        numpy columns), then calls this hook to refresh the derived state.
        """
        super()._reindex()
        if self._vec:
            self._rebuild_key_columns()
