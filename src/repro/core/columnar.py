"""ColumnarLTC: struct-of-arrays LTC kernel with a vectorized batch path.

:class:`repro.core.fast_ltc.FastLTC` removes the bucket scan from the hit
path but still pays one interpreted iteration per arrival.  This kernel
removes the per-arrival loop itself for the common case: the cell state
lives in numpy **columns** (``int64`` frequency / persistency / flag
arrays plus a ``uint64`` fingerprint column and a boolean occupancy
column), a whole batch is hashed and probed with array expressions, and
the CLOCK sweep is applied as at most two contiguous array slices per
harvest (wrap-around splits the ``hand → hand+steps`` range in two).

Replay identity with the per-event path rests on a commutation argument,
valid exactly when the Deviation Eliminator is on (``set`` and ``harvest``
flags are then distinct bits):

* a **hit** touches only its own cell's frequency and set-flag; a
  **harvest** touches only a cell's harvest-flag and persistency counter —
  disjoint state, so hits commute with harvests;
* misses do not commute (they evict, reseed, and consult bucket minima),
  so any bucket receiving a miss in the current chunk is **dirty**: every
  event targeting a dirty bucket is replayed one-by-one in stream order,
  interleaved with the CLOCK schedule at exactly the arrival offsets the
  per-event path would use.  Clean buckets receive only hits, their key
  sets provably cannot change inside the chunk, and their hits are
  aggregated up front with one ``bincount``.

The batch is processed in fixed-size chunks so dirtiness is a per-chunk
property — on hit-heavy streams almost every chunk is all-clean and runs
entirely in numpy.  Without numpy (guarded import below) or with the
Deviation Eliminator off, the class degrades to plain FastLTC behaviour;
the differential suite in ``tests/test_columnar.py`` pins cell-level
equality against FastLTC and the reference LTC either way.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

try:  # numpy accelerates the batch path; scalar paths work without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

from repro.core.cell import CellView
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.hashing.family import splitmix64, splitmix64_array
from repro.summaries.base import ItemReport, expand_counts

#: Events per classification chunk.  Dirtiness (bucket received a miss) is
#: decided per chunk, so smaller chunks keep more of a mixed stream on the
#: vectorized path while larger ones amortise the probe; 4096 balances the
#: two for the bench workloads.
_CHUNK = 4096


class ColumnarLTC(FastLTC):
    """LTC with numpy column storage and a vectorized ``insert_many``.

    Observable behaviour is identical to :class:`FastLTC` (and therefore
    to the reference :class:`repro.core.ltc.LTC`); the columns are pure
    acceleration, checked by the differential suite and, under
    ``REPRO_SANITIZE=1``, by the column-agreement invariant in
    :func:`repro.sanitize.check_ltc`.
    """

    def __init__(self, config: LTCConfig) -> None:
        super().__init__(config)
        self._vec = _np is not None
        if self._vec:
            self._columnize()

    # ------------------------------------------------------------- columns
    def _columnize(self) -> None:
        """Adopt numpy column storage for the row arrays and build the
        fingerprint/occupancy mirror of the key list."""
        self._freqs = _np.array(self._freqs, dtype=_np.int64)
        self._counters = _np.array(self._counters, dtype=_np.int64)
        self._flags = _np.frombuffer(bytes(self._flags), dtype=_np.uint8).astype(
            _np.int64
        )
        self._rebuild_key_columns()

    def _rebuild_key_columns(self) -> None:
        m = self.total_cells
        self._kcol = _np.zeros(m, dtype=_np.uint64)
        self._occ = _np.zeros(m, dtype=bool)
        # Per-bucket (w, d) views share memory with the flat columns; the
        # batch probe gathers whole bucket rows through them.
        self._kcol2 = self._kcol.reshape(self._w, self._d)
        self._occ2 = self._occ.reshape(self._w, self._d)
        for j, key in enumerate(self._keys):
            if key is not None:
                self._occ[j] = True
                try:
                    self._kcol[j] = key
                except (OverflowError, TypeError, ValueError):
                    self._disable_vectorization()
                    return

    def _disable_vectorization(self) -> None:
        # A key outside the uint64 domain cannot live in the fingerprint
        # column (and masking it would alias another key), so the instance
        # permanently falls back to the scalar FastLTC paths.  clear()
        # re-enables vectorization on the fresh table.
        self._vec = False
        self._kcol = None
        self._occ = None
        self._kcol2 = None
        self._occ2 = None

    def _sync_bucket(self, base: int) -> None:
        """Refresh the key columns for one bucket after a scalar miss."""
        kcol = self._kcol
        occ = self._occ
        for j in range(base, base + self._d):
            key = self._keys[j]
            if key is None:
                occ[j] = False
                kcol[j] = 0
            else:
                occ[j] = True
                try:
                    kcol[j] = key
                except (OverflowError, TypeError, ValueError):
                    self._disable_vectorization()
                    return

    # ----------------------------------------------------------- insertion
    def _place_miss(self, item: int) -> None:
        super()._place_miss(item)
        if self._vec:
            base = (splitmix64(item ^ self._seed) % self._w) * self._d
            self._sync_bucket(base)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals through the columnar kernel.

        Replay-identical to :meth:`FastLTC.insert_many` (same cells, same
        CLOCK state, same metrics); see the module docstring for the
        commutation argument.  Falls back to the scalar path without
        numpy, with the Deviation Eliminator off (set and harvest flags
        share a bit and stop commuting), or when the batch contains keys
        outside the uint64 domain.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        if not self._vec or not self._de:
            super().insert_many(items)
            return
        seq: Sequence[int] = (
            items if isinstance(items, (list, tuple)) else list(items)
        )
        try:
            arr = _np.asarray(seq, dtype=_np.uint64)
        except (OverflowError, TypeError, ValueError):
            super().insert_many(seq)
            return
        total = len(seq)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        if self._obs is not None:
            self._m_inserts.inc(total)
        if total == 0:
            return
        hashed = splitmix64_array(arr ^ _np.uint64(self._seed))
        w = self._w
        if w & (w - 1) == 0:
            # Power-of-two bucket counts (the common sizing) mask instead
            # of paying the uint64 modulo, which costs ~2x the hash.
            buckets = (hashed & _np.uint64(w - 1)).astype(_np.int64)
        else:
            buckets = (hashed % _np.uint64(w)).astype(_np.int64)
        slots0 = buckets * self._d
        for start in range(0, total, _CHUNK):
            self._ingest_chunk(
                seq, arr, buckets, slots0, start, min(start + _CHUNK, total)
            )

    def _ingest_chunk(
        self,
        seq: Sequence[int],
        arr: Any,
        buckets: Any,
        slots0: Any,
        start: int,
        stop: int,
    ) -> None:
        """Classify and apply one chunk against the current table state."""
        b = buckets[start:stop]
        s0 = slots0[start:stop]
        span = stop - start
        # Row-gather through the (w, d) views: one fancy index per column
        # instead of materialising a per-event cell-index matrix.
        eq = (self._kcol2[b] == arr[start:stop, None]) & self._occ2[b]
        hit = eq.any(axis=1)
        listener = self._cell_listener
        if hit.all():
            # All-hit chunk (the steady state on hit-heavy streams): every
            # event is clean, aggregate with one bincount and advance the
            # CLOCK over the whole span in one go.
            adds = _np.bincount(
                s0 + eq.argmax(axis=1), minlength=self.total_cells
            )
            self._freqs += adds
            self._flags[adds > 0] |= self._set_bit
            if listener is not None:
                listener.cells_touched(_np.flatnonzero(adds).tolist())
            self._advance_and_harvest(span)
            return
        # An event is clean iff it hits AND precedes its bucket's first
        # in-chunk miss: nothing can have mutated its bucket's key set by
        # its arrival, so the start-state hit stands.
        misses = _np.flatnonzero(~hit)
        first_miss = _np.full(self._w, span, dtype=_np.int64)
        _np.minimum.at(first_miss, b[misses], misses)
        clean = hit & (_np.arange(span, dtype=_np.int64) < first_miss[b])
        if clean.any():
            # Clean hits commute with everything in the chunk: aggregate
            # them up front with one bincount per chunk.
            adds = _np.bincount(
                (s0 + eq.argmax(axis=1))[clean], minlength=self.total_cells
            )
            self._freqs += adds
            self._flags[adds > 0] |= self._set_bit
            if listener is not None:
                listener.cells_touched(_np.flatnonzero(adds).tolist())
        # Remaining events replay one-by-one in stream order, the CLOCK
        # advanced to each event's exact arrival offset (inlined
        # on_arrivals arithmetic and hit path, as in FastLTC.insert_many).
        get = self._slot_of.get
        freqs = self._freqs
        flags = self._flags
        set_bit = self._set_bit
        miss = self._place_miss
        clock = self._clock
        n = clock.items_per_period
        m = clock.num_cells
        acc = clock._acc
        prev = 0
        for k in _np.flatnonzero(~clean).tolist():
            gap = k - prev
            if gap:
                acc += gap * m
                steps = acc // n
                if steps:
                    acc -= steps * n
                    self._harvest_segments(steps)
            item = seq[start + k]
            slot = get(item)
            if slot is not None:
                freqs[slot] += 1
                flags[slot] |= set_bit
                if listener is not None:
                    listener.cell_touched(slot)
            else:
                miss(item)
            acc += m
            steps = acc // n
            if steps:
                acc -= steps * n
                self._harvest_segments(steps)
            prev = k + 1
        if span > prev:
            acc += (span - prev) * m
            steps = acc // n
            if steps:
                acc -= steps * n
                self._harvest_segments(steps)
        clock._acc = acc

    # ----------------------------------------------------------- harvesting
    def _advance_and_harvest(self, count: int) -> None:
        """Advance the CLOCK by ``count`` arrivals, harvesting as slices.

        The accumulator arithmetic inlines
        :meth:`repro.core.clock.ClockPointer.on_arrivals`; the swept slot
        range is applied to the flag/counter columns by
        :meth:`_harvest_segments` instead of a per-slot loop.
        """
        clock = self._clock
        acc = clock._acc + count * clock.num_cells
        steps = acc // clock.items_per_period
        clock._acc = acc - steps * clock.items_per_period
        if steps:
            self._harvest_segments(steps)

    def _harvest_segments(self, steps: int) -> None:
        """Sweep ``steps`` slots from the hand as ≤ 2 contiguous slices."""
        clock = self._clock
        m = clock.num_cells
        steps = min(steps, m - clock.scanned_in_period)
        if steps <= 0:
            return
        if steps <= 8:
            # Array-slice overhead dwarfs a handful of scalar probes.
            for slot in clock._take(steps):
                self._harvest(slot)
            return
        hand = clock.hand
        hb = self._harvest_bit
        first = min(steps, m - hand)
        flags = self._flags
        counters = self._counters
        listener = self._cell_listener
        harvested = 0
        for a, b in ((hand, hand + first), (0, steps - first)):
            if b <= a:
                continue
            seg = flags[a:b]
            mask = (seg & hb) != 0
            if mask.any():
                counters[a:b][mask] += 1
                seg &= ~hb
                harvested += int(mask.sum())
                if listener is not None:
                    listener.cells_touched((a + _np.flatnonzero(mask)).tolist())
        clock.hand = (hand + steps) % m
        clock.scanned_in_period += steps
        if harvested and self._obs is not None:
            self._m_harvests.inc(harvested)

    # --------------------------------------------------------------- queries
    # The numpy columns double as the row storage, so the inherited read
    # paths would hand numpy scalars (``np.int64`` / ``np.float64``) to
    # callers — breaking e.g. ``json.dumps`` of a report.  Coerce back to
    # Python scalars at the public read boundary.
    def estimate(self, item: int) -> Tuple[int, int]:
        f, p = super().estimate(item)
        return int(f), int(p)

    def query(self, item: int) -> float:
        return float(super().query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        return [
            r._replace(significance=float(r.significance))
            for r in super().top_k(k)
        ]

    def cells(self) -> Iterator[CellView]:
        for cv in super().cells():
            yield cv._replace(
                frequency=int(cv.frequency), persistency=int(cv.persistency)
            )

    # ------------------------------------------------------------- lifecycle
    def clear(self) -> None:
        """Reset the structure (re-enabling vectorization) to fresh state."""
        super().clear()
        self._vec = _np is not None
        if self._vec:
            self._columnize()

    def _reindex(self) -> None:
        """Rebuild the item→slot index and the key columns (restore path).

        The serializer fills the row arrays element-wise (which works on
        numpy columns), then calls this hook to refresh the derived state.
        """
        super()._reindex()
        if self._vec:
            self._rebuild_key_columns()
