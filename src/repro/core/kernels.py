"""Kernel selection: build the LTC implementation a config asks for.

Three interchangeable kernels implement the same observable structure
(differential-tested cell-for-cell against each other):

* ``"reference"`` — :class:`repro.core.ltc.LTC`, the paper-faithful
  implementation whose per-cell layout matches the 12-byte accounting;
  accuracy experiments use this one.
* ``"fast"`` — :class:`repro.core.fast_ltc.FastLTC`, hash-indexed O(1)
  hit path.
* ``"columnar"`` — :class:`repro.core.columnar.ColumnarLTC`, numpy
  struct-of-arrays storage with a vectorized batch path (degrades to
  FastLTC behaviour without numpy).
* ``"auto"`` — :class:`repro.core.auto.AutoLTC`, the columnar kernel
  with a free occupancy/clean-rate probe that switches to scalar batch
  replay (with hysteresis, at period boundaries only) when the workload
  sits in the contended regime where FastLTC-style ingest wins.

Call sites that build an LTC from a config (CLI, experiment factories,
distributed coordinators/workers) go through :func:`build_ltc` so the
``LTCConfig.kernel`` field selects the implementation everywhere.
"""

from __future__ import annotations

from typing import Dict, Type

from repro.core.auto import AutoLTC
from repro.core.columnar import ColumnarLTC
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC

KERNELS: Dict[str, Type[LTC]] = {
    "reference": LTC,
    "fast": FastLTC,
    "columnar": ColumnarLTC,
    "auto": AutoLTC,
}


def build_ltc(config: LTCConfig) -> LTC:
    """Construct the LTC kernel selected by ``config.kernel``."""
    return KERNELS[config.kernel](config)
