"""Sliding-window LTC (extension): significance over the last W periods.

The paper defines persistency over the whole stream.  Long-running
deployments usually care about the *recent* stream — a flow that was
persistent last month but silent today should decay.  This extension
replaces each cell's persistency counter with a W-bit presence ring:

* bit 0 of the ring is the current period's presence flag;
* at every period boundary the ring shifts left, dropping the bit that
  falls out of the window;
* windowed persistency = popcount(ring) — the number of the last W
  periods in which the item appeared — and significance becomes
  ``α·f_w + β·popcount(ring)`` where the frequency is likewise decayed
  geometrically (a practical stand-in for exact windowed counts, which
  would need per-period frequency storage).

The CLOCK machinery is unnecessary here: the ring *is* per-period
presence, so there is no harvesting deviation by construction.  Memory:
W bits replace the 32-bit counter + flags, so W ≤ 32 keeps the paper's
12-byte cell.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence, Tuple

from repro import obs, sanitize
from repro.hashing.family import splitmix64
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts


def _popcount(x: int) -> int:
    return bin(x).count("1")


class WindowedLTC(StreamSummary):
    """Top-k significant items over a sliding window of W periods.

    Args:
        num_buckets: Bucket count ``w``.
        window: Window length ``W`` in periods (≤ 32 to keep the 12-byte
            cell of the memory model).
        bucket_width: Cells per bucket ``d``.
        alpha: Weight of the (decayed) frequency.
        beta: Weight of the windowed persistency.
        decay: Per-period multiplier applied to frequencies (defaults to
            ``1 − 1/W`` so frequency mass has roughly the window's
            horizon).
        seed: Bucket-hash seed.
    """

    def __init__(
        self,
        num_buckets: int,
        window: int,
        bucket_width: int = 8,
        alpha: float = 1.0,
        beta: float = 1.0,
        decay: Optional[float] = None,
        seed: int = 0x17C,
    ) -> None:
        if num_buckets < 1 or bucket_width < 1:
            raise ValueError("num_buckets and bucket_width must be >= 1")
        if not 1 <= window <= 32:
            raise ValueError("window must be in [1, 32]")
        if alpha < 0 or beta < 0 or (alpha == 0 and beta == 0):
            raise ValueError("invalid significance weights")
        self.num_buckets = num_buckets
        self.bucket_width = bucket_width
        self.window = window
        self.alpha = alpha
        self.beta = beta
        self.decay = decay if decay is not None else 1.0 - 1.0 / window
        if not 0.0 <= self.decay <= 1.0:
            raise ValueError("decay must be in [0, 1]")
        self._seed = splitmix64(seed)
        m = num_buckets * bucket_width
        self._keys: List[Optional[int]] = [None] * m
        self._freqs: List[float] = [0.0] * m
        self._rings: List[int] = [0] * m
        self._ring_mask = (1 << window) - 1
        self._m_batch = obs.batch_size_histogram(type(self).__name__)
        if sanitize.env_enabled():
            sanitize.install_windowed(self)

    @classmethod
    def from_memory(
        cls, budget: MemoryBudget, window: int, bucket_width: int = 8, **kwargs: Any
    ) -> "WindowedLTC":
        """Size for a byte budget (12 bytes/cell as in the base LTC)."""
        return cls(
            num_buckets=budget.ltc_buckets(bucket_width),
            window=window,
            bucket_width=bucket_width,
            **kwargs,
        )

    # ------------------------------------------------------------- updates
    def _sig(self, j: int) -> float:
        return self.alpha * self._freqs[j] + self.beta * _popcount(self._rings[j])

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        d = self.bucket_width
        base = (splitmix64(item ^ self._seed) % self.num_buckets) * d
        keys = self._keys
        empty = -1
        for j in range(base, base + d):
            key = keys[j]
            if key == item:
                self._freqs[j] += 1.0
                self._rings[j] |= 1
                return
            if key is None and empty < 0:
                empty = j
        if empty >= 0:
            keys[empty] = item
            self._freqs[empty] = 1.0
            self._rings[empty] = 1
            return
        # Significance decrementing, windowed flavour: shrink the victim's
        # frequency by 1 and clear its oldest presence bit.
        jmin = min(range(base, base + d), key=self._sig)
        if self._freqs[jmin] >= 1.0:
            self._freqs[jmin] -= 1.0
        ring = self._rings[jmin]
        if ring:
            # Clear the most significant (oldest) set bit.
            self._rings[jmin] = ring & ~(1 << (ring.bit_length() - 1))
        if self._sig(jmin) <= 0:
            keys[jmin] = item
            self._freqs[jmin] = 1.0
            self._rings[jmin] = 1

    def _slot(self, item: int) -> int:
        """Cell index currently tracking ``item``, or −1."""
        d = self.bucket_width
        base = (splitmix64(item ^ self._seed) % self.num_buckets) * d
        keys = self._keys
        for j in range(base, base + d):
            if keys[j] == item:
                return j
        return -1

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Consecutive duplicates fold: as soon as one arrival of a run
        lands the item in its bucket, every remaining copy is a pure
        hit — frequency += 1 with the period-presence bit already set —
        so the tail collapses to a single float addition.  Only the
        order-sensitive arrivals (misses that trigger the windowed
        significance decrement) are replayed singly.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        insert = self.insert
        freqs = self._freqs
        i = 0
        while i < total:
            item = items[i]
            run = i + 1
            while run < total and items[run] == item:
                run += 1
            while i < run:
                insert(item)
                i += 1
                if i < run:
                    j = self._slot(item)
                    if j >= 0:
                        freqs[j] += float(run - i)
                        i = run

    def end_period(self) -> None:
        """Shift the window: age rings, decay frequencies, drop dead cells.

        The dead-cell sweep is frequency-driven, so it only applies when
        frequency carries weight (``alpha > 0``).  In persistency-only
        mode (``alpha == 0``) a cell whose ring just aged to zero is kept:
        its significance is already 0, so it is the first victim of any
        bucket-full replacement, but evicting it eagerly would discard
        the decayed frequency history of an item that may still be a
        within-window candidate the moment it reappears.
        """
        mask = self._ring_mask
        decay = self.decay
        sweep_dead = self.alpha > 0
        for j in range(len(self._keys)):
            if self._keys[j] is None:
                continue
            self._rings[j] = (self._rings[j] << 1) & mask
            self._freqs[j] *= decay
            if sweep_dead and self._rings[j] == 0 and self._freqs[j] < 0.5:
                self._keys[j] = None
                self._freqs[j] = 0.0

    # ------------------------------------------------------------- queries
    def estimate(self, item: int) -> Tuple[float, int]:
        """(decayed frequency, windowed persistency) of ``item``."""
        d = self.bucket_width
        base = (splitmix64(item ^ self._seed) % self.num_buckets) * d
        for j in range(base, base + d):
            if self._keys[j] == item:
                return self._freqs[j], _popcount(self._rings[j])
        return 0.0, 0

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        f, p = self.estimate(item)
        return self.alpha * f + self.beta * p

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        reports = [
            ItemReport(
                item=key,
                significance=self._sig(j),
                frequency=self._freqs[j],
                persistency=float(_popcount(self._rings[j])),
            )
            for j, key in enumerate(self._keys)
            if key is not None
        ]
        reports.sort(key=lambda r: (-r.significance, r.item))
        return reports[:k]

    def __len__(self) -> int:
        return sum(1 for key in self._keys if key is not None)
