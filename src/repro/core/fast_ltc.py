"""FastLTC: semantically identical LTC with an O(1) hit path.

The reference :class:`repro.core.ltc.LTC` mirrors the paper's memory
model: a hit scans the d cells of one bucket.  In C++ that scan is a
single cache line; in Python it is d interpreted iterations, which
dominates the insert cost on hit-heavy (Zipfian!) streams.

``FastLTC`` keeps **identical observable behaviour** — the differential
tests in ``tests/test_fast_ltc.py`` assert cell-level equality with the
reference class on arbitrary streams — but maintains an item→slot dict so
the common hit path is one lookup and evictions update the index in
O(1).  The index is pure implementation acceleration; it breaks the
12-byte/cell accounting, which is why accuracy benchmarks use the
reference class and only throughput measurements use this one.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.hashing.family import splitmix64
from repro.summaries.base import expand_counts


class FastLTC(LTC):
    """LTC with a hash-index fast path (same observable behaviour).

    The update logic below intentionally mirrors ``LTC._place`` /
    ``LTC._decrement_smallest`` line for line, adding only index
    maintenance — any semantic divergence is caught by the differential
    test suite.
    """

    def __init__(self, config: LTCConfig) -> None:
        super().__init__(config)
        self._slot_of: Dict[int, int] = {}

    def _place(self, item: int) -> None:
        slot = self._slot_of.get(item)
        if slot is not None:  # Case 1: hit, no bucket scan.
            self._freqs[slot] += 1
            self._flags[slot] |= self._set_bit
            if self._cell_listener is not None:
                self._cell_listener.cell_touched(slot)
            return
        self._place_miss(item)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals with the hit path inlined into the chunk loop.

        Chunking mirrors ``LTC.insert_many`` (harvests land at the same
        arrival positions as the one-at-a-time path); within a chunk a hit
        costs one dict probe and two list writes.  ``_set_bit`` is constant
        for the whole call — it only changes in ``end_period``.
        ``counts`` weights the batch as in the base protocol.
        """
        if self._cell_listener is not None:
            # Listener notifications live in _place/_harvest; the base
            # batched loop routes every arrival through them (same cells,
            # same CLOCK schedule — only the inlined hit shortcut is
            # skipped while an index is attached).
            LTC.insert_many(self, items, counts)
            return
        if counts is not None:
            items = expand_counts(items, counts)
        try:
            total = len(items)
        except TypeError:
            items = list(items)
            total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        harvest = self._harvest
        clock = self._clock
        take = clock._take
        n = clock.items_per_period
        m = clock.num_cells
        acc = clock._acc
        if self._obs is not None:
            self._m_inserts.inc(total)
        get = self._slot_of.get
        freqs = self._freqs
        flags = self._flags
        set_bit = self._set_bit
        miss = self._place_miss
        i = 0
        while i < total:
            # Inlined clock arithmetic (arrivals_until_harvest/on_arrivals):
            # place every arrival that provably triggers no sweep step,
            # plus the one that does, then take that chunk's steps at once.
            j = i + (n - 1 - acc) // m + 1
            if j > total:
                j = total
            for item in items[i:j]:
                slot = get(item)
                if slot is not None:
                    freqs[slot] += 1
                    flags[slot] |= set_bit
                else:
                    miss(item)
            acc += (j - i) * m
            steps = acc // n
            if steps:
                acc -= steps * n
                for slot in take(steps):
                    harvest(slot)
            i = j
        clock._acc = acc

    def _place_miss(self, item: int) -> None:
        d = self._d
        base = (splitmix64(item ^ self._seed) % self._w) * d
        keys = self._keys
        empty = -1
        for j in range(base, base + d):
            if keys[j] is None:
                empty = j
                break
        if empty >= 0:  # Case 2: free cell.
            keys[empty] = item
            self._freqs[empty] = 1
            self._counters[empty] = 0
            self._flags[empty] = self._set_bit
            self._slot_of[item] = empty
            if self._cell_listener is not None:
                self._cell_listener.cell_touched(empty)
            return
        self._decrement_smallest_indexed(item, base)

    def _decrement_smallest_indexed(self, item: int, base: int) -> None:
        d = self._d
        alpha, beta = self._alpha, self._beta
        freqs = self._freqs
        counters = self._counters
        metered = self._obs is not None
        listener = self._cell_listener
        jmin = base
        smin = alpha * freqs[base] + beta * counters[base]
        for j in range(base + 1, base + d):
            s = alpha * freqs[j] + beta * counters[j]
            if s < smin:
                smin, jmin = s, j
        if self._policy == "space-saving":
            if metered:
                self._m_evictions.inc()
            old = self._keys[jmin]
            if old is not None:
                del self._slot_of[old]
            self._keys[jmin] = item
            freqs[jmin] += 1
            self._flags[jmin] = self._set_bit
            self._slot_of[item] = jmin
            if listener is not None:
                listener.cell_touched(jmin)
            return
        if metered:
            self._m_decrements.inc()
        if counters[jmin] > 0:
            counters[jmin] -= 1
        elif freqs[jmin] > 0:
            # Mirror of LTC._decrement_smallest: charge the decrement to
            # the oldest pending flag when the counter is empty and the
            # flags cover the whole post-decrement frequency, so a later
            # harvest can never leave persistency > frequency.
            bits = self._flags[jmin]
            if (bits & 1) + (bits >> 1 & 1) >= freqs[jmin]:
                if bits & self._harvest_bit:
                    self._flags[jmin] = bits & ~self._harvest_bit & 0xFF
                else:
                    self._flags[jmin] = bits & ~self._set_bit & 0xFF
        if freqs[jmin] > 0:
            freqs[jmin] -= 1
        if alpha * freqs[jmin] + beta * counters[jmin] > 0:
            if listener is not None:
                listener.cell_touched(jmin)
            return
        if self._ltr and d > 1:
            f0, c0 = self._longtail_initial(base, jmin)
            if metered:
                self._m_longtail.inc()
        else:
            f0, c0 = 1, 0
        if metered:
            self._m_evictions.inc()
        old = self._keys[jmin]
        if old is not None:
            del self._slot_of[old]
        self._keys[jmin] = item
        freqs[jmin] = f0
        counters[jmin] = c0
        self._flags[jmin] = self._set_bit
        self._slot_of[item] = jmin
        if listener is not None:
            listener.cell_touched(jmin)

    def estimate(self, item: int) -> Tuple[int, int]:
        """Estimated ``(frequency, persistency)`` of ``item`` via the index."""
        slot = self._slot_of.get(item)
        if slot is None:
            return 0, 0
        return self._freqs[slot], self._counters[slot]

    def _tracked(self, item: int) -> bool:
        return item in self._slot_of

    def clear(self) -> None:
        """Reset the structure (and its index) to the fresh state."""
        super().clear()
        self._slot_of.clear()

    def _reindex(self) -> None:
        """Rebuild the item→slot index from the cell arrays (restore path)."""
        self._slot_of = {
            key: j for j, key in enumerate(self._keys) if key is not None
        }
