"""Cell-mutation hooks: observe lossy-table changes without scanning.

The serving tier (:mod:`repro.serve`) answers ``top_k`` / point queries
from a maintained inverted index instead of walking the whole table.  To
keep that index honest it must learn about *every* cell mutation — hits,
CLOCK harvests, Significance Decrementing, evictions, Long-tail
Replacement reseeds — the moment they happen.  Rather than teach the
kernels about indexes, each kernel notifies at most one attached
:class:`CellListener` with the **slot id** of any cell whose key,
frequency or persistency just changed; the listener reads the new cell
state lazily from the structure's own arrays.

Contract (relied on by :class:`repro.serve.index.ServingIndex`):

* a notification fires *after* the mutation is applied, in the same
  call — by the time the listener runs, the cell arrays already show
  the new state;
* key replacement (eviction + newcomer) is just a touch of the slot;
  the listener diffs against its own mirror of the key column to learn
  which item left;
* ``cells_reset`` fires when the whole table is invalidated at once
  (:meth:`repro.core.ltc.LTC.clear`);
* notifications are O(1) per mutated slot and fire only when a listener
  is attached — the disabled cost is one ``is None`` test per mutation
  site, mirroring the observability discipline (DESIGN.md §9).

Supported structures: the three LTC kernels
(:class:`~repro.core.ltc.LTC`, :class:`~repro.core.fast_ltc.FastLTC`,
:class:`~repro.core.columnar.ColumnarLTC`).  Other summaries do not
emit notifications.
"""

from __future__ import annotations

from typing import Iterable, Protocol

# --------------------------------------------------------------------------
# Machine-readable mutation-site inventory.
#
# reprolint's R006 (hook discipline) parses these tuples statically and
# verifies that every write to a cell-state attribute inside a hooked
# kernel is post-dominated by a listener notification (or carries an
# explicit ``# reprolint: detached`` waiver).  Keep them in sync with the
# kernels: adding a cell-state column without listing it here silently
# exempts it from the check; listing a derived attribute (``_slot_of``,
# ``_occ``, ``_kcol``, flag bytes) would demand notifications for writes
# the serving index never observes.

#: Classes whose cells a :class:`CellListener` may observe.  Subclasses
#: of these (e.g. :class:`repro.core.auto.AutoLTC`) inherit the contract.
HOOKED_STRUCTURES = ("LTC", "FastLTC", "ColumnarLTC")

#: Attributes holding observable cell state: the key column and the
#: frequency/persistency counters, including the columnar kernel's numpy
#: rebinds and memoryview/2-D aliases of the same storage.
CELL_STATE_ATTRS = (
    "_keys",
    "_freqs",
    "_counters",
    "_freq_mv",
    "_counter_mv",
    "_freqs2",
    "_counters2",
)

#: The notification surface of :class:`CellListener`.
NOTIFY_METHODS = ("cell_touched", "cells_touched", "cells_reset")


class CellListener(Protocol):
    """What an attached cell-mutation observer must implement."""

    def cell_touched(self, slot: int) -> None:
        """One cell's key, frequency or persistency changed."""

    def cells_touched(self, slots: Iterable[int]) -> None:
        """A batch of cells changed (vectorized kernel paths)."""

    def cells_reset(self) -> None:
        """The whole table was reset; any derived state is invalid."""
