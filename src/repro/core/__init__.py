"""LTC — the paper's algorithm for finding top-k significant items.

:class:`repro.core.ltc.LTC` is the primary contribution: a lossy table of
``w`` buckets × ``d`` cells with Significance Decrementing, a modified
CLOCK sweep for persistency, the Deviation Eliminator (Optimization I) and
Long-tail Replacement (Optimization II).

Extensions beyond the paper (documented as such): state serialization
(:mod:`repro.core.serialize`), summary merging for partitioned streams
(:mod:`repro.core.merge`) and a sliding-window variant
(:mod:`repro.core.windowed`).
"""

from repro.core.config import LTCConfig
from repro.core.clock import ClockPointer
from repro.core.cell import CellView
from repro.core.columnar import ColumnarLTC
from repro.core.fast_ltc import FastLTC
from repro.core.kernels import build_ltc
from repro.core.keyed import KeyedSummary
from repro.core.ltc import LTC
from repro.core.merge import merge
from repro.core.serialize import from_bytes, from_state, to_bytes, to_state
from repro.core.windowed import WindowedLTC

__all__ = [
    "LTC",
    "FastLTC",
    "ColumnarLTC",
    "build_ltc",
    "LTCConfig",
    "ClockPointer",
    "CellView",
    "WindowedLTC",
    "KeyedSummary",
    "merge",
    "to_state",
    "from_state",
    "to_bytes",
    "from_bytes",
]
