"""Read-only view of one LTC cell (for tests, debugging and reports).

The LTC hot path stores cells as parallel arrays; this view materialises a
single cell as a record.  The paper's cell layout (§III-A): an ID field, a
frequency field, and a persistency field holding a counter plus flag
bit(s) — one flag in the basic version, two with the Deviation Eliminator.
"""

from __future__ import annotations

from typing import NamedTuple, Optional


class CellView(NamedTuple):
    """A snapshot of one lossy-table cell."""

    bucket: int
    slot: int
    key: Optional[int]
    frequency: int
    persistency: int
    flag_even: bool
    flag_odd: bool

    def significance(self, alpha: float, beta: float) -> float:
        """The cell's current significance ``α·f + β·p``."""
        return alpha * self.frequency + beta * self.persistency

    @property
    def empty(self) -> bool:
        """Paper definition: ID is NULL (expelled cells also zero the
        counters, so significance is 0 as required)."""
        return self.key is None
