"""LTC (Long-Tail CLOCK): top-k significant items in one structure.

The algorithm of the paper (§III).  A lossy table of ``w`` buckets × ``d``
cells keeps only items with high potential significance:

* a **hit** increments the cell's frequency and raises the current flag;
* a miss with an **empty cell** claims it (`f=1`, counter 0, flag set);
* a miss in a **full bucket** performs *Significance Decrementing* on the
  bucket's least-significant cell; when that cell's significance reaches
  zero its item is expelled and the newcomer takes the cell — with
  **Long-tail Replacement** (Optimization II) the newcomer starts from the
  bucket's second-smallest frequency/persistency − 1 instead of 1/0;
* a CLOCK pointer sweeps the table exactly once per period, harvesting
  flags into the persistency counters — with the **Deviation Eliminator**
  (Optimization I) each cell carries an even-period and an odd-period flag
  and the sweep harvests the *previous* period's flag, which removes the
  up-to-one-period deviation of the basic version (paper Fig. 4/5) and
  makes the estimate provably never an overestimate (Theorem IV.1).
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro import obs, sanitize
from repro.core.cell import CellView
from repro.core.clock import ClockPointer
from repro.core.config import LTCConfig
from repro.core.hooks import CellListener
from repro.hashing.family import splitmix64
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts


class LTC(StreamSummary):
    """The Long-Tail CLOCK structure.

    Drive it like any summary: ``insert`` per arrival, ``end_period`` at
    each boundary, ``finalize`` at stream end (or simply
    ``stream.run(ltc)``).  For time-defined periods use
    :meth:`insert_timed` and call ``end_period`` when the wall clock
    crosses a boundary.

    Args:
        config: Structure parameters; see :class:`repro.core.config.LTCConfig`.
    """

    def __init__(self, config: LTCConfig) -> None:
        self.config = config
        w, d = config.num_buckets, config.bucket_width
        m = w * d
        self._w = w
        self._d = d
        self._alpha = config.alpha
        self._beta = config.beta
        self._seed = splitmix64(config.seed)
        self._keys: List[Optional[int]] = [None] * m
        self._freqs: List[int] = [0] * m
        self._counters: List[int] = [0] * m
        self._flags = bytearray(m)
        self._clock = ClockPointer(m, config.items_per_period)
        self._de = config.deviation_eliminator
        self._policy = config.effective_replacement_policy
        self._ltr = self._policy == "longtail"
        self._parity = 0
        self._set_bit = 1
        self._harvest_bit = 2 if self._de else 1
        self._last_timestamp: Optional[float] = None
        # Observability: capture the live registry once at construction
        # (None when disabled, so every hot-path guard is one `is None`).
        self._obs = obs.registry() if obs.is_enabled() else None
        if self._obs is not None:
            reg = self._obs
            self._m_inserts = reg.counter(
                "ltc_inserts_total", "Arrivals processed by the lossy table"
            )
            self._m_decrements = reg.counter(
                "ltc_significance_decrements_total",
                "Full-bucket misses resolved by Significance Decrementing",
            )
            self._m_evictions = reg.counter(
                "ltc_evictions_total",
                "Incumbent items expelled from a full bucket",
            )
            self._m_longtail = reg.counter(
                "ltc_longtail_replacements_total",
                "Evictions seeded by Long-tail Replacement (Opt. II)",
            )
            self._m_harvests = reg.counter(
                "ltc_harvests_total",
                "CLOCK flag harvests folded into persistency counters",
            )
        self._m_batch = obs.batch_size_histogram(type(self).__name__)
        # Cell-mutation listener (repro.core.hooks): the serving index
        # attaches here; disabled cost is one is-None test per mutation.
        self._cell_listener: Optional[CellListener] = None
        # Debug-mode invariant checking: wrappers are installed on the
        # *instance* only when requested, so the disabled hot paths stay
        # the plain class functions (zero cost, not even a flag branch).
        if config.sanitize or sanitize.env_enabled():
            sanitize.install_ltc(self)

    @classmethod
    def from_memory(
        cls,
        budget: MemoryBudget,
        items_per_period: int,
        bucket_width: int = 8,
        alpha: float = 1.0,
        beta: float = 1.0,
        **kwargs: Any,
    ) -> "LTC":
        """Build an LTC sized for a byte budget (12 bytes/cell, §V-C)."""
        return cls(
            LTCConfig.from_memory(
                budget,
                items_per_period,
                bucket_width=bucket_width,
                alpha=alpha,
                beta=beta,
                **kwargs,
            )
        )

    # ----------------------------------------------------------------- hooks
    def attach_cell_listener(self, listener: CellListener) -> None:
        """Attach the (single) cell-mutation listener.

        The listener is notified with the slot id after any cell's key,
        frequency or persistency changes, and with ``cells_reset`` when
        the whole table is invalidated (:meth:`clear`); see
        :mod:`repro.core.hooks` for the contract.  Attaching replaces
        any previous listener; it does not replay history — observers
        that need the current table state scan it once on attach.
        """
        self._cell_listener = listener

    def detach_cell_listener(self) -> None:
        """Remove the cell-mutation listener (hot paths go branch-cheap)."""
        self._cell_listener = None

    # ------------------------------------------------------------- insertion
    def insert(self, item: int) -> None:
        """Process one arrival (count-based CLOCK advancement)."""
        if self._obs is not None:
            self._m_inserts.inc()
        self._place(item)
        for slot in self._clock.on_arrival():
            self._harvest(slot)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Process a batch of arrivals (count-based CLOCK advancement).

        Equivalent to ``insert`` per item, cell for cell: arrivals that
        provably trigger no CLOCK step are placed in a tight loop, then the
        chunk's sweep steps are taken in one amortised pass (the inlined
        form of :meth:`~repro.core.clock.ClockPointer.on_arrivals`) at
        exactly the arrival position where the one-at-a-time path would
        take them.  ``counts`` weights the batch as in
        :meth:`repro.summaries.base.StreamSummary.insert_many`.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        try:
            total = len(items)
        except TypeError:
            items = list(items)
            total = len(items)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        place = self._place
        harvest = self._harvest
        clock = self._clock
        take = clock._take
        n = clock.items_per_period
        m = clock.num_cells
        acc = clock._acc
        obs_inserts = self._m_inserts if self._obs is not None else None
        if obs_inserts is not None:
            obs_inserts.inc(total)
        i = 0
        while i < total:
            # Inlined clock arithmetic (arrivals_until_harvest/on_arrivals):
            # place every arrival that provably triggers no sweep step,
            # plus the one that does, then take that chunk's steps at once.
            j = i + (n - 1 - acc) // m + 1
            if j > total:
                j = total
            for item in items[i:j]:
                place(item)
            acc += (j - i) * m
            steps = acc // n
            if steps:
                acc -= steps * n
                for slot in take(steps):
                    harvest(slot)
            i = j
        clock._acc = acc

    def insert_timed(self, item: int, timestamp: float, period_seconds: float) -> None:
        """Process one arrival with a wall-clock timestamp.

        The CLOCK advances by ``Δt / period_seconds`` of a full sweep, the
        paper's adaptation to varying arrival speed (§III-B).  Timestamps
        are quantised to absolute integer ticks and the CLOCK is driven by
        the tick *delta*, so the sweep state depends only on the latest
        timestamp — not on how the interval happened to be split across
        arrivals (or across a checkpoint/restore).
        """
        if period_seconds <= 0:
            raise ValueError("period_seconds must be positive")
        if self._last_timestamp is not None and timestamp < self._last_timestamp:
            raise ValueError("timestamps must be non-decreasing")
        if self._obs is not None:
            self._m_inserts.inc()
        self._place(item)
        if self._last_timestamp is not None:
            ticks = ClockPointer.TICKS_PER_PERIOD
            prev = round(self._last_timestamp * ticks / period_seconds)
            cur = round(timestamp * ticks / period_seconds)
            for slot in self._clock.on_elapsed_ticks(cur - prev):
                self._harvest(slot)
        self._last_timestamp = timestamp

    def _place(self, item: int) -> None:
        """The lossy-table update (cases 1–3 of §III-B)."""
        d = self._d
        base = (splitmix64(item ^ self._seed) % self._w) * d
        keys = self._keys
        freqs = self._freqs
        empty = -1
        for j in range(base, base + d):
            key = keys[j]
            if key == item:  # Case 1: hit.
                freqs[j] += 1
                self._flags[j] |= self._set_bit
                if self._cell_listener is not None:
                    self._cell_listener.cell_touched(j)
                return
            if key is None and empty < 0:
                empty = j
        if empty >= 0:  # Case 2: free cell.
            keys[empty] = item
            freqs[empty] = 1
            self._counters[empty] = 0
            self._flags[empty] = self._set_bit
            if self._cell_listener is not None:
                self._cell_listener.cell_touched(empty)
            return
        self._decrement_smallest(item, base)  # Case 3: full bucket.

    def _decrement_smallest(self, item: int, base: int) -> None:
        """Significance Decrementing, with expulsion and (LTR) replacement."""
        d = self._d
        alpha, beta = self._alpha, self._beta
        freqs = self._freqs
        counters = self._counters
        metered = self._obs is not None
        listener = self._cell_listener
        jmin = base
        smin = alpha * freqs[base] + beta * counters[base]
        for j in range(base + 1, base + d):
            s = alpha * freqs[j] + beta * counters[j]
            if s < smin:
                smin, jmin = s, j
        if self._policy == "space-saving":
            # Ablation baseline: replace the minimum outright, inheriting
            # its value + 1 — the overestimating strategy of §I-C.
            if metered:
                self._m_evictions.inc()
            self._keys[jmin] = item
            freqs[jmin] += 1
            self._flags[jmin] = self._set_bit
            if listener is not None:
                listener.cell_touched(jmin)
            return
        if metered:
            self._m_decrements.inc()
        if counters[jmin] > 0:  # Persistency never goes negative (§III-B).
            counters[jmin] -= 1
        elif freqs[jmin] > 0:
            # The persistency counter is empty, but the cell may still hold
            # persistency credit in un-harvested flags (up to two with the
            # Deviation Eliminator).  If those flags cover at least the
            # whole post-decrement frequency, a later harvest would leave
            # persistency > frequency — impossible for the true statistics
            # (§III: a period counted by persistency contains ≥ 1 arrival).
            # Charge the decrement to the oldest pending flag instead.
            bits = self._flags[jmin]
            if (bits & 1) + (bits >> 1 & 1) >= freqs[jmin]:
                if bits & self._harvest_bit:
                    self._flags[jmin] = bits & ~self._harvest_bit & 0xFF
                else:
                    self._flags[jmin] = bits & ~self._set_bit & 0xFF
        if freqs[jmin] > 0:
            freqs[jmin] -= 1
        if alpha * freqs[jmin] + beta * counters[jmin] > 0:
            if listener is not None:
                listener.cell_touched(jmin)
            return  # The incumbent survives; the newcomer is dropped.
        # Expel and insert the newcomer.
        if self._ltr and d > 1:
            f0, c0 = self._longtail_initial(base, jmin)
            if metered:
                self._m_longtail.inc()
        else:
            f0, c0 = 1, 0
        if metered:
            self._m_evictions.inc()
        self._keys[jmin] = item
        freqs[jmin] = f0
        counters[jmin] = c0
        self._flags[jmin] = self._set_bit
        if listener is not None:
            listener.cell_touched(jmin)

    def _longtail_initial(self, base: int, jmin: int) -> Tuple[int, int]:
        """Long-tail Replacement initial values (§III-D).

        The expelled cell held the bucket's smallest values; under the
        long-tail assumption the newcomer's true statistics are close to
        them, and they in turn are close to the second-smallest values − 1.
        Initialising there keeps the new cell the bucket minimum while
        restoring the likely-evicted mass.
        """
        f2 = c2 = None
        for j in range(base, base + self._d):
            if j == jmin:
                continue
            if f2 is None or self._freqs[j] < f2:
                f2 = self._freqs[j]
            if c2 is None or self._counters[j] < c2:
                c2 = self._counters[j]
        assert f2 is not None and c2 is not None
        f0 = max(f2 - 1, 1)
        # The newcomer's set flag is one period of future persistency
        # credit, so seed the counter no higher than f0 - 1 or the next
        # harvest would push persistency past frequency.
        return f0, min(max(c2 - 1, 0), f0 - 1)

    # ----------------------------------------------------------- persistency
    def _harvest(self, slot: int) -> None:
        """CLOCK scan of one cell: fold a set flag into the counter."""
        flags = self._flags
        if flags[slot] & self._harvest_bit:
            flags[slot] &= ~self._harvest_bit & 0xFF
            if self._keys[slot] is not None:
                self._counters[slot] += 1
                if self._obs is not None:
                    self._m_harvests.inc()
                if self._cell_listener is not None:
                    self._cell_listener.cell_touched(slot)

    def end_period(self) -> None:
        """Complete the sweep and roll the period parity.

        With the Deviation Eliminator the parity flip *is* the paper's
        "flag refreshment elimination": the just-written flags become the
        previous-period flags harvested by the next sweep.
        """
        for slot in self._clock.end_period():
            self._harvest(slot)
        if self._de:
            self._parity ^= 1
            self._set_bit = 1 << self._parity
            self._harvest_bit = 1 << (self._parity ^ 1)

    def finalize(self) -> None:
        """Fold all un-harvested flags so persistency matches the exact
        definition at stream end.  Idempotent."""
        flags = self._flags
        keys = self._keys
        counters = self._counters
        listener = self._cell_listener
        for slot in range(len(flags)):
            bits = flags[slot]
            if bits and keys[slot] is not None:
                counters[slot] += (bits & 1) + (bits >> 1 & 1)
                if listener is not None:
                    listener.cell_touched(slot)
            flags[slot] = 0

    # --------------------------------------------------------------- queries
    def estimate(self, item: int) -> Tuple[int, int]:
        """Estimated ``(frequency, persistency)`` of ``item`` (0, 0 when
        the item is not tracked)."""
        d = self._d
        base = (splitmix64(item ^ self._seed) % self._w) * d
        for j in range(base, base + d):
            if self._keys[j] == item:
                return self._freqs[j], self._counters[j]
        return 0, 0

    def query(self, item: int) -> float:
        """Estimated significance ``α·f̂ + β·p̂`` of ``item``."""
        f, p = self.estimate(item)
        return self._alpha * f + self._beta * p

    @property
    def period_fill(self) -> int:
        """Count-based arrivals since the last period boundary.

        Inverts the CLOCK accumulator (each arrival adds ``m`` to it and
        every ``n`` accumulated is one swept slot), so a restored
        checkpoint reveals how deep into its period it was.  Valid while
        the driver ends periods on schedule (fewer than ``n`` arrivals
        since the last :meth:`end_period`), which both
        :class:`repro.streams.model.StreamModel` and the serving tier
        guarantee.
        """
        clock = self._clock
        return (
            clock.scanned_in_period * clock.items_per_period + clock._acc
        ) // clock.num_cells

    def cell_state(self, slot: int) -> Tuple[Optional[int], int, int]:
        """``(key, frequency, persistency)`` of one cell by flat slot id.

        ``key`` is ``None`` for an empty cell.  The counts are plain
        Python ints regardless of kernel (the columnar kernel stores
        numpy scalars); this is the read path the serving index uses
        when a :class:`repro.core.hooks.CellListener` notification
        names a slot.
        """
        return self._keys[slot], int(self._freqs[slot]), int(self._counters[slot])

    def top_k(self, k: int) -> List[ItemReport]:
        """The k most significant tracked items."""
        alpha, beta = self._alpha, self._beta
        reports = [
            ItemReport(
                item=key,
                significance=alpha * self._freqs[j] + beta * self._counters[j],
                frequency=float(self._freqs[j]),
                persistency=float(self._counters[j]),
            )
            for j, key in enumerate(self._keys)
            if key is not None
        ]
        reports.sort(key=lambda r: (-r.significance, r.item))
        return reports[:k]

    def _reindex(self) -> None:
        """Rebuild any derived lookup state from the cell arrays.

        No-op for the reference class; :class:`repro.core.fast_ltc.FastLTC`
        rebuilds its item→slot index here.  Called by the serializer after
        restoring cells.
        """

    # ----------------------------------------------------------- inspection
    def cells(self) -> Iterator[CellView]:
        """Yield a snapshot view of every cell (tests/debugging)."""
        d = self._d
        for j in range(len(self._keys)):
            bits = self._flags[j]
            yield CellView(
                bucket=j // d,
                slot=j % d,
                key=self._keys[j],
                frequency=self._freqs[j],
                persistency=self._counters[j],
                flag_even=bool(bits & 1),
                flag_odd=bool(bits & 2),
            )

    def __contains__(self, item: int) -> bool:
        """Whether ``item`` currently occupies a cell."""
        return self._tracked(item)

    def _tracked(self, item: int) -> bool:
        d = self._d
        base = (splitmix64(item ^ self._seed) % self._w) * d
        return any(self._keys[j] == item for j in range(base, base + d))

    def items(self) -> Iterator[int]:
        """Yield every currently tracked item id."""
        for key in self._keys:
            if key is not None:
                yield key

    def clear(self) -> None:
        """Reset the structure to its freshly-built state."""
        m = len(self._keys)
        self._keys = [None] * m
        self._freqs = [0] * m
        self._counters = [0] * m
        self._flags = bytearray(m)
        self._clock = ClockPointer(m, self.config.items_per_period)
        self._parity = 0
        self._set_bit = 1
        self._harvest_bit = 2 if self._de else 1
        self._last_timestamp = None
        if self._cell_listener is not None:
            self._cell_listener.cells_reset()

    def __len__(self) -> int:
        """Number of occupied cells."""
        return sum(1 for key in self._keys if key is not None)

    @property
    def total_cells(self) -> int:
        return len(self._keys)

    def load_factor(self) -> float:
        """Fraction of occupied cells."""
        return len(self) / self.total_cells
