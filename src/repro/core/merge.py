"""Merging LTC summaries from partitioned streams (extension).

Use case 3 of the paper motivates a *global* view over many vantage
points ("If persistent flows all over the data center can be efficiently
identified, we can make a global solution…").  This module merges LTC
summaries built on partitions of one logical stream.

Semantics depend on how the stream was partitioned:

* **item-sharded** (each item's arrivals all go to one summary — e.g.
  shard by ``hash(item) % shards``): the merge is **exact up to bucket
  capacity** — per-item statistics appear in exactly one input, so the
  merged cell values are the inputs' values; only the top-d-per-bucket
  cut can lose (insignificant) items.
* **arbitrary split** (the same item may appear in several summaries):
  frequencies add exactly; persistency addition over-counts periods in
  which the item was seen by several summaries, so the merged persistency
  is an upper bound clipped to the period count.

All inputs must share the structural configuration (w, d, α, β, seed):
cells can then be combined bucket-by-bucket.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.ltc import LTC


# reprolint: detached — fills a freshly constructed, unobserved LTC; listeners attach only after the merge result is returned
def merge(
    summaries: Sequence[LTC],
    num_periods: Optional[int] = None,
    *,
    check_period: bool = True,
) -> LTC:
    """Merge LTC summaries into a new LTC with the shared configuration.

    Inputs should be finalized (all flags harvested); pending flags are
    folded in defensively.  Bucket overflow keeps the d most significant
    merged cells.

    Args:
        summaries: Two or more LTCs with identical structural config.
        num_periods: Total periods of the logical stream; when given,
            merged persistency is clipped to it (relevant for arbitrary
            splits where addition over-counts).
        check_period: Also require identical ``items_per_period``.  Leave
            on for same-stream checkpoint merging; coordinators whose
            sites share the *logical* period structure but see different
            arrival counts per period (so each site's CLOCK runs at its
            own rate) disable it deliberately.
    """
    if not summaries:
        raise ValueError("nothing to merge")
    first = summaries[0]
    for other in summaries[1:]:
        _check_compatible(first, other, check_period=check_period)

    merged = LTC(first.config)
    alpha, beta = first.config.alpha, first.config.beta
    d = first.config.bucket_width
    for bucket in range(first.config.num_buckets):
        base = bucket * d
        combined: Dict[int, Tuple[int, int]] = {}
        for summary in summaries:
            for j in range(base, base + d):
                key = summary._keys[j]
                if key is None:
                    continue
                # int() casts: columnar inputs hold numpy scalars, and the
                # merged reference LTC must stay plain-int for serialization.
                freq = int(summary._freqs[j])
                counter = int(summary._counters[j])
                # Fold pending flags so un-finalized inputs merge sanely.
                bits = int(summary._flags[j])
                counter += (bits & 1) + (bits >> 1 & 1)
                if key in combined:
                    old_f, old_c = combined[key]
                    freq += old_f
                    counter += old_c
                if num_periods is not None:
                    counter = min(counter, num_periods)
                combined[key] = (freq, counter)
        winners = sorted(
            combined.items(),
            key=lambda kv: (-(alpha * kv[1][0] + beta * kv[1][1]), kv[0]),
        )[:d]
        for slot, (key, (freq, counter)) in enumerate(winners):
            j = base + slot
            merged._keys[j] = key
            merged._freqs[j] = freq
            merged._counters[j] = counter
            merged._flags[j] = 0
    return merged


def _check_compatible(a: LTC, b: LTC, *, check_period: bool = True) -> None:
    ca, cb = a.config, b.config
    fields = [
        "num_buckets",
        "bucket_width",
        "alpha",
        "beta",
        "seed",
        # Flag semantics (one vs two flag bits per cell) must line up for
        # the defensive pending-flag fold to mean the same thing.
        "deviation_eliminator",
        # Different policies produce cells with incomparable biases
        # (e.g. space-saving overestimates); compare the *effective*
        # policy so longtail_replacement=False equals policy="one".
        "effective_replacement_policy",
    ]
    if check_period:
        fields.append("items_per_period")
    for field in fields:
        if getattr(ca, field) != getattr(cb, field):
            raise ValueError(
                f"incompatible LTC configs: {field} differs "
                f"({getattr(ca, field)} vs {getattr(cb, field)})"
            )
