"""Runtime kernel selection: ``LTCConfig(kernel="auto")``.

The columnar kernel dominates FastLTC when chunks are mostly *clean*
(events that hit before their bucket's first in-chunk miss aggregate in
bulk), and loses only in the deeply contended regime where nearly every
bucket takes a miss early in every chunk (tiny tables under heavy skew).
Which regime a deployment sits in depends on the workload, not just the
geometry — so :class:`AutoLTC` measures instead of guessing.

The probe is free: :meth:`ColumnarLTC._ingest_chunk` already classifies
every chunk into clean and dirty events, and reports the counts through
the ``_probe`` hook.  AutoLTC accumulates them into fixed-size voting
windows and compares the window's clean fraction against
``CLEAN_FLOOR``.  Three guardrails keep the decision stable and
deterministic (event counts only — never wall-clock timing, which rule
R003 forbids in kernel logic):

* **Fill suppression** — while the table is still claiming empty cells
  the stream looks artificially miss-heavy, so windows whose occupancy
  grew by more than ``FILL_FRACTION`` of their events don't vote.
* **Hysteresis** — a switch needs ``HYSTERESIS`` *consecutive* windows
  voting against the current mode; a single skew burst changes nothing.
* **Period alignment** — a decided switch is deferred to the next
  ``end_period()`` boundary, so a period is always ingested by one
  kernel end to end (mid-period the two paths interleave their CLOCK
  arithmetic differently enough that switching would be hard to audit,
  even though both are replay-identical).

In fast mode the per-chunk probe would itself cost the columnar
overhead being avoided, so AutoLTC goes quiet and re-probes one period
out of every ``RECHECK_PERIODS`` through the columnar path — drift back
into a columnar-friendly regime is picked up within a few rechecks and
costs at most one period's throughput delta each time.

Cell state, CLOCK state, metrics, and checkpoint bytes are identical to
the other kernels in either mode (fast mode replays through the same
memoryview scalar machinery the segmented kernel uses for its queue
drains); ``kernel_in_use`` exposes the current choice for the serving
tier's stats endpoint and the benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.core.columnar import ColumnarLTC
from repro.core.config import LTCConfig
from repro.summaries.base import expand_counts


class AutoLTC(ColumnarLTC):
    """Columnar LTC that falls back to scalar batches when probes say so."""

    #: Chunks per voting window.
    PROBE_CHUNKS = 4
    #: Consecutive opposing windows required before a switch is scheduled.
    HYSTERESIS = 2
    #: In fast mode, re-probe one period out of every this many.
    RECHECK_PERIODS = 16
    #: Clean fraction at/above which a window votes columnar.
    CLEAN_FLOOR = 0.5
    #: Windows whose occupancy grew by more than this fraction of their
    #: events are still filling the table and don't vote.
    FILL_FRACTION = 0.02

    def __init__(self, config: LTCConfig) -> None:
        super().__init__(config)
        self._auto_reset()
        self._probe = self._auto_observe

    # ------------------------------------------------------------- state

    def _auto_reset(self) -> None:
        self._auto_mode = "columnar"
        self._auto_pending: Optional[str] = None
        self._auto_votes = 0
        self._auto_events = 0
        self._auto_clean = 0
        self._auto_chunks = 0
        self._auto_occ0 = len(self._slot_of)
        self._auto_period = 0
        self._auto_recheck = False

    @property
    def kernel_in_use(self) -> str:
        """The kernel the next batch will ingest through."""
        if self._auto_mode == "fast" and not self._auto_recheck:
            return "fast"
        return "columnar"

    # ------------------------------------------------------------- probe

    def _auto_observe(self, span: int, n_clean: int, n_dirty: int) -> None:
        """Accumulate one chunk's probe counts; vote on full windows."""
        self._auto_events += span
        self._auto_clean += n_clean
        self._auto_chunks += 1
        if self._auto_chunks < self.PROBE_CHUNKS:
            return
        events, clean = self._auto_events, self._auto_clean
        occ_delta = len(self._slot_of) - self._auto_occ0
        self._auto_events = self._auto_clean = self._auto_chunks = 0
        self._auto_occ0 = len(self._slot_of)
        if occ_delta > self.FILL_FRACTION * events:
            return  # still filling: miss-heavy by construction, no vote
        vote = "columnar" if clean >= self.CLEAN_FLOOR * events else "fast"
        if vote == self._auto_mode:
            self._auto_votes = 0
            self._auto_pending = None
            return
        self._auto_votes += 1
        if self._auto_votes >= self.HYSTERESIS:
            self._auto_pending = vote

    # ------------------------------------------------------------ ingest

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        if self._auto_mode != "fast" or self._auto_recheck or not self._vec:
            super().insert_many(items, counts)
            return
        # Fast mode: skip hashing/probing entirely and replay the whole
        # batch through the memoryview scalar path (replay-identical to
        # both parents; see _replay_scalar).
        if counts is not None:
            items = expand_counts(items, counts)
        seq: Sequence[int] = (
            items if isinstance(items, (list, tuple)) else list(items)
        )
        total = len(seq)
        if self._m_batch is not None:
            self._m_batch.observe(total)
        if self._obs is not None:
            self._m_inserts.inc(total)
        if total:
            self._replay_scalar(seq, 0, total, range(total))  # type: ignore[arg-type]

    def end_period(self) -> None:
        super().end_period()
        self._auto_period += 1
        if self._auto_pending is not None:
            self._auto_mode = self._auto_pending
            self._auto_pending = None
            self._auto_votes = 0
            self._auto_events = self._auto_clean = self._auto_chunks = 0
            self._auto_occ0 = len(self._slot_of)
        self._auto_recheck = (
            self._auto_mode == "fast"
            and self._auto_period % self.RECHECK_PERIODS == 0
        )

    def clear(self) -> None:
        super().clear()
        self._auto_reset()
