"""The CLOCK pointer that schedules persistency harvesting (paper §III-B).

Every cell of the lossy table is a time slot on a clock face.  The pointer
must pass over **every cell exactly once per period**; that exactness is
what makes "persistency += at most 1 per period" hold.  Two driving modes:

* count-based: a period contains ``n`` arrivals, so the pointer advances
  ``m/n`` slots per arrival (integer accumulator — no float drift);
* time-based: on an arrival ``Δt`` after the previous one, the pointer
  advances ``Δt/t · m`` slots, where ``t`` is the period length.  Elapsed
  time is expressed in integer **ticks** of ``TICKS_PER_PERIOD`` per
  period, so this accumulator is exactly as drift-free as the count-based
  one: tick deltas telescope, and any split of an interval into sub-deltas
  advances the pointer to the identical state.

``end_period()`` completes any unfinished sweep (e.g. when the final
period is short) and re-anchors both accumulators, so the exactly-once
invariant holds for every period regardless of arrival jitter.
"""

from __future__ import annotations

from typing import List


class ClockPointer:
    """Sweeps ``num_cells`` slots exactly once per period.

    Args:
        num_cells: Table size ``m``.
        items_per_period: Count-based period length ``n``.
    """

    #: Time-based resolution: one period is 2**32 integer ticks.  Callers
    #: quantise wall-clock timestamps to ticks once (see
    #: :meth:`repro.core.ltc.LTC.insert_timed`) and feed tick *deltas*
    #: here; because the deltas are integers, they telescope exactly and
    #: the sweep can never drift off the once-per-period schedule the way
    #: a float accumulator could.
    TICKS_PER_PERIOD = 1 << 32

    def __init__(self, num_cells: int, items_per_period: int) -> None:
        if num_cells < 1:
            raise ValueError("num_cells must be >= 1")
        if items_per_period < 1:
            raise ValueError("items_per_period must be >= 1")
        self.num_cells = num_cells
        self.items_per_period = items_per_period
        self.hand = 0  # next slot the pointer will pass
        self._acc = 0  # arrival accumulator (units of 1/n periods)
        self._tacc = 0  # time accumulator (ticks, < TICKS_PER_PERIOD)
        self.scanned_in_period = 0

    def on_arrival(self) -> List[int]:
        """Slots to scan for one count-based arrival (``m/n`` amortised)."""
        self._acc += self.num_cells
        steps = self._acc // self.items_per_period
        self._acc -= steps * self.items_per_period
        return self._take(steps)

    def on_arrivals(self, count: int) -> List[int]:
        """Slots to scan for ``count`` count-based arrivals at once.

        Floor sums telescope, so the returned slots are exactly the
        concatenation of ``count`` successive :meth:`on_arrival` results —
        one accumulator update instead of ``count``.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        self._acc += count * self.num_cells
        steps = self._acc // self.items_per_period
        self._acc -= steps * self.items_per_period
        return self._take(steps)

    def arrivals_until_harvest(self) -> int:
        """Future count-based arrivals guaranteed to harvest zero slots.

        Batched ingestion places this many items back to back with no
        CLOCK interaction, then lets the next arrival trigger the sweep
        step — preserving the per-arrival harvest schedule exactly.
        """
        return (self.items_per_period - 1 - self._acc) // self.num_cells

    def on_elapsed_ticks(self, delta_ticks: int) -> List[int]:
        """Slots to scan after ``delta_ticks`` integer ticks elapsed.

        The exact time-based drive: ``TICKS_PER_PERIOD`` ticks advance the
        pointer by exactly ``num_cells`` slots, however the interval is
        split — integer floor sums telescope just like the count-based
        accumulator's, so jittered Δt sequences cannot drift the sweep.
        """
        if delta_ticks < 0:
            raise ValueError("time must not run backwards")
        self._tacc += delta_ticks * self.num_cells
        steps = self._tacc // self.TICKS_PER_PERIOD
        self._tacc -= steps * self.TICKS_PER_PERIOD
        return self._take(steps)

    def on_elapsed(self, period_fraction: float) -> List[int]:
        """Slots to scan after ``period_fraction`` of a period elapsed.

        Convenience wrapper over :meth:`on_elapsed_ticks`: the fraction is
        quantised to ticks deterministically (exact rational arithmetic on
        the float's integer ratio, floor-rounded).  Callers that need
        split-invariant advancement must quantise *absolute* times to
        ticks themselves and pass tick deltas — per-call quantisation of
        independent fractions cannot telescope.
        """
        if period_fraction < 0:
            raise ValueError("time must not run backwards")
        numerator, denominator = period_fraction.as_integer_ratio()
        return self.on_elapsed_ticks(
            numerator * self.TICKS_PER_PERIOD // denominator
        )

    def end_period(self) -> List[int]:
        """Complete the sweep and re-anchor for the next period."""
        remaining = self.num_cells - self.scanned_in_period
        slots = self._take(remaining)
        self.scanned_in_period = 0
        self._acc = 0
        self._tacc = 0
        return slots

    def _take(self, steps: int) -> List[int]:
        # Never scan a slot twice within one period.
        steps = min(steps, self.num_cells - self.scanned_in_period)
        if steps <= 0:
            return []
        m = self.num_cells
        hand = self.hand
        slots = [(hand + i) % m for i in range(steps)]
        self.hand = (hand + steps) % m
        self.scanned_in_period += steps
        return slots
