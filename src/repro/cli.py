"""Command-line driver: ``repro-ltc`` (or ``python -m repro``).

Subcommands:

* ``demo``           — run LTC on a dataset substitute and print the top-k;
* ``compare``        — head-to-head accuracy table against the baselines;
* ``throughput``     — relative insertion throughput of all algorithms;
* ``check-longtail`` — the §III-D distribution check that should precede
  enabling Long-tail Replacement (works on the built-in datasets or on a
  trace file via ``--trace``);
* ``figure``         — regenerate a paper figure by id (runs its benchmark);
* ``plan``           — recommend LTC memory for a target correct rate by
  inverting the §IV bound;
* ``stats``          — pretty-print a metrics snapshot written by
  ``--metrics-out`` (table, Prometheus exposition, or raw JSON).

Every run subcommand accepts ``--metrics-out PATH``: observability is
enabled for the run (:mod:`repro.obs`) and the registry snapshot is
written to ``PATH`` as JSON on the way out.  It also accepts
``--batched``: summaries ingest whole-period batches through their
``insert_many`` fast paths; results are differentially pinned identical
to per-event ingestion, so only wall-clock changes.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.experiments.configs import (
    default_algorithms_frequent,
    default_algorithms_persistent,
    default_algorithms_significant,
    ltc_factory,
    make_dataset,
)
from repro.experiments.report import format_table
from repro.experiments.runner import run_and_evaluate
from repro.metrics.memory import MemoryBudget, kb
from repro.metrics.throughput import measure_throughput
from repro.streams.ground_truth import GroundTruth


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset",
        choices=["caida", "network", "social"],
        default="network",
        help="dataset substitute to run on",
    )
    parser.add_argument("--memory-kb", type=float, default=50.0)
    parser.add_argument("-k", type=int, default=100)
    parser.add_argument("--alpha", type=float, default=1.0)
    parser.add_argument("--beta", type=float, default=1.0)
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="ingest through the multi-core sharded pipeline with this many "
        "worker processes (demo only; 1 = single-process)",
    )
    parser.add_argument(
        "--ipc",
        choices=["auto", "shm", "pickle"],
        default="auto",
        help="batch transport for --workers > 1: the zero-copy shared-"
        "memory ring (shm), pickled chunks over the pipe (pickle), or "
        "shm-when-available (auto)",
    )
    parser.add_argument(
        "--kernel",
        choices=["reference", "fast", "columnar", "auto"],
        default="reference",
        help="LTC implementation to build (repro.core.kernels): the "
        "paper-faithful reference, the hash-indexed fast kernel, the "
        "numpy columnar kernel, or runtime auto-selection between the "
        "latter two — all observably identical",
    )
    parser.add_argument(
        "--batched",
        action="store_true",
        help="feed summaries whole-period batches through their insert_many "
        "fast path (results are pinned identical to per-event ingestion; "
        "only wall-clock changes)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable observability (repro.obs) for this run and write the "
        "metrics snapshot to PATH as JSON (inspect it with `repro-ltc stats`)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ltc",
        description="LTC significant-items reproduction driver",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    for name in ("demo", "compare", "throughput"):
        _add_common(sub.add_parser(name))
    longtail = sub.add_parser("check-longtail")
    _add_common(longtail)
    longtail.add_argument(
        "--trace",
        default=None,
        help="item-per-line trace file to check instead of a built-in dataset",
    )
    longtail.add_argument(
        "--sample-size",
        type=int,
        default=100_000,
        help="events sampled for the distribution check",
    )
    figure = sub.add_parser("figure")
    figure.add_argument(
        "id",
        help="figure id to regenerate, e.g. fig09, fig12, fig14, appx_zipf, "
        "throughput (runs the matching benchmark)",
    )
    plan = sub.add_parser("plan")
    plan.add_argument("--distinct", type=int, required=True)
    plan.add_argument("--events", type=int, required=True)
    plan.add_argument("--skew", type=float, default=1.0)
    plan.add_argument("-k", type=int, default=100)
    plan.add_argument("--target-rate", type=float, default=0.9)
    plan.add_argument("-d", "--bucket-width", type=int, default=8)
    serve = sub.add_parser("serve")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8421,
        help="listen port (0 = ephemeral; the bound port is printed as "
        "'serving on HOST:PORT' once ready)",
    )
    serve.add_argument(
        "--kernel",
        choices=["reference", "fast", "columnar", "auto"],
        default="columnar",
        help="LTC kernel to serve (columnar default: fastest ingest; "
        "auto probes the live stream and picks columnar or fast itself)",
    )
    serve.add_argument("--num-buckets", type=int, default=1024)
    serve.add_argument("-d", "--bucket-width", type=int, default=8)
    serve.add_argument("--alpha", type=float, default=1.0)
    serve.add_argument("--beta", type=float, default=1.0)
    serve.add_argument("--items-per-period", type=int, default=4096)
    serve.add_argument(
        "--snapshot-dir",
        default=None,
        help="rotating checkpoint directory (repro.serve.snapshots); on "
        "startup the newest intact snapshot is restored, and a final one "
        "is written on clean shutdown",
    )
    serve.add_argument(
        "--snapshot-retain",
        type=int,
        default=3,
        help="snapshots kept in --snapshot-dir (older ones are pruned)",
    )
    serve.add_argument(
        "--snapshot-every",
        type=int,
        default=0,
        metavar="BATCHES",
        help="also checkpoint every N ingested batches (0 = only at "
        "shutdown)",
    )
    serve.add_argument(
        "--check-oracle",
        action="store_true",
        help="compare every served answer byte-for-byte against the "
        "full-scan oracle (debug/bench; costs a table scan per query)",
    )
    serve.add_argument(
        "--no-metrics",
        action="store_true",
        help="do not enable repro.obs (GET /metrics then returns 503)",
    )
    stats = sub.add_parser("stats")
    stats.add_argument(
        "snapshot",
        help="metrics snapshot JSON written by --metrics-out (or the obs "
        "bench's BENCH_obs_metrics.json)",
    )
    stats.add_argument(
        "--format",
        choices=["table", "prometheus", "json"],
        default="table",
        help="rendering: human table (default), Prometheus text "
        "exposition, or the raw JSON back out",
    )
    return parser


def _demo_parallel(args: argparse.Namespace, stream, budget) -> int:
    """Demo via the multi-core sharded pipeline (--workers > 1)."""
    from repro.core.config import LTCConfig
    from repro.distributed.parallel import ShardedPipeline

    config = LTCConfig.from_memory(
        budget,
        items_per_period=stream.period_length,
        alpha=args.alpha,
        beta=args.beta,
        kernel=args.kernel,
    )
    pipeline = ShardedPipeline(
        config,
        num_shards=args.workers,
        max_workers=args.workers,
        transport=args.ipc,
    )
    report = pipeline.run(stream, args.k)
    truth = GroundTruth(stream)
    rows = [
        (
            item,
            f"{sig:g}",
            f"{truth.significance(item, args.alpha, args.beta):g}",
        )
        for item, sig in report.top_k[:20]
    ]
    print(stream.stats)
    print(
        format_table(
            ["item", "est. sig", "real sig"],
            rows,
            title=(
                f"Sharded top items ({args.workers} workers, "
                f"{report.communication_bytes}B summary traffic, "
                f"{report.ingest_ipc_bytes}B ingest IPC)"
            ),
        )
    )
    return 0


def _demo(args: argparse.Namespace) -> int:
    stream = make_dataset(args.dataset)
    budget = MemoryBudget(kb(args.memory_kb))
    if args.workers > 1:
        return _demo_parallel(args, stream, budget)
    ltc = ltc_factory(budget, stream, args.alpha, args.beta, kernel=args.kernel)()
    stream.run(ltc, batched=args.batched)
    truth = GroundTruth(stream)
    rows = []
    for report in ltc.top_k(args.k)[:20]:
        rows.append(
            (
                report.item,
                f"{report.significance:g}",
                f"{truth.significance(report.item, args.alpha, args.beta):g}",
                int(report.frequency),
                int(report.persistency),
            )
        )
    print(stream.stats)
    print(
        format_table(
            ["item", "est. sig", "real sig", "est. f", "est. p"],
            rows,
            title=f"LTC top items (alpha={args.alpha:g}, beta={args.beta:g})",
        )
    )
    return 0


def _line_up(args: argparse.Namespace, stream):
    budget = MemoryBudget(kb(args.memory_kb))
    kernel = getattr(args, "kernel", "reference")
    if args.beta == 0:
        return default_algorithms_frequent(budget, stream, args.k, kernel=kernel)
    if args.alpha == 0:
        return default_algorithms_persistent(budget, stream, args.k, kernel=kernel)
    return default_algorithms_significant(
        budget, stream, args.k, args.alpha, args.beta, kernel=kernel
    )


def _compare(args: argparse.Namespace) -> int:
    stream = make_dataset(args.dataset)
    factories = _line_up(args, stream)
    results = run_and_evaluate(
        factories, stream, args.k, args.alpha, args.beta, batched=args.batched
    )
    print(stream.stats)
    print(
        format_table(
            ["algorithm", "precision", "ARE", "AAE"],
            [r.row() for r in results],
            title=(
                f"top-{args.k} significant items, "
                f"{args.memory_kb:g}KB, alpha={args.alpha:g}, beta={args.beta:g}"
            ),
        )
    )
    return 0


def _throughput(args: argparse.Namespace) -> int:
    stream = make_dataset(args.dataset)
    factories = _line_up(args, stream)
    rows = []
    for name, factory in factories.items():
        result = measure_throughput(
            factory, stream, name=name, batched=args.batched
        )
        rows.append((name, f"{result.mops:.3f}"))
    print(format_table(["algorithm", "Mops"], rows, title=str(stream.stats)))
    return 0


def _check_longtail(args: argparse.Namespace) -> int:
    from repro.analysis.distribution import is_long_tailed, sample_frequencies
    from repro.streams.io import load_items

    if args.trace:
        stream = load_items(args.trace, num_periods=1)
        label = args.trace
    else:
        stream = make_dataset(args.dataset)
        label = stream.name
    freqs = sample_frequencies(stream.events, sample_size=args.sample_size)
    report = is_long_tailed(freqs)
    print(f"{label}: {report}")
    if report.long_tailed:
        print("Long-tail Replacement is appropriate for this workload.")
        return 0
    print(
        "Distribution is not long-tailed; consider running LTC with "
        "longtail_replacement=False (paper §III-D, Shortcoming)."
    )
    return 1


def _figure(args: argparse.Namespace) -> int:
    """Regenerate a paper figure by running its benchmark via pytest."""
    import glob
    import os

    import pytest

    root = os.path.join(os.path.dirname(__file__), "..", "..", "benchmarks")
    root = os.path.abspath(root)
    pattern = os.path.join(root, f"bench_{args.id}*.py")
    matches = sorted(glob.glob(pattern))
    if not matches:
        available = sorted(
            os.path.basename(p)[len("bench_") : -len(".py")]
            for p in glob.glob(os.path.join(root, "bench_*.py"))
        )
        print(f"no benchmark matches {args.id!r}; available: {available}")
        return 2
    return pytest.main(["-q", "--benchmark-only", "-s", *matches])


def _plan(args: argparse.Namespace) -> int:
    """Recommend LTC memory for a target correct rate (§IV bound)."""
    from repro.analysis.planner import recommend_memory

    try:
        plan = recommend_memory(
            num_distinct=args.distinct,
            stream_length=args.events,
            skew=args.skew,
            k=args.k,
            target_rate=args.target_rate,
            bucket_width=args.bucket_width,
        )
    except ValueError as exc:
        print(f"planning failed: {exc}")
        return 1
    print(plan)
    print(
        "Build it with: LTC.from_memory(MemoryBudget("
        f"{plan.total_bytes}), items_per_period=<n>, "
        f"bucket_width={plan.bucket_width}, ...)"
    )
    return 0


def _stats(args: argparse.Namespace) -> int:
    """Pretty-print a metrics snapshot written by ``--metrics-out``."""
    import json

    try:
        snapshot = obs.export.load_json_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        print(f"cannot read snapshot: {exc}")
        return 1
    if args.format == "json":
        print(json.dumps(snapshot, indent=2))
    elif args.format == "prometheus":
        print(obs.export.prometheus_text(snapshot), end="")
    else:
        rows = obs.export.snapshot_rows(snapshot)
        generated = snapshot.get("generated_at", "unknown time")
        if not rows:
            print(f"empty snapshot ({generated})")
            return 0
        print(
            format_table(
                ["metric", "type", "value"],
                rows,
                title=f"metrics snapshot ({generated})",
            )
        )
    return 0


def _serve(args: argparse.Namespace) -> int:
    """Run the serving tier (repro.serve) until SIGTERM/SIGINT."""
    import asyncio

    from repro.core.config import LTCConfig
    from repro.core.kernels import KERNELS, build_ltc
    from repro.serve.server import ServingApp, run_app
    from repro.serve.snapshots import SnapshotStore

    if not args.no_metrics and not obs.is_enabled():
        obs.enable()
    store = (
        SnapshotStore(args.snapshot_dir, retain=args.snapshot_retain)
        if args.snapshot_dir
        else None
    )
    ltc = store.restore(cls=KERNELS[args.kernel]) if store is not None else None
    if ltc is not None:
        print(f"restored {ltc.total_cells}-cell structure from snapshot", flush=True)
    else:
        ltc = build_ltc(
            LTCConfig(
                num_buckets=args.num_buckets,
                bucket_width=args.bucket_width,
                alpha=args.alpha,
                beta=args.beta,
                items_per_period=args.items_per_period,
                kernel=args.kernel,
            )
        )
    app = ServingApp(
        ltc,
        snapshots=store,
        snapshot_every=args.snapshot_every,
        check_oracle=args.check_oracle,
    )

    def _ready(host: str, port: int) -> None:
        print(f"serving on {host}:{port}", flush=True)

    try:
        asyncio.run(run_app(app, args.host, args.port, ready=_ready))
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass
    print(
        f"shutdown: ingested={app.ingested} snapshots={app.snapshots_written}",
        flush=True,
    )
    return 0


_COMMANDS = {
    "demo": _demo,
    "compare": _compare,
    "throughput": _throughput,
    "check-longtail": _check_longtail,
    "figure": _figure,
    "plan": _plan,
    "serve": _serve,
    "stats": _stats,
}


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        obs.enable()
    try:
        return _COMMANDS[args.command](args)
    finally:
        if metrics_out:
            obs.export.write_json_snapshot(obs.registry(), metrics_out)
            obs.disable()


if __name__ == "__main__":
    sys.exit(main())
