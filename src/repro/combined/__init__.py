"""The straightforward combined baseline for significant items (§I-B).

No prior work finds significant items directly, so the paper combines a
frequent-items structure and a persistent-items structure and splits the
memory between them — the strawman LTC is compared against.
"""

from repro.combined.two_structure import TwoStructureSignificant

__all__ = ["TwoStructureSignificant"]
