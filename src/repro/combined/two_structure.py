"""Two-structure significant-items baseline.

Paper §V-H: "for each algorithm we maintain two sketches: one for finding
frequent items, and the other for finding persistent items, and we
allocate the whole memory to them evenly."  A shared k-entry min-heap
ranks items by the combined estimate ``α·f̂ + β·p̂``.
"""

from __future__ import annotations

from typing import List

from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary
from repro.summaries.heap import TopKHeap


class TwoStructureSignificant(StreamSummary):
    """Significance ranking from separate frequency and persistency sketches.

    Args:
        freq_sketch: Point-query sketch counting every arrival.
        pers_sketch: Point-query sketch counting period-first appearances.
        bloom: Per-period dedup filter for the persistency side.
        k: Heap capacity.
        alpha: Frequency weight.
        beta: Persistency weight.
    """

    def __init__(
        self,
        freq_sketch,
        pers_sketch,
        bloom: BloomFilter,
        k: int,
        alpha: float,
        beta: float,
    ):
        self.freq_sketch = freq_sketch
        self.pers_sketch = pers_sketch
        self.bloom = bloom
        self.heap = TopKHeap(k)
        self.alpha = alpha
        self.beta = beta

    @classmethod
    def from_memory(
        cls,
        sketch_cls,
        budget: MemoryBudget,
        k: int,
        alpha: float,
        beta: float,
        rows: int = 3,
        seed: int = 0x5EED,
    ) -> "TwoStructureSignificant":
        """Paper sizing: even split; the persistent half is itself split
        between its Bloom filter and its sketch (§V-C)."""
        freq_budget, pers_budget = budget.halves()
        bloom_budget, pers_sketch_budget = pers_budget.halves()
        freq_sketch = sketch_cls.from_memory(
            freq_budget, rows=rows, heap_k=k, seed=seed
        )
        pers_sketch = sketch_cls.from_memory(
            pers_sketch_budget, rows=rows, heap_k=0, seed=seed ^ 0x9E
        )
        bloom = BloomFilter.from_memory(bloom_budget, seed=seed ^ 0xBF)
        return cls(freq_sketch, pers_sketch, bloom, k, alpha, beta)

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        f_est = self.freq_sketch.update_and_query(item)
        if self.bloom.insert_if_absent(item):
            p_est = self.pers_sketch.update_and_query(item)
        else:
            p_est = self.pers_sketch.query(item)
        self.heap.offer(item, self.alpha * f_est + self.beta * p_est)

    def end_period(self) -> None:
        """React to a period boundary."""
        self.bloom.clear()

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return (
            self.alpha * self.freq_sketch.query(item)
            + self.beta * self.pers_sketch.query(item)
        )

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(
                item=item,
                significance=value,
                frequency=float(self.freq_sketch.query(item)),
                persistency=float(self.pers_sketch.query(item)),
            )
            for item, value in self.heap.best(k)
        ]
