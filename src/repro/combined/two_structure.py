"""Two-structure significant-items baseline.

Paper §V-H: "for each algorithm we maintain two sketches: one for finding
frequent items, and the other for finding persistent items, and we
allocate the whole memory to them evenly."  A shared k-entry min-heap
ranks items by the combined estimate ``α·f̂ + β·p̂``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro import obs
from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts
from repro.summaries.heap import TopKHeap


class TwoStructureSignificant(StreamSummary):
    """Significance ranking from separate frequency and persistency sketches.

    Args:
        freq_sketch: Point-query sketch counting every arrival.
        pers_sketch: Point-query sketch counting period-first appearances.
        bloom: Per-period dedup filter for the persistency side.
        k: Heap capacity.
        alpha: Frequency weight.
        beta: Persistency weight.
    """

    def __init__(
        self,
        freq_sketch,
        pers_sketch,
        bloom: BloomFilter,
        k: int,
        alpha: float,
        beta: float,
    ):
        self.freq_sketch = freq_sketch
        self.pers_sketch = pers_sketch
        self.bloom = bloom
        self.heap = TopKHeap(k)
        self.alpha = alpha
        self.beta = beta
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(
        cls,
        sketch_cls,
        budget: MemoryBudget,
        k: int,
        alpha: float,
        beta: float,
        rows: int = 3,
        seed: int = 0x5EED,
    ) -> "TwoStructureSignificant":
        """Paper sizing: even split; the persistent half is itself split
        between its Bloom filter and its sketch (§V-C)."""
        freq_budget, pers_budget = budget.halves()
        bloom_budget, pers_sketch_budget = pers_budget.halves()
        freq_sketch = sketch_cls.from_memory(
            freq_budget, rows=rows, heap_k=k, seed=seed
        )
        pers_sketch = sketch_cls.from_memory(
            pers_sketch_budget, rows=rows, heap_k=0, seed=seed ^ 0x9E
        )
        bloom = BloomFilter.from_memory(bloom_budget, seed=seed ^ 0xBF)
        return cls(freq_sketch, pers_sketch, bloom, k, alpha, beta)

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        f_est = self.freq_sketch.update_and_query(item)
        if self.bloom.insert_if_absent(item):
            p_est = self.pers_sketch.update_and_query(item)
        else:
            p_est = self.pers_sketch.query(item)
        self.heap.offer(item, self.alpha * f_est + self.beta * p_est)

    def insert_many(self, items, counts: Optional[Sequence[int]] = None) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        The frequency sketch sees every arrival, so its per-event
        estimates come from ``update_and_query_many`` in one pass; the
        Bloom verdicts likewise.  The persistency side stays a stream-
        order loop because conservative updates and queries of duplicate
        arrivals interleave with other items' updates — only the heap
        offer gains the provable no-op skip.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        if self._m_batch is not None:
            self._m_batch.observe(len(items))
        batch_query = getattr(self.freq_sketch, "update_and_query_many", None)
        if batch_query is not None:
            f_ests = batch_query(items)
            if hasattr(f_ests, "tolist"):
                f_ests = f_ests.tolist()
        else:
            update_and_query = self.freq_sketch.update_and_query
            f_ests = [update_and_query(item) for item in items]
        absent = self.bloom.insert_if_absent_many(items)
        pers_update = self.pers_sketch.update_and_query
        pers_query = self.pers_sketch.query
        alpha = self.alpha
        beta = self.beta
        heap = self.heap
        offer = heap.offer
        values = heap._values
        pos = heap._pos
        capacity = heap.capacity
        for item, f_est, fresh in zip(items, f_ests, absent):
            p_est = pers_update(item) if fresh else pers_query(item)
            value = alpha * f_est + beta * p_est
            if (
                len(values) == capacity
                and value <= values[0]
                and item not in pos
            ):
                continue
            offer(item, value)

    def end_period(self) -> None:
        """React to a period boundary."""
        self.bloom.clear()

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return (
            self.alpha * self.freq_sketch.query(item)
            + self.beta * self.pers_sketch.query(item)
        )

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(
                item=item,
                significance=value,
                frequency=float(self.freq_sketch.query(item)),
                persistency=float(self.pers_sketch.query(item)),
            )
            for item, value in self.heap.best(k)
        ]
