"""Exporters: Prometheus text exposition and JSON snapshot files.

Both exporters consume the JSON-safe snapshot dict produced by
:meth:`repro.obs.registry.MetricsRegistry.snapshot`, so a snapshot
written to disk hours ago renders exactly like a live registry — the
``repro-ltc stats`` subcommand relies on this.
"""

from __future__ import annotations

import json
import time
from os import PathLike
from typing import Any, Dict, List, Mapping, Tuple, Union

from repro.obs.registry import MetricsRegistry, NullRegistry

Snapshot = Dict[str, Any]
_Path = Union[str, "PathLike[str]"]
_RegistryOrSnapshot = Union[MetricsRegistry, NullRegistry, Snapshot]


def _as_snapshot(source: _RegistryOrSnapshot) -> Snapshot:
    if isinstance(source, dict):
        return source
    return source.snapshot()


def _escape_label_value(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(
    labels: Mapping[str, str], extra: "Tuple[Tuple[str, str], ...]" = ()
) -> str:
    pairs = [
        (str(k), _escape_label_value(v)) for k, v in sorted(labels.items())
    ] + list(extra)
    if not pairs:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in pairs) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def prometheus_text(source: _RegistryOrSnapshot) -> str:
    """Render a registry or snapshot in the Prometheus text format.

    Metrics sharing a name (label variants) are grouped under one
    ``# HELP`` / ``# TYPE`` header; histogram buckets are cumulative and
    terminated by the ``+Inf`` bucket, per the exposition-format spec.
    """
    lines: List[str] = []
    seen_headers = set()
    for metric in _as_snapshot(source)["metrics"]:
        name = metric["name"]
        if name not in seen_headers:
            seen_headers.add(name)
            if metric.get("help"):
                lines.append(f"# HELP {name} {metric['help']}")
            lines.append(f"# TYPE {name} {metric['type']}")
        labels = metric.get("labels", {})
        if metric["type"] == "histogram":
            for bucket in metric["buckets"]:
                le = bucket["le"]
                le_str = le if le == "+Inf" else _format_value(float(le))
                lines.append(
                    f"{name}_bucket{_label_str(labels, (('le', le_str),))} "
                    f"{bucket['count']}"
                )
            lines.append(
                f"{name}_sum{_label_str(labels)} "
                f"{_format_value(metric['sum'])}"
            )
            lines.append(
                f"{name}_count{_label_str(labels)} {metric['count']}"
            )
        else:
            lines.append(
                f"{name}{_label_str(labels)} {_format_value(metric['value'])}"
            )
    return "\n".join(lines) + ("\n" if lines else "")


def write_json_snapshot(source: _RegistryOrSnapshot, path: _Path) -> Snapshot:
    """Write a timestamped JSON snapshot to ``path`` and return it."""
    snapshot = dict(_as_snapshot(source))
    snapshot.setdefault(
        "generated_at", time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())
    )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snapshot, fh, indent=2)
        fh.write("\n")
    return snapshot


def load_json_snapshot(path: _Path) -> Snapshot:
    """Read a snapshot previously written by :func:`write_json_snapshot`."""
    with open(path, "r", encoding="utf-8") as fh:
        snapshot = json.load(fh)
    if not isinstance(snapshot, dict) or "metrics" not in snapshot:
        raise ValueError(f"{path}: not a metrics snapshot")
    return snapshot


def snapshot_rows(source: _RegistryOrSnapshot) -> List[Tuple[str, str, str]]:
    """Flatten a snapshot into ``(metric, type, value)`` table rows.

    Histograms render as ``count / sum / p-bucket`` summaries; the CLI's
    ``stats`` subcommand feeds these rows straight into ``format_table``.
    """
    rows: List[Tuple[str, str, str]] = []
    for metric in _as_snapshot(source)["metrics"]:
        label = metric["name"] + _label_str(metric.get("labels", {}))
        if metric["type"] == "histogram":
            value = f"count={metric['count']} sum={_format_value(metric['sum'])}"
        else:
            value = _format_value(metric["value"])
        rows.append((label, metric["type"], value))
    return rows
