"""repro.obs — low-overhead observability for the ingestion engine.

A process-global metrics registry with three primitives (counters,
gauges, fixed-bucket histograms), a no-op :class:`NullRegistry` that
makes disabled observability cost ~nothing on the hot paths, and two
exporters (Prometheus text exposition, JSON snapshot files).

Usage::

    from repro import obs

    obs.enable()                       # install a fresh live registry
    ...build structures, run streams...
    print(obs.export.prometheus_text(obs.registry()))
    obs.export.write_json_snapshot(obs.registry(), "metrics.json")
    obs.disable()                      # back to the shared null registry

Design contract (DESIGN.md, "Observability: the null-registry
strategy"):

* observability is **off by default**; :func:`registry` then returns the
  shared :class:`NullRegistry` whose metrics are shared no-op objects;
* instrumented constructors capture the active registry **once** — call
  :func:`enable` *before* building the structures you want metered;
* metrics never feed back into algorithm state, so enabling them cannot
  change any report (differentially tested in ``tests/test_obs.py``);
* worker *processes* (``repro.distributed.parallel``) inherit the flag
  via fork but their in-worker LTC counters stay in the worker; the
  coordinator-level metrics (retries, crashes, IPC bytes, timings) are
  recorded in the parent and are the supported signal for that engine.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.obs import export
from repro.obs.registry import (
    DEFAULT_BATCH_SIZE_BUCKETS,
    DEFAULT_RATIO_BUCKETS,
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "DEFAULT_TIME_BUCKETS",
    "DEFAULT_RATIO_BUCKETS",
    "DEFAULT_BATCH_SIZE_BUCKETS",
    "enable",
    "disable",
    "is_enabled",
    "registry",
    "export",
    "batch_size_histogram",
]

_NULL = NullRegistry()
_active: Union[MetricsRegistry, NullRegistry] = _NULL


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn observability on and return the active registry.

    Installs ``registry`` when given, otherwise a **fresh**
    :class:`MetricsRegistry` (pass the previous registry back in to
    accumulate across runs).  Structures capture the active registry at
    construction time, so enable observability before building them.
    """
    global _active
    _active = registry if registry is not None else MetricsRegistry()
    return _active


def disable() -> None:
    """Turn observability off (hot paths fall back to the null registry)."""
    global _active
    _active = _NULL


def is_enabled() -> bool:
    """Whether a live registry is installed."""
    return _active.enabled


def registry() -> Union[MetricsRegistry, NullRegistry]:
    """The active registry (the shared null registry when disabled)."""
    return _active


def batch_size_histogram(summary: str) -> Optional[Histogram]:
    """Capture-at-construction helper for ``insert_many`` batch sizes.

    Returns the ``summary_insert_many_batch_size`` histogram labelled with
    ``summary`` when observability is enabled, else ``None`` — callers
    store the result once and guard the hot path with ``is not None``,
    matching the null-registry strategy used by LTC.
    """
    active = _active
    if isinstance(active, NullRegistry) or not active.enabled:
        return None
    return active.histogram(
        "summary_insert_many_batch_size",
        "Items per insert_many call, by summary class",
        buckets=DEFAULT_BATCH_SIZE_BUCKETS,
        labels={"summary": summary},
    )
