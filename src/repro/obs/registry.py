"""Metric primitives and the registry that owns them.

Three metric types, deliberately minimal (no background threads, no
clock reads inside the primitives themselves):

* :class:`Counter` — monotonically increasing count (``inc``);
* :class:`Gauge` — a value that can go up and down (``set``/``inc``/``dec``);
* :class:`Histogram` — observations bucketed over **fixed** boundaries
  chosen at creation time (``observe``), plus running sum and count.

A :class:`MetricsRegistry` hands out get-or-create instances keyed by
``(name, labels)`` and snapshots everything into a JSON-safe dict whose
histogram buckets are already cumulative (Prometheus convention).

The :class:`NullRegistry` is the disabled-mode stand-in: every request
returns a shared do-nothing singleton, so instrumented code can keep
references unconditionally and the only hot-path cost of disabled
observability is the ``is None`` / no-op call the instrumentation site
chooses to pay (see DESIGN.md, "Observability: the null-registry
strategy").
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple, Type, TypeVar, Union

LabelsArg = Optional[Mapping[str, str]]
_LabelsKey = Tuple[Tuple[str, str], ...]

# Default boundaries for second-scale timings (coordinator/merge paths).
DEFAULT_TIME_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0,
)
# Default boundaries for [0, 1] ratios (recall, precision, error rates).
DEFAULT_RATIO_BUCKETS: Tuple[float, ...] = (
    0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0,
)
# Default boundaries for insert_many batch sizes (items per call); powers
# of 8 span single-event fallbacks up to whole-period batches.
DEFAULT_BATCH_SIZE_BUCKETS: Tuple[float, ...] = (
    1, 8, 64, 512, 4096, 32768, 262144,
)


def _labels_key(labels: LabelsArg) -> _LabelsKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, help: str = "", labels: _LabelsKey = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be non-negative) to the count."""
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Gauge:
    """A value that can move in both directions."""

    __slots__ = ("name", "help", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, help: str = "", labels: _LabelsKey = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        self.value = value

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        """Subtract ``amount``."""
        self.value -= amount

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "value": self.value,
        }


class Histogram:
    """Observations over fixed bucket boundaries.

    Args:
        name: Metric name.
        help: One-line description.
        buckets: Strictly increasing upper bounds; an implicit ``+Inf``
            bucket always terminates the list.
        labels: Frozen label set (installed by the registry).
    """

    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count")
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: _LabelsKey = (),
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if list(bounds) != sorted(set(bounds)):
            raise ValueError("bucket boundaries must be strictly increasing")
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)  # last = +Inf
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative(self) -> List[Tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        out: List[Tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + self.counts[-1]))
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "type": self.kind,
            "help": self.help,
            "labels": dict(self.labels),
            "buckets": [
                {"le": ("+Inf" if bound == float("inf") else bound), "count": c}
                for bound, c in self.cumulative()
            ],
            "sum": self.sum,
            "count": self.count,
        }


_Metric = Union[Counter, Gauge, Histogram]
_M = TypeVar("_M", Counter, Gauge, Histogram)


class MetricsRegistry:
    """Get-or-create store of metrics keyed by ``(name, labels)``.

    Requesting an existing ``(name, labels)`` pair returns the same
    instance; requesting an existing name with a different metric type
    raises, so one name never mixes types across label sets.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, _LabelsKey], _Metric] = {}
        self._kinds: Dict[str, str] = {}

    def _get(
        self, cls: Type[_M], name: str, help: str, labels: LabelsArg, **kwargs: Any
    ) -> _M:
        key = (name, _labels_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind or not isinstance(metric, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {metric.kind}"
                )
            return metric
        if self._kinds.setdefault(name, cls.kind) != cls.kind:
            raise ValueError(
                f"metric {name!r} already registered as {self._kinds[name]}"
            )
        metric = cls(name, help=help, labels=key[1], **kwargs)
        self._metrics[key] = metric
        return metric

    def counter(
        self, name: str, help: str = "", labels: LabelsArg = None
    ) -> Counter:
        """Get or create a counter."""
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: LabelsArg = None) -> Gauge:
        """Get or create a gauge."""
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: LabelsArg = None,
    ) -> Histogram:
        """Get or create a histogram (boundaries fixed on first creation)."""
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def metrics(self) -> List[_Metric]:
        """Every registered metric, sorted by ``(name, labels)``.

        Natural tuple ordering puts the unlabeled series (empty labels
        key) ahead of its labeled variants, the conventional exposition
        order.
        """
        return [self._metrics[key] for key in sorted(self._metrics)]

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe snapshot of every metric (the exporters' input)."""
        return {"metrics": [m.to_dict() for m in self.metrics()]}


class _NullMetric:
    """Shared do-nothing metric: every mutator is a no-op."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:  # noqa: D102 - no-op
        pass

    def dec(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_METRIC = _NullMetric()


class NullRegistry:
    """Disabled-mode registry: hands out the shared no-op metric."""

    enabled = False

    def counter(
        self, name: str, help: str = "", labels: LabelsArg = None
    ) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    def gauge(
        self, name: str, help: str = "", labels: LabelsArg = None
    ) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = DEFAULT_TIME_BUCKETS,
        labels: LabelsArg = None,
    ) -> _NullMetric:
        """Return the shared no-op metric."""
        return _NULL_METRIC

    def metrics(self) -> List[_Metric]:
        """Always empty."""
        return []

    def snapshot(self) -> Dict[str, Any]:
        """Always empty."""
        return {"metrics": []}
