"""Seeded hash family used in the library's hot paths.

The family is built on splitmix64, a well-distributed 64-bit mixer with a
single multiply-xor-shift pipeline — deterministic across processes (unlike
Python's builtin ``hash`` for strings) and several times faster in pure
Python than a byte-oriented hash such as Bob Hash.  Accuracy experiments are
hash-agnostic (see ``tests/test_hash_agnostic.py``), so swapping in
:class:`repro.hashing.bobhash.BobHash` changes nothing but speed.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable

try:  # numpy accelerates batch updates; everything degrades to loops without it.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

_MASK64 = 0xFFFFFFFFFFFFFFFF
_GOLDEN = 0x9E3779B97F4A7C15


def splitmix64(x: int) -> int:
    """Mix a 64-bit integer through the splitmix64 finaliser.

    This is the output function of Steele et al.'s SplitMix generator; it is
    a bijection on 64-bit integers with full avalanche.
    """
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (x ^ (x >> 31)) & _MASK64


def splitmix64_array(keys: Any) -> Any:
    """Vectorised :func:`splitmix64` over a ``uint64`` numpy array.

    Bit-for-bit identical to the scalar function per element (uint64
    arithmetic wraps modulo 2**64 exactly like the scalar's masking).
    Requires numpy; callers gate on :func:`numpy_available`.
    """
    x = keys + _np.uint64(_GOLDEN)
    x = (x ^ (x >> _np.uint64(30))) * _np.uint64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _np.uint64(27))) * _np.uint64(0x94D049BB133111EB)
    return x ^ (x >> _np.uint64(31))


def numpy_available() -> bool:
    """Whether the numpy-vectorised batch paths can be used."""
    return _np is not None


def as_key_array(keys: Any) -> Any:
    """Canonicalise a batch of integer keys to a ``uint64`` numpy array.

    Matches the scalar paths' implicit masking: ``splitmix64`` masks its
    input to 64 bits, so out-of-range or negative keys reduce modulo
    2**64 — the fallback loop applies the same reduction.
    """
    try:
        return _np.asarray(keys, dtype=_np.uint64)
    except (OverflowError, TypeError, ValueError):
        return _np.array([int(k) & _MASK64 for k in keys], dtype=_np.uint64)


def fnv1a64(data: bytes) -> int:
    """FNV-1a 64-bit hash of ``data`` (used to canonicalise non-int keys)."""
    h = 0xCBF29CE484222325
    for byte in data:
        h ^= byte
        h = (h * 0x100000001B3) & _MASK64
    return h


def canonical_key(item: Hashable) -> int:
    """Reduce an item identifier to a canonical 64-bit integer key.

    Streams in this library carry integer item identifiers natively (IPs,
    user ids, flow ids).  Strings and bytes are digested with FNV-1a so that
    arbitrary identifiers can be fed to any summary.
    """
    if isinstance(item, int):
        return item & _MASK64
    if isinstance(item, str):
        return fnv1a64(item.encode("utf-8"))
    if isinstance(item, (bytes, bytearray)):
        return fnv1a64(bytes(item))
    raise TypeError(f"unsupported item key type: {type(item)!r}")


class HashFamily:
    """A family of pairwise-independent-style hash functions.

    ``HashFamily(seed)`` derives any number of member functions; member ``i``
    is ``h_i(key) = splitmix64(key XOR seed_i)`` where the ``seed_i`` are a
    splitmix64 stream from the family seed.  Members are accessed by index
    so data structures can document exactly how many independent functions
    they consume.
    """

    def __init__(self, seed: int = 0x5EED) -> None:
        self.seed = seed & _MASK64
        self._member_seeds: list[int] = []

    def _seed_for(self, index: int) -> int:
        while len(self._member_seeds) <= index:
            nxt = splitmix64(self.seed + _GOLDEN * (len(self._member_seeds) + 1))
            self._member_seeds.append(nxt)
        return self._member_seeds[index]

    def hash(self, index: int, key: int) -> int:
        """Return the 64-bit hash of integer ``key`` under member ``index``."""
        return splitmix64(key ^ self._seed_for(index))

    def bucket(self, index: int, key: int, n: int) -> int:
        """Map ``key`` to ``[0, n)`` under member ``index``."""
        return splitmix64(key ^ self._seed_for(index)) % n

    def buckets(self, key: int, n: int, count: int) -> Iterable[int]:
        """Yield ``count`` bucket indices in ``[0, n)`` for ``key``."""
        for i in range(count):
            yield splitmix64(key ^ self._seed_for(i)) % n

    def sign(self, index: int, key: int) -> int:
        """Return a ±1 sign for ``key`` (used by the Count sketch)."""
        return 1 if self.hash(index, key) & 1 else -1

    def member(self, index: int) -> Callable[[int], int]:
        """Return member ``index`` as a standalone ``key -> int`` callable."""
        seed = self._seed_for(index)
        return lambda key: splitmix64(key ^ seed)

    def hash_array(self, index: int, keys: Any) -> Any:
        """Vectorised :meth:`hash` over a ``uint64`` numpy array of keys.

        Element-for-element equal to ``member(index)`` applied per key.
        """
        return splitmix64_array(keys ^ _np.uint64(self._seed_for(index)))
