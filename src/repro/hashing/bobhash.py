"""Bob Jenkins' lookup3 hash ("Bob Hash"), as used by the paper.

This is a faithful pure-Python port of the byte-oriented branch of
``hashlittle()`` from Bob Jenkins' ``lookup3.c`` (public domain, May 2006).
It produces the same 32-bit values as the C reference for any byte string
and any initial value, which lets the test suite pin the implementation to
the reference self-test vectors.

The paper's C++ implementation hashes with Bob Hash [43]; all structures in
this library accept any callable ``(key, seed) -> int``, so :class:`BobHash`
can be swapped in wherever the faster default family is used.
"""

from __future__ import annotations

_MASK32 = 0xFFFFFFFF


def _rot(x: int, k: int) -> int:
    """Rotate the 32-bit value ``x`` left by ``k`` bits."""
    return ((x << k) | (x >> (32 - k))) & _MASK32


def _mix(a: int, b: int, c: int) -> "tuple[int, int, int]":
    """lookup3 ``mix()``: reversibly mix three 32-bit values."""
    a = (a - c) & _MASK32
    a ^= _rot(c, 4)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 6)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 8)
    b = (b + a) & _MASK32
    a = (a - c) & _MASK32
    a ^= _rot(c, 16)
    c = (c + b) & _MASK32
    b = (b - a) & _MASK32
    b ^= _rot(a, 19)
    a = (a + c) & _MASK32
    c = (c - b) & _MASK32
    c ^= _rot(b, 4)
    b = (b + a) & _MASK32
    return a, b, c


def _final(a: int, b: int, c: int) -> int:
    """lookup3 ``final()``: irreversibly mix and return ``c``."""
    c ^= b
    c = (c - _rot(b, 14)) & _MASK32
    a ^= c
    a = (a - _rot(c, 11)) & _MASK32
    b ^= a
    b = (b - _rot(a, 25)) & _MASK32
    c ^= b
    c = (c - _rot(b, 16)) & _MASK32
    a ^= c
    a = (a - _rot(c, 4)) & _MASK32
    b ^= a
    b = (b - _rot(a, 14)) & _MASK32
    c ^= b
    c = (c - _rot(b, 24)) & _MASK32
    return c


def bob_hash(data: bytes, initval: int = 0) -> int:
    """Hash ``data`` to a 32-bit value, identical to lookup3 ``hashlittle``.

    Args:
        data: The bytes to hash.
        initval: Any 32-bit seed; different seeds give independent hashes.

    Returns:
        A 32-bit unsigned hash value.
    """
    length = len(data)
    a = b = c = (0xDEADBEEF + length + initval) & _MASK32

    offset = 0
    while length > 12:
        a = (a + int.from_bytes(data[offset : offset + 4], "little")) & _MASK32
        b = (b + int.from_bytes(data[offset + 4 : offset + 8], "little")) & _MASK32
        c = (c + int.from_bytes(data[offset + 8 : offset + 12], "little")) & _MASK32
        a, b, c = _mix(a, b, c)
        offset += 12
        length -= 12

    if length == 0:
        return c

    tail = data[offset : offset + length]
    # The C switch falls through, accumulating the tail bytes little-endian
    # into a (bytes 0-3), b (bytes 4-7) and c (bytes 8-11).
    for i, byte in enumerate(tail):
        shift = (i % 4) * 8
        if i < 4:
            a = (a + (byte << shift)) & _MASK32
        elif i < 8:
            b = (b + (byte << shift)) & _MASK32
        else:
            c = (c + (byte << shift)) & _MASK32
    return _final(a, b, c)


class BobHash:
    """A seeded Bob Hash usable wherever a ``(key) -> int`` callable is needed.

    Integer keys are serialised little-endian over 8 bytes, so equal integers
    always hash equally regardless of magnitude; ``str`` keys are UTF-8
    encoded; ``bytes`` pass through.
    """

    def __init__(self, seed: int = 0):
        self.seed = seed & _MASK32

    def __call__(self, key) -> int:
        if isinstance(key, int):
            data = (key & 0xFFFFFFFFFFFFFFFF).to_bytes(8, "little")
        elif isinstance(key, str):
            data = key.encode("utf-8")
        elif isinstance(key, (bytes, bytearray)):
            data = bytes(key)
        else:
            raise TypeError(f"unhashable key type for BobHash: {type(key)!r}")
        return bob_hash(data, self.seed)

    def bucket(self, key, n: int) -> int:
        """Map ``key`` to a bucket index in ``[0, n)``."""
        return self(key) % n
