"""Hash functions and seeded hash families.

The paper hashes items with Bob Jenkins' hash ("Bob Hash").  This package
provides a faithful pure-Python port of Jenkins' ``lookup3`` ``hashlittle``
(:mod:`repro.hashing.bobhash`) together with a faster splitmix64-based seeded
family (:mod:`repro.hashing.family`) that is the default in the hot paths.
Both expose the same callable interface, so every data structure in this
library is hash-agnostic.
"""

from repro.hashing.bobhash import BobHash, bob_hash
from repro.hashing.family import (
    HashFamily,
    canonical_key,
    fnv1a64,
    splitmix64,
)

__all__ = [
    "BobHash",
    "bob_hash",
    "HashFamily",
    "canonical_key",
    "fnv1a64",
    "splitmix64",
]
