"""Serving tier: concurrent ingestion plus an O(1)/O(k) query path.

The batch experiments answer "which items are significant?" by walking
the whole LTC table after the run.  This package turns the structure
into a long-running service: an asyncio HTTP server
(:mod:`repro.serve.server`) ingests batches through ``insert_many`` on a
background task while queries are answered from a maintained inverted
index (:mod:`repro.serve.index`) kept honest by the cell-mutation
notifications of :mod:`repro.core.hooks` — no table scan on the read
path.  Snapshot rotation (:mod:`repro.serve.snapshots`) checkpoints the
structure with the v3 binary format so a killed server restarts from
the newest intact snapshot, and every served answer can be pinned
byte-equal to the full-scan oracle in :mod:`repro.serve.oracle`.

Start one from the command line with ``repro-ltc serve``.
"""

from repro.serve.index import ServingIndex
from repro.serve.oracle import (
    canonical_json,
    oracle_query,
    oracle_significant,
    oracle_top_k,
    query_payload,
    reports_payload,
    scan_reports,
)
from repro.serve.server import ServingApp, run_app
from repro.serve.snapshots import SnapshotStore

__all__ = [
    "ServingApp",
    "ServingIndex",
    "SnapshotStore",
    "canonical_json",
    "oracle_query",
    "oracle_significant",
    "oracle_top_k",
    "query_payload",
    "reports_payload",
    "run_app",
    "scan_reports",
]
