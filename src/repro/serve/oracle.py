"""Full-scan oracle for the serving tier's index-vs-scan identity gate.

Every answer the serving index produces must be **byte-equal** to what a
full scan of the table would serve.  This module is the scan side: it
walks every cell through :meth:`repro.core.ltc.LTC.cell_state` (no dict,
no heap, no bucket hash — a deliberately independent code path) and
builds the same payload shapes the server encodes.  Both sides compute
significance as ``alpha * f + beta * p`` on plain Python ints and both
serialize through :func:`canonical_json`, so any divergence in values,
ordering, or tie-breaking shows up as a byte difference.

The differential tests and ``benchmarks/bench_serving.py`` compare
``canonical_json(payload)`` from the two paths after every probe.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.core.ltc import LTC

#: ``(item, significance, frequency, persistency)`` — the tuple shape
#: shared with :class:`repro.serve.index.ServingIndex` results.
Report = Tuple[int, float, int, int]


def canonical_json(payload: Any) -> bytes:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, separators=(",", ":"), sort_keys=True).encode()


def reports_payload(reports: Sequence[Report]) -> List[Dict[str, Any]]:
    """JSON shape of a ranked report list (shared served/oracle shape)."""
    return [
        {
            "item": int(item),
            "significance": float(sig),
            "frequency": int(f),
            "persistency": int(p),
        }
        for item, sig, f, p in reports
    ]


def query_payload(
    item: int, tracked: bool, sig: float, f: int, p: int
) -> Dict[str, Any]:
    """JSON shape of a point-query answer (shared served/oracle shape)."""
    return {
        "item": int(item),
        "tracked": bool(tracked),
        "significance": float(sig),
        "frequency": int(f),
        "persistency": int(p),
    }


def scan_reports(ltc: LTC) -> List[Report]:
    """Every tracked item, ranked by ``(-significance, item)`` — full scan."""
    alpha = float(ltc.config.alpha)
    beta = float(ltc.config.beta)
    out: List[Report] = []
    for slot in range(ltc.total_cells):
        key, f, p = ltc.cell_state(slot)
        if key is None:
            continue
        out.append((key, alpha * f + beta * p, f, p))
    out.sort(key=lambda r: (-r[1], r[0]))
    return out


def oracle_top_k(ltc: LTC, k: int) -> Dict[str, Any]:
    """Payload a full scan would serve for ``GET /top_k?k=...``."""
    return {"k": int(k), "results": reports_payload(scan_reports(ltc)[:k])}


def oracle_significant(ltc: LTC, threshold: float) -> Dict[str, Any]:
    """Payload a full scan would serve for ``GET /significant?...``."""
    ranked = [r for r in scan_reports(ltc) if r[1] >= threshold]
    return {"threshold": float(threshold), "results": reports_payload(ranked)}


def oracle_query(ltc: LTC, item: int) -> Dict[str, Any]:
    """Payload a full scan would serve for ``GET /query/<item>``."""
    for slot in range(ltc.total_cells):
        key, f, p = ltc.cell_state(slot)
        if key == item:
            alpha = float(ltc.config.alpha)
            beta = float(ltc.config.beta)
            return query_payload(item, True, alpha * f + beta * p, f, p)
    return query_payload(item, False, 0.0, 0, 0)
