"""ServingIndex: inverted index + lazy top-k heap over a live LTC.

The read path of the serving tier must not scan the table: a point query
is one dict probe, ``top_k`` pops ``k`` entries off a heap, and
``significant`` pops until the significance drops below the threshold.
The index stays correct under concurrent ingestion because every kernel
mutation — hit, CLOCK harvest, Significance Decrementing, eviction,
Long-tail Replacement — notifies the attached
:class:`repro.core.hooks.CellListener` with the touched slot id.

Invalidation strategy (DESIGN.md §12):

* notifications are *deferred*: a touched slot is marked dirty (one
  bytearray flag, so duplicate touches are free) and queued; nothing
  else happens on the ingest hot path;
* before answering any query the index **repairs**: each queued slot is
  re-read through :meth:`repro.core.ltc.LTC.cell_state`, diffed against
  the index's own mirror of the key column (a departed key is removed
  from the item→slot dict only if it still maps to this slot — the item
  may have been re-inserted elsewhere between repairs), the slot's
  version is bumped, and a fresh ``(-significance, item, slot, version)``
  entry is pushed onto the heap;
* heap entries are validated lazily on pop: an entry is live iff its
  version equals the slot's current version, so stale entries from
  earlier repairs cost one pop each and are dropped.  The heap is
  compacted (rebuilt from live cells) when it outgrows a small multiple
  of the table size, bounding memory.

Significance is computed as ``alpha * f + beta * p`` on plain Python
ints, the same expression the full-scan oracle uses, so served answers
are bit-identical to the oracle's (the ``-(-x)`` round-trip through the
heap only flips the IEEE-754 sign bit).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.ltc import LTC

#: ``(-significance, item, slot, version)`` — heap order equals the
#: oracle's report order ``(-significance, item)`` because at most one
#: live entry exists per slot (and so per item).
HeapEntry = Tuple[float, int, int, int]

#: ``(item, significance, frequency, persistency)`` as served.
Report = Tuple[int, float, int, int]


class ServingIndex:
    """Item→cell inverted index with a lazily-repaired top-k heap.

    Attaches itself as the structure's cell listener on construction;
    call :meth:`close` to detach (e.g. before handing the LTC to code
    that should not pay the notification branch).
    """

    def __init__(self, ltc: LTC) -> None:
        self._ltc = ltc
        self._alpha = float(ltc.config.alpha)
        self._beta = float(ltc.config.beta)
        m = ltc.total_cells
        self._m = m
        self._mirror: List[Optional[int]] = [None] * m
        self._slot_of: Dict[int, int] = {}
        self._version: List[int] = [0] * m
        self._heap: List[HeapEntry] = []
        self._dirty = bytearray(m)
        self._pending: List[int] = []
        #: Repair passes run (visible in /stats; tests assert laziness).
        self.repairs = 0
        ltc.attach_cell_listener(self)
        # Attach does not replay history: adopt whatever the table holds
        # now (restored snapshots arrive mid-life) by dirtying all slots.
        self.cells_touched(range(m))

    # ------------------------------------------------- CellListener protocol
    def cell_touched(self, slot: int) -> None:
        if not self._dirty[slot]:
            self._dirty[slot] = 1
            self._pending.append(slot)

    def cells_touched(self, slots: Iterable[int]) -> None:
        dirty = self._dirty
        pending = self._pending
        for slot in slots:
            if not dirty[slot]:
                dirty[slot] = 1
                pending.append(slot)

    def cells_reset(self) -> None:
        self._mirror = [None] * self._m
        self._slot_of.clear()
        self._heap.clear()
        self._dirty = bytearray(self._m)
        self._pending.clear()

    # ---------------------------------------------------------------- repair
    def _repair(self) -> None:
        """Fold queued mutations into the dict/heap (runs before queries)."""
        pending = self._pending
        if not pending:
            return
        ltc = self._ltc
        mirror = self._mirror
        slot_of = self._slot_of
        version = self._version
        heap = self._heap
        dirty = self._dirty
        alpha, beta = self._alpha, self._beta
        for slot in pending:
            dirty[slot] = 0
            key, f, p = ltc.cell_state(slot)
            old = mirror[slot]
            if old is not None and old != key and slot_of.get(old) == slot:
                del slot_of[old]
            mirror[slot] = key
            v = version[slot] + 1
            version[slot] = v
            if key is not None:
                slot_of[key] = slot
                heapq.heappush(heap, (-(alpha * f + beta * p), key, slot, v))
        pending.clear()
        self.repairs += 1
        if len(heap) > max(64, 4 * self._m):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live cells, dropping stale entries."""
        mirror = self._mirror
        version = self._version
        alpha, beta = self._alpha, self._beta
        ltc = self._ltc
        fresh: List[HeapEntry] = []
        for slot, key in enumerate(mirror):
            if key is None:
                continue
            _, f, p = ltc.cell_state(slot)
            fresh.append((-(alpha * f + beta * p), key, slot, version[slot]))
        heapq.heapify(fresh)
        self._heap = fresh

    def _live(self, entry: HeapEntry) -> bool:
        _, item, slot, v = entry
        return self._version[slot] == v and self._mirror[slot] == item

    # --------------------------------------------------------------- queries
    def query(self, item: int) -> Tuple[bool, float, int, int]:
        """``(tracked, significance, frequency, persistency)`` — O(1)."""
        self._repair()
        slot = self._slot_of.get(item)
        if slot is None:
            return False, 0.0, 0, 0
        _, f, p = self._ltc.cell_state(slot)
        return True, self._alpha * f + self._beta * p, f, p

    def top_k(self, k: int) -> List[Report]:
        """The ``k`` most significant tracked items — O(k log m) pops."""
        self._repair()
        heap = self._heap
        kept: List[HeapEntry] = []
        out: List[Report] = []
        while heap and len(out) < k:
            entry = heapq.heappop(heap)
            if not self._live(entry):
                continue
            kept.append(entry)
            negsig, item, slot, _ = entry
            _, f, p = self._ltc.cell_state(slot)
            out.append((item, -negsig, f, p))
        for entry in kept:
            heapq.heappush(heap, entry)
        return out

    def significant(self, threshold: float) -> List[Report]:
        """All tracked items with significance ≥ ``threshold``, ranked."""
        self._repair()
        heap = self._heap
        kept: List[HeapEntry] = []
        out: List[Report] = []
        while heap and -heap[0][0] >= threshold:
            entry = heapq.heappop(heap)
            if not self._live(entry):
                continue
            kept.append(entry)
            negsig, item, slot, _ = entry
            _, f, p = self._ltc.cell_state(slot)
            out.append((item, -negsig, f, p))
        for entry in kept:
            heapq.heappush(heap, entry)
        return out

    def tracked(self) -> int:
        """Number of currently tracked items."""
        self._repair()
        return len(self._slot_of)

    def heap_size(self) -> int:
        """Current heap length including stale entries (tests/stats)."""
        return len(self._heap)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Detach from the structure (hot paths go branch-cheap again)."""
        self._ltc.detach_cell_listener()
