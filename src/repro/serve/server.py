"""Asyncio HTTP service: concurrent ingest + O(1)/O(k) queries.

Stdlib only — a minimal HTTP/1.1 layer over ``asyncio.start_server``
(every response is ``Connection: close``, which keeps shutdown exact).
Ingestion and queries share one event loop: ``POST /ingest`` enqueues a
batch and returns immediately; a background worker applies batches
through ``insert_many`` in chunks, yielding to the loop between chunks
so queries interleave.  Queries are answered **synchronously** inside
the handler — the event loop never switches tasks mid-answer, so every
response reflects one consistent table state (this is also what lets
the oracle self-check compare served bytes against a full scan of the
very same state).

Endpoints:

* ``GET  /top_k?k=10``          — k most significant items (index heap);
* ``GET  /query/<item>``        — point significance (index dict probe);
* ``GET  /significant?threshold=x`` — all items ≥ threshold, ranked;
* ``POST /ingest``              — JSON ``{"items": [...], "counts": [...]}``;
* ``POST /snapshot``            — checkpoint now (also rotates);
* ``GET  /stats``               — ingest/queue/index/snapshot counters;
* ``GET  /metrics``             — Prometheus text via :mod:`repro.obs`;
* ``GET  /healthz``             — liveness.

A SIGTERM/SIGINT stops accepting connections, drains every queued
batch, writes a final snapshot (when a store is configured) and exits
cleanly — the kill-and-restart test in ``tests/test_serve_server.py``
drives this end to end through the CLI.
"""

from __future__ import annotations

import asyncio
import json
import signal
from typing import Any, Callable, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro import obs
from repro.core.ltc import LTC
from repro.serve.index import ServingIndex
from repro.serve.oracle import (
    canonical_json,
    oracle_query,
    oracle_significant,
    oracle_top_k,
    query_payload,
    reports_payload,
)
from repro.serve.snapshots import SnapshotStore
from repro.summaries.base import expand_counts

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    500: "Internal Server Error",
    503: "Service Unavailable",
}
_JSON = "application/json"
_TEXT = "text/plain; version=0.0.4; charset=utf-8"

#: Events applied per worker step before yielding back to the loop.
_INGEST_CHUNK = 4096

#: Queue item: a batch of events, or ``None`` = drain-and-exit sentinel.
_Batch = Optional[List[int]]
Response = Tuple[int, str, bytes]


class OracleMismatch(AssertionError):
    """A served answer diverged from the full-scan oracle (self-check)."""


class ServingApp:
    """Routing, ingest worker and snapshot rotation around one LTC."""

    def __init__(
        self,
        ltc: LTC,
        *,
        snapshots: Optional[SnapshotStore] = None,
        snapshot_every: int = 0,
        check_oracle: bool = False,
        ingest_chunk: int = _INGEST_CHUNK,
    ) -> None:
        self.ltc = ltc
        self.index = ServingIndex(ltc)
        self.snapshots = snapshots
        #: Batches between automatic snapshots (0 = only at shutdown).
        self.snapshot_every = snapshot_every
        #: Compare every served answer to the full-scan oracle (bench
        #: identity gate / differential tests; costs a table scan per
        #: query, so off in production).
        self.check_oracle = check_oracle
        self.ingest_chunk = ingest_chunk
        self.ingested = 0
        self.queued = 0
        self.batches = 0
        self.periods = 0
        self.snapshots_written = 0
        self.oracle_checks = 0
        # Count-based period driving: one end_period() every
        # items_per_period applied events, exactly as StreamModel.play
        # drives a batch run.  A restored checkpoint resumes mid-period.
        self._period_len = ltc.config.items_per_period
        self._fill = ltc.period_fill
        self._queue: "asyncio.Queue[_Batch]" = asyncio.Queue()
        self._worker: Optional["asyncio.Task[None]"] = None
        # The null registry hands back no-op metrics when observability
        # is disabled, so these register unconditionally; the per-request
        # inc is control-plane cost, not kernel hot path.
        reg = obs.registry()
        self._m_requests = reg.counter(
            "serve_requests_total", "HTTP requests served"
        )
        self._m_events = reg.counter(
            "serve_ingest_events_total", "events applied by the ingest worker"
        )
        self._m_snapshots = reg.counter(
            "serve_snapshots_total", "snapshots written"
        )

    # ---------------------------------------------------------------- ingest
    def submit(self, items: List[int], counts: Optional[List[int]] = None) -> int:
        """Queue one batch for the worker; returns the event count."""
        if counts is not None:
            items = list(expand_counts(items, counts))
        self._queue.put_nowait(items)
        self.queued += len(items)
        return len(items)

    def start(self) -> None:
        """Start the ingest worker (must run inside an event loop)."""
        if self._worker is None:
            self._worker = asyncio.get_running_loop().create_task(
                self._run_worker()
            )

    async def _run_worker(self) -> None:
        while True:
            batch = await self._queue.get()
            try:
                if batch is None:
                    return
                await self._apply(batch)
            finally:
                self._queue.task_done()

    async def _apply(self, items: List[int]) -> None:
        total = len(items)
        i = 0
        while i < total:
            take = min(self.ingest_chunk, total - i, self._period_len - self._fill)
            part = items[i : i + take]
            # Chunked insert_many is replay-identical to one call (the
            # CLOCK accumulator carries across calls), so yielding
            # between chunks changes only query interleaving.  Chunks
            # additionally split at period boundaries so end_period
            # lands after exactly items_per_period applied events.
            self.ltc.insert_many(part)
            self._fill += take
            i += take
            self.ingested += take
            self.queued -= take
            self._m_events.inc(take)
            if self._fill == self._period_len:
                self.ltc.end_period()
                self._fill = 0
                self.periods += 1
            await asyncio.sleep(0)
        self.batches += 1
        if (
            self.snapshots is not None
            and self.snapshot_every > 0
            and self.batches % self.snapshot_every == 0
        ):
            self.save_snapshot()

    async def shutdown(self) -> None:
        """Drain queued batches, stop the worker, write a final snapshot."""
        if self._worker is not None:
            self._queue.put_nowait(None)
            await self._worker
            self._worker = None
        if self.snapshots is not None:
            self.save_snapshot()

    def save_snapshot(self) -> Optional[str]:
        """Checkpoint now through the configured store (rotates)."""
        if self.snapshots is None:
            return None
        path = self.snapshots.save(self.ltc)
        self.snapshots_written += 1
        self._m_snapshots.inc()
        return path.name

    # --------------------------------------------------------------- routing
    def respond(self, method: str, target: str, body: bytes = b"") -> Response:
        """Answer one request synchronously (single consistent state)."""
        self._m_requests.inc()
        parts = urlsplit(target)
        path = parts.path
        query = parse_qs(parts.query)
        if path == "/top_k":
            if method != "GET":
                return self._method_not_allowed()
            k = self._int_param(query, "k", 10)
            if k is None or k < 0:
                return self._bad_request("k must be a non-negative integer")
            payload = {"k": k, "results": reports_payload(self.index.top_k(k))}
            return self._answer(payload, lambda: oracle_top_k(self.ltc, k))
        if path.startswith("/query/"):
            if method != "GET":
                return self._method_not_allowed()
            try:
                item = int(path[len("/query/") :])
            except ValueError:
                return self._bad_request("item must be an integer")
            tracked, sig, f, p = self.index.query(item)
            payload = query_payload(item, tracked, sig, f, p)
            return self._answer(payload, lambda: oracle_query(self.ltc, item))
        if path == "/significant":
            if method != "GET":
                return self._method_not_allowed()
            threshold = self._float_param(query, "threshold")
            if threshold is None:
                return self._bad_request("threshold must be a number")
            payload = {
                "threshold": float(threshold),
                "results": reports_payload(self.index.significant(threshold)),
            }
            return self._answer(
                payload, lambda: oracle_significant(self.ltc, threshold)
            )
        if path == "/ingest":
            if method != "POST":
                return self._method_not_allowed()
            return self._ingest(body)
        if path == "/snapshot":
            if method != "POST":
                return self._method_not_allowed()
            if self.snapshots is None:
                return 503, _JSON, canonical_json(
                    {"error": "no snapshot store configured"}
                )
            return 200, _JSON, canonical_json({"snapshot": self.save_snapshot()})
        if path == "/stats":
            return 200, _JSON, canonical_json(self.stats())
        if path == "/metrics":
            if not obs.is_enabled():
                return 503, _JSON, canonical_json(
                    {"error": "observability disabled"}
                )
            text = obs.export.prometheus_text(obs.registry())
            return 200, _TEXT, text.encode()
        if path == "/healthz":
            return 200, _JSON, canonical_json({"status": "ok"})
        return 404, _JSON, canonical_json({"error": f"no route for {path}"})

    def stats(self) -> Dict[str, Any]:
        """Service counters (``GET /stats``; smoke tests poll ``queued``)."""
        return {
            "ingested": self.ingested,
            "queued": self.queued,
            "batches": self.batches,
            "periods": self.periods,
            "tracked": self.index.tracked(),
            "repairs": self.index.repairs,
            "heap_size": self.index.heap_size(),
            "snapshots_written": self.snapshots_written,
            "oracle_checks": self.oracle_checks,
        }

    def _answer(self, payload: Any, oracle: Callable[[], Any]) -> Response:
        served = canonical_json(payload)
        if self.check_oracle:
            expect = canonical_json(oracle())
            self.oracle_checks += 1
            if served != expect:
                raise OracleMismatch(
                    f"served answer diverged from full-scan oracle:\n"
                    f"  served: {served[:512]!r}\n"
                    f"  oracle: {expect[:512]!r}"
                )
        return 200, _JSON, served

    def _ingest(self, body: bytes) -> Response:
        try:
            doc = json.loads(body.decode())
        except (ValueError, UnicodeDecodeError):
            return self._bad_request("body must be JSON")
        if not isinstance(doc, dict) or not isinstance(doc.get("items"), list):
            return self._bad_request('body must be {"items": [...]}')
        items = doc["items"]
        counts = doc.get("counts")
        if counts is not None and (
            not isinstance(counts, list) or len(counts) != len(items)
        ):
            return self._bad_request("counts must parallel items")
        if not all(isinstance(x, int) for x in items):
            return self._bad_request("items must be integers")
        queued = self.submit(items, counts)
        return 200, _JSON, canonical_json(
            {"queued": queued, "pending": self.queued}
        )

    @staticmethod
    def _int_param(
        query: Dict[str, List[str]], name: str, default: int
    ) -> Optional[int]:
        raw = query.get(name)
        if not raw:
            return default
        try:
            return int(raw[0])
        except ValueError:
            return None

    @staticmethod
    def _float_param(
        query: Dict[str, List[str]], name: str
    ) -> Optional[float]:
        raw = query.get(name)
        if not raw:
            return None
        try:
            return float(raw[0])
        except ValueError:
            return None

    @staticmethod
    def _bad_request(message: str) -> Response:
        return 400, _JSON, canonical_json({"error": message})

    @staticmethod
    def _method_not_allowed() -> Response:
        return 405, _JSON, canonical_json({"error": "method not allowed"})

    # ------------------------------------------------------------------ http
    async def handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One connection: parse a request, answer, close."""
        try:
            request = await reader.readline()
            if not request:
                return
            head = request.decode("latin-1").split()
            if len(head) < 2:
                await self._write(writer, self._bad_request("malformed request"))
                return
            method, target = head[0], head[1]
            length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    try:
                        length = int(value.strip())
                    except ValueError:
                        length = 0
            body = await reader.readexactly(length) if length else b""
            try:
                response = self.respond(method, target, body)
            except OracleMismatch:
                raise
            except Exception as exc:  # route bugs become 500s, not hangups
                response = 500, _JSON, canonical_json({"error": str(exc)})
            await self._write(writer, response)
        except (asyncio.IncompleteReadError, ConnectionError):
            pass
        finally:
            try:
                writer.close()
            except RuntimeError:  # pragma: no cover - loop already closed
                pass

    @staticmethod
    async def _write(writer: asyncio.StreamWriter, response: Response) -> None:
        status, ctype, payload = response
        reason = _REASONS.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {ctype}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("latin-1")
        writer.write(head + payload)
        await writer.drain()


async def run_app(
    app: ServingApp,
    host: str = "127.0.0.1",
    port: int = 8421,
    *,
    ready: Optional[Callable[[str, int], None]] = None,
    stop_event: Optional[asyncio.Event] = None,
) -> None:
    """Serve ``app`` until SIGTERM/SIGINT (or ``stop_event``), then drain.

    ``port`` 0 binds an ephemeral port; ``ready(host, actual_port)`` is
    called once listening (the CLI prints it so harnesses can connect).
    """
    app.start()
    server = await asyncio.start_server(app.handle, host, port)
    actual_port = port
    for sock in server.sockets:
        actual_port = sock.getsockname()[1]
        break
    stop = stop_event if stop_event is not None else asyncio.Event()
    loop = asyncio.get_running_loop()
    installed: List[signal.Signals] = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass  # non-main thread / platforms without signal support
    try:
        if ready is not None:
            ready(host, actual_port)
        await stop.wait()
    finally:
        for signum in installed:
            loop.remove_signal_handler(signum)
        server.close()
        await server.wait_closed()
        await app.shutdown()
