"""Snapshot rotation for the serving tier: atomic write, retain-N, recover.

Built on the v3 binary checkpoints of :mod:`repro.core.serialize` —
restoring reproduces the structure exactly (cells, CLOCK phase, parity),
so a server killed and restarted from its newest snapshot continues the
stream bit-identically from that point.

Crash-safety discipline:

* a snapshot is written to ``<name>.tmp``, flushed and fsynced, then
  moved into place with :func:`os.replace` — readers never observe a
  partial snapshot file, only a leftover ``*.tmp`` which is ignored;
* files are named ``snapshot-<seq:09d>.ltc`` so lexicographic order is
  creation order; only the newest ``retain`` are kept;
* :meth:`SnapshotStore.restore` walks newest-first and skips anything
  that fails to parse (truncated by a crash mid-``os.replace`` is not
  possible, but a corrupted disk image is), so startup degrades to the
  newest *intact* snapshot, or a fresh structure when none survives.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path
from typing import List, Optional, Type, Union

from repro.core.ltc import LTC
from repro.core.serialize import from_bytes, to_bytes

_SUFFIX = ".ltc"
_PREFIX = "snapshot-"


class SnapshotStore:
    """Rotating checkpoint directory for one serving structure."""

    def __init__(self, directory: Union[str, Path], retain: int = 3) -> None:
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = retain

    def snapshot_paths(self) -> List[Path]:
        """Complete snapshots, oldest first (``*.tmp`` leftovers excluded)."""
        return sorted(
            p
            for p in self.directory.glob(f"{_PREFIX}*{_SUFFIX}")
            if p.name.endswith(_SUFFIX)
        )

    def _next_seq(self) -> int:
        seq = 0
        for path in self.snapshot_paths():
            try:
                seq = max(seq, int(path.name[len(_PREFIX) : -len(_SUFFIX)]))
            except ValueError:
                continue
        return seq + 1

    # reprolint: blocking-ok — the synchronous write+fsync+rename IS the durability barrier; bounded by snapshot size and serialized by the ingest loop
    def save(self, ltc: LTC) -> Path:
        """Checkpoint ``ltc`` atomically and prune beyond ``retain``."""
        final = self.directory / f"{_PREFIX}{self._next_seq():09d}{_SUFFIX}"
        tmp = final.with_name(final.name + ".tmp")
        blob = to_bytes(ltc)
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, final)
        self._prune()
        return final

    def _prune(self) -> None:
        paths = self.snapshot_paths()
        for path in paths[: -self.retain]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - racing cleanup is benign
                pass
        for leftover in self.directory.glob(f"{_PREFIX}*{_SUFFIX}.tmp"):
            try:
                leftover.unlink()
            except OSError:  # pragma: no cover
                pass

    def restore(self, cls: Type[LTC] = LTC) -> Optional[LTC]:
        """Revive the newest intact snapshot as ``cls``, or ``None``."""
        for path in reversed(self.snapshot_paths()):
            try:
                return from_bytes(path.read_bytes(), cls=cls)
            except (OSError, ValueError, struct.error, IndexError):
                continue
        return None
