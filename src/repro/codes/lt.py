"""LT (Luby Transform) fountain code over XOR of ID chunks.

A ``b``-bit identifier is split into ``num_source`` chunks.  Encoded symbol
``i`` is the XOR of a pseudo-random subset of chunks whose membership is
derived deterministically from ``i`` (so a decoder that knows the symbol
index can rebuild the equation without transmitting it — exactly what PIE
needs, where the symbol index is the filter-cell index).  Degrees follow
the robust-soliton distribution; decoding is the classic belief-propagation
peeling process.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.hashing.family import splitmix64


def split_chunks(value: int, num_chunks: int, chunk_bits: int) -> List[int]:
    """Split ``value`` into ``num_chunks`` little-endian chunks."""
    mask = (1 << chunk_bits) - 1
    return [(value >> (i * chunk_bits)) & mask for i in range(num_chunks)]


def join_chunks(chunks: Sequence[int], chunk_bits: int) -> int:
    """Inverse of :func:`split_chunks`."""
    value = 0
    for i, chunk in enumerate(chunks):
        value |= (chunk & ((1 << chunk_bits) - 1)) << (i * chunk_bits)
    return value


class RobustSoliton:
    """The robust-soliton degree distribution ρ + τ (Luby 2002).

    Args:
        n: Number of source symbols.
        c: Luby's constant (controls the spike location).
        delta: Decoder failure-probability parameter.
    """

    def __init__(self, n: int, c: float = 0.1, delta: float = 0.5):
        if n < 1:
            raise ValueError("n must be >= 1")
        self.n = n
        r = c * math.log(n / delta) * math.sqrt(n) if n > 1 else 1.0
        r = max(r, 1.0)
        spike = max(1, min(n, int(round(n / r))))
        rho = [0.0] * (n + 1)
        rho[1] = 1.0 / n
        for d in range(2, n + 1):
            rho[d] = 1.0 / (d * (d - 1))
        tau = [0.0] * (n + 1)
        for d in range(1, spike):
            tau[d] = r / (d * n)
        tau[spike] = r * math.log(r / delta) / n if r > delta else 0.0
        total = sum(rho) + sum(tau)
        self._cdf: List[float] = []
        acc = 0.0
        for d in range(1, n + 1):
            acc += (rho[d] + tau[d]) / total
            self._cdf.append(acc)

    def degree(self, u: float) -> int:
        """Map a uniform ``u ∈ [0, 1)`` to a degree in ``[1, n]``."""
        for d, threshold in enumerate(self._cdf, start=1):
            if u < threshold:
                return d
        return self.n


class LTCode:
    """Systematic-free LT code over chunked integer identifiers.

    Args:
        num_source: Number of chunks the identifier is split into.
        chunk_bits: Bits per chunk.
        seed: Global seed; encoder and decoder must share it.
        degree: ``"soliton"`` draws degrees from the robust-soliton
            distribution (the asymptotically optimal choice for large
            blocks); ``"uniform"`` draws a uniform non-empty neighbour set
            (a random linear fountain), which has far better rank behaviour
            at the tiny block sizes PIE uses.
    """

    def __init__(
        self,
        num_source: int = 4,
        chunk_bits: int = 8,
        seed: int = 0x17,
        degree: str = "soliton",
    ):
        if num_source < 1:
            raise ValueError("num_source must be >= 1")
        if degree not in ("soliton", "uniform"):
            raise ValueError("degree must be 'soliton' or 'uniform'")
        self.num_source = num_source
        self.chunk_bits = chunk_bits
        self.seed = seed
        self.degree_mode = degree
        self._soliton = RobustSoliton(num_source)

    # --------------------------------------------------------------- encode
    def neighbors(self, symbol_index: int) -> List[int]:
        """The source-chunk subset XORed into symbol ``symbol_index``.

        Deterministic in ``(seed, symbol_index)``; both sides derive it.
        """
        state = splitmix64((self.seed << 32) ^ symbol_index)
        if self.degree_mode == "uniform":
            mask = 1 + state % ((1 << self.num_source) - 1)
            return [j for j in range(self.num_source) if mask >> j & 1]
        u = (state >> 11) / float(1 << 53)
        degree = self._soliton.degree(u)
        chosen: List[int] = []
        remaining = list(range(self.num_source))
        for pick in range(degree):
            state = splitmix64(state)
            idx = state % len(remaining)
            chosen.append(remaining.pop(idx))
        chosen.sort()
        return chosen

    def encode(self, value: int, symbol_index: int) -> int:
        """Encoded symbol ``symbol_index`` for identifier ``value``."""
        chunks = split_chunks(value, self.num_source, self.chunk_bits)
        symbol = 0
        for j in self.neighbors(symbol_index):
            symbol ^= chunks[j]
        return symbol

    # --------------------------------------------------------------- decode
    def decode(
        self, symbols: Sequence[Tuple[int, int]]
    ) -> Optional[int]:
        """Peel-decode an identifier from ``(symbol_index, value)`` pairs.

        Returns the identifier, or None when the received symbols do not
        determine every chunk (or are mutually inconsistent, which happens
        when symbols from different identifiers are mixed).
        """
        equations = [
            (set(self.neighbors(idx)), value) for idx, value in symbols
        ]
        resolved: dict = {}
        progress = True
        while progress and len(resolved) < self.num_source:
            progress = False
            for neighbors, value in equations:
                unknown = neighbors - resolved.keys()
                if len(unknown) != 1:
                    continue
                j = next(iter(unknown))
                chunk = value
                for known in neighbors - {j}:
                    chunk ^= resolved[known]
                resolved[j] = chunk
                progress = True
        if len(resolved) < self.num_source:
            return None
        # Consistency check: every equation must be satisfied.
        for neighbors, value in equations:
            acc = 0
            for j in neighbors:
                acc ^= resolved[j]
            if acc != value:
                return None
        return join_chunks(
            [resolved[j] for j in range(self.num_source)], self.chunk_bits
        )
