"""Raptor code: sparse XOR precode + LT code + GF(2) elimination decoder.

Raptor codes (Shokrollahi 2006) fix LT's error floor by first expanding the
source chunks with a handful of parity chunks (the *precode*) and running
the LT code over the intermediate block.  The decoder here goes straight to
Gaussian elimination over GF(2) with XOR-valued right-hand sides — at PIE's
block sizes (a 32-bit ID in 2–6 chunks) this is both exact and fast, and it
subsumes peeling: any peelable system is solvable by elimination.

Two small-block caveats, both covered by tests and relied upon knowingly:

* a symbol whose neighbour mask spans exactly the parity relation encodes
  the constant 0 (it duplicates the precode constraint and adds no
  information) — unavoidable once uniform masks are used on a tiny block;
* under an elimination decoder a random linear fountain is already
  near-optimal, so the precode slightly *reduces* the clean-decode rate
  (each parity adds an unknown).  It is kept for structural fidelity to
  Raptor (precode + LT) — the construction the paper's PIE cites — and it
  is what makes a pure *peeling* decoder viable at larger blocks; phantom
  identifiers decoded from mixed symbol groups are rejected by PIE's
  fingerprint and membership verification, not by the code itself.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.codes.lt import LTCode, join_chunks, split_chunks
from repro.hashing.family import splitmix64


class RaptorCode:
    """Raptor code over chunked integer identifiers.

    Args:
        num_source: Chunks per identifier (default 2 × 16 bits covers
            32-bit ids; an item recoverable from as few as two singleton
            cells plus the parity constraint, matching PIE's per-cell
            symbol budget).
        num_parity: Precode parity chunks.
        chunk_bits: Bits per chunk.
        seed: Shared encoder/decoder seed.
    """

    def __init__(
        self,
        num_source: int = 2,
        num_parity: int = 1,
        chunk_bits: int = 16,
        seed: int = 0x17,
    ):
        if num_parity < 0:
            raise ValueError("num_parity must be >= 0")
        self.num_source = num_source
        self.num_parity = num_parity
        self.chunk_bits = chunk_bits
        self.seed = seed
        self.num_intermediate = num_source + num_parity
        # Tiny intermediate blocks (PIE uses 3) decode far more reliably
        # under a random linear fountain than under the soliton tuned for
        # asymptotic block sizes.
        inner_degree = "uniform" if self.num_intermediate <= 8 else "soliton"
        self._lt = LTCode(
            num_source=self.num_intermediate,
            chunk_bits=chunk_bits,
            seed=seed,
            degree=inner_degree,
        )
        self._parity_masks = [
            self._parity_mask(j) for j in range(num_parity)
        ]

    def _parity_mask(self, j: int) -> int:
        """Source-chunk subset feeding parity ``j`` (pseudo-random, fixed).

        Each parity XORs at least two source chunks so it adds real
        redundancy.
        """
        min_weight = min(2, self.num_source)
        state = splitmix64((self.seed << 16) ^ (0xA5A5 + j))
        mask = 0
        while bin(mask).count("1") < min_weight:
            state = splitmix64(state)
            mask = state & ((1 << self.num_source) - 1)
        return mask

    # --------------------------------------------------------------- encode
    def intermediates(self, value: int) -> List[int]:
        """Source chunks followed by the precode parity chunks."""
        chunks = split_chunks(value, self.num_source, self.chunk_bits)
        for mask in self._parity_masks:
            parity = 0
            for j in range(self.num_source):
                if mask >> j & 1:
                    parity ^= chunks[j]
            chunks.append(parity)
        return chunks

    def encode(self, value: int, symbol_index: int) -> int:
        """One encoded symbol of ``value`` for position ``symbol_index``."""
        chunks = self.intermediates(value)
        symbol = 0
        for j in self._lt.neighbors(symbol_index):
            symbol ^= chunks[j]
        return symbol

    # --------------------------------------------------------------- decode
    def decode_peeling(
        self, symbols: Sequence[Tuple[int, int]]
    ) -> Optional[int]:
        """Belief-propagation (peeling) decoder — the linear-time decoder
        Raptor codes are designed for.

        Iterates two peeling phases to a fixed point: degree-1 received
        symbols resolve intermediates directly, and any parity constraint
        with exactly one unknown member resolves that member (this is
        where the precode pays: it converts "one short of decodable" LT
        states into decodable ones).  Strictly weaker than :meth:`decode`
        (anything peelable is solvable by elimination, not vice versa)
        but O(symbols) instead of O(symbols·n²).
        """
        equations = [
            (set(self._lt.neighbors(idx)), value) for idx, value in symbols
        ]
        resolved: dict = {}
        progress = True
        while progress and len(resolved) < self.num_intermediate:
            progress = False
            for neighbors, value in equations:
                unknown = neighbors - resolved.keys()
                if len(unknown) != 1:
                    continue
                j = next(iter(unknown))
                chunk = value
                for known in neighbors - {j}:
                    chunk ^= resolved[known]
                resolved[j] = chunk
                progress = True
            # Precode peeling: each parity constraint is a free equation
            # {sources(mask), parity_j} with right-hand side 0.
            for j, pmask in enumerate(self._parity_masks):
                members = {b for b in range(self.num_source) if pmask >> b & 1}
                members.add(self.num_source + j)
                unknown = members - resolved.keys()
                if len(unknown) != 1:
                    continue
                target = next(iter(unknown))
                chunk = 0
                for known in members - {target}:
                    chunk ^= resolved[known]
                resolved[target] = chunk
                progress = True
        if any(j not in resolved for j in range(self.num_source)):
            return None
        # Consistency: every received symbol whose members are resolved
        # must agree.
        for neighbors, value in equations:
            if neighbors <= resolved.keys():
                acc = 0
                for j in neighbors:
                    acc ^= resolved[j]
                if acc != value:
                    return None
        return join_chunks(
            [resolved[j] for j in range(self.num_source)], self.chunk_bits
        )

    def decode(self, symbols: Sequence[Tuple[int, int]]) -> Optional[int]:
        """Recover an identifier from ``(symbol_index, value)`` pairs.

        Builds one GF(2) equation per received symbol plus one homogeneous
        equation per parity constraint, eliminates, and reads off the
        source chunks.  Returns None when the system is underdetermined or
        inconsistent (mixed symbols from several identifiers).
        """
        n = self.num_intermediate
        rows: List[List[int]] = []  # [mask, rhs]
        for idx, value in symbols:
            mask = 0
            for j in self._lt.neighbors(idx):
                mask |= 1 << j
            rows.append([mask, value])
        for j, pmask in enumerate(self._parity_masks):
            rows.append([pmask | (1 << (self.num_source + j)), 0])

        solution = _solve_gf2(rows, n)
        if solution is None:
            return None
        source = solution[: self.num_source]
        value = join_chunks(source, self.chunk_bits)
        # Re-encode checks are the caller's job (fingerprints); here we only
        # guarantee algebraic consistency, which _solve_gf2 enforced.
        return value


def _solve_gf2(rows: List[List[int]], num_unknowns: int) -> Optional[List[int]]:
    """Solve a GF(2) system with XOR right-hand sides.

    ``rows`` are ``[coefficient_mask, rhs]``.  Returns the unknown values
    when the system has a unique solution, None when it is underdetermined
    or inconsistent.  ``rows`` is modified in place.
    """
    pivot_rows: List[Optional[int]] = [None] * num_unknowns
    row_idx = 0
    for col in range(num_unknowns):
        pivot = None
        for r in range(row_idx, len(rows)):
            if rows[r][0] >> col & 1:
                pivot = r
                break
        if pivot is None:
            continue
        rows[row_idx], rows[pivot] = rows[pivot], rows[row_idx]
        pmask, prhs = rows[row_idx]
        for r in range(len(rows)):
            if r != row_idx and rows[r][0] >> col & 1:
                rows[r][0] ^= pmask
                rows[r][1] ^= prhs
        pivot_rows[col] = row_idx
        row_idx += 1

    # Inconsistency: 0 = nonzero.
    for mask, rhs in rows:
        if mask == 0 and rhs != 0:
            return None
    # Underdetermined: some unknown has no pivot.
    if any(p is None for p in pivot_rows):
        return None
    solution = [0] * num_unknowns
    for col, p in enumerate(pivot_rows):
        assert p is not None
        mask, rhs = rows[p]
        # After full elimination each pivot row has exactly one bit set.
        if mask != (1 << col):
            return None
        solution[col] = rhs
    return solution
