"""Fountain codes — the substrate of PIE's item-ID recovery.

PIE encodes item identifiers with Raptor codes [31] so that identifiers can
be reconstructed from whatever subset of filter cells survives collision-
free.  :mod:`repro.codes.lt` implements an LT code with a robust-soliton
degree distribution; :mod:`repro.codes.raptor` layers a sparse XOR precode
on top (Raptor = precode + LT) and adds a GF(2) elimination decoder.
"""

from repro.codes.lt import LTCode, RobustSoliton, join_chunks, split_chunks
from repro.codes.raptor import RaptorCode

__all__ = [
    "LTCode",
    "RobustSoliton",
    "RaptorCode",
    "split_chunks",
    "join_chunks",
]
