"""Sketch + min-heap top-k frequent items (the paper's sketch baselines).

"To report top-k frequent items, it needs to maintain a min-heap to record
and update top-k frequent items" (§II-A).  On every arrival the sketch is
updated, the fresh estimate is read back, and the heap is offered the
``(item, estimate)`` pair.
"""

from __future__ import annotations

from typing import List

from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary
from repro.summaries.heap import TopKHeap


class SketchTopK(StreamSummary):
    """Top-k frequent items via any point-query sketch plus a heap.

    Args:
        sketch: Object with ``update_and_query(key) -> int`` and
            ``query(key) -> int`` (CM, CU or Count sketch).
        k: Heap capacity — the number of items reported.
    """

    def __init__(self, sketch, k: int):
        self.sketch = sketch
        self.heap = TopKHeap(k)

    @classmethod
    def from_memory(
        cls, sketch_cls, budget: MemoryBudget, k: int, rows: int = 3, seed: int = 0x5EED
    ) -> "SketchTopK":
        """Paper sizing: heap of k entries, remaining bytes to the sketch."""
        sketch = sketch_cls.from_memory(budget, rows=rows, heap_k=k, seed=seed)
        return cls(sketch, k)

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        estimate = self.sketch.update_and_query(item)
        self.heap.offer(item, float(estimate))

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self.sketch.query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(item=item, significance=value, frequency=value)
            for item, value in self.heap.best(k)
        ]
