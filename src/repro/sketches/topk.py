"""Sketch + min-heap top-k frequent items (the paper's sketch baselines).

"To report top-k frequent items, it needs to maintain a min-heap to record
and update top-k frequent items" (§II-A).  On every arrival the sketch is
updated, the fresh estimate is read back, and the heap is offered the
``(item, estimate)`` pair.

Both ingest paths skip the heap offer when it is provably a no-op: a full
heap ignores an untracked item whose estimate does not beat the current
floor (``TopKHeap.offer`` falls through its final ``value > min`` branch).
On Zipfian streams the overwhelming majority of arrivals are exactly such
tail items, so the skip removes most heap traffic without changing any
report — regression-tested against the always-offer replay.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro import obs
from repro.metrics.memory import MemoryBudget
from repro.summaries.base import ItemReport, StreamSummary, expand_counts
from repro.summaries.heap import TopKHeap


class SketchTopK(StreamSummary):
    """Top-k frequent items via any point-query sketch plus a heap.

    Args:
        sketch: Object with ``update_and_query(key) -> int`` and
            ``query(key) -> int`` (CM, CU or Count sketch).
        k: Heap capacity — the number of items reported.
    """

    def __init__(self, sketch: Any, k: int) -> None:
        self.sketch = sketch
        self.heap = TopKHeap(k)
        self._m_batch = obs.batch_size_histogram(type(self).__name__)

    @classmethod
    def from_memory(
        cls, sketch_cls: Any, budget: MemoryBudget, k: int, rows: int = 3, seed: int = 0x5EED
    ) -> "SketchTopK":
        """Paper sizing: heap of k entries, remaining bytes to the sketch."""
        sketch = sketch_cls.from_memory(budget, rows=rows, heap_k=k, seed=seed)
        return cls(sketch, k)

    def insert(self, item: int) -> None:
        """Process one arrival of ``item``."""
        estimate = float(self.sketch.update_and_query(item))
        heap = self.heap
        values = heap._values
        if (
            len(values) == heap.capacity
            and estimate <= values[0]
            and item not in heap._pos
        ):
            return  # provable no-op: full heap, untracked item below the floor
        heap.offer(item, estimate)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        The sketch's ``update_and_query_many`` commits the whole batch and
        returns every per-event fresh estimate, so only the heap replay —
        with the same no-op skip as :meth:`insert` — stays a Python loop.
        """
        if counts is not None:
            items = expand_counts(items, counts)
        elif not isinstance(items, (list, tuple)):
            items = list(items)
        if self._m_batch is not None:
            self._m_batch.observe(len(items))
        batch_query = getattr(self.sketch, "update_and_query_many", None)
        if batch_query is None:
            insert = self.insert
            for item in items:
                insert(item)
            return
        estimates = batch_query(items)
        if hasattr(estimates, "astype"):
            estimates = estimates.astype(float).tolist()
        heap = self.heap
        offer = heap.offer
        values = heap._values
        pos = heap._pos
        capacity = heap.capacity
        for item, estimate in zip(items, estimates):
            estimate = float(estimate)
            if (
                len(values) == capacity
                and estimate <= values[0]
                and item not in pos
            ):
                continue
            offer(item, estimate)

    def query(self, item: int) -> float:
        """Estimate the summary's ranking quantity for ``item``."""
        return float(self.sketch.query(item))

    def top_k(self, k: int) -> List[ItemReport]:
        """Report up to the k items with the largest estimates."""
        return [
            ItemReport(item=item, significance=value, frequency=value)
            for item, value in self.heap.best(k)
        ]
