"""Count sketch (Charikar, Chen, Farach-Colton 2002) — baseline "Count".

Each row pairs a bucket hash with an independent ±1 sign hash; a query
returns the *median* of the signed counters.  Unlike CM/CU the estimate is
unbiased but two-sided (it can underestimate).
"""

from __future__ import annotations

import statistics
from array import array
from typing import Any, Iterable

from repro.hashing.family import HashFamily, as_key_array, numpy_available
from repro.metrics.memory import MemoryBudget
from repro.sketches._vectorized import grouped_cumsum

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class CountSketch:
    """Count sketch with median estimation.

    Args:
        width: Counters per row.
        rows: Number of rows; odd values give a true median (paper uses 3).
        seed: Hash-family seed.
    """

    def __init__(self, width: int, rows: int = 3, seed: int = 0xC0DE) -> None:
        if width < 1 or rows < 1:
            raise ValueError("width and rows must be >= 1")
        self.width = width
        self.rows = rows
        family = HashFamily(seed)
        self._family = family
        self._tables = [array("q", [0]) * width for _ in range(rows)]
        self._bucket_hashes = [family.member(2 * i) for i in range(rows)]
        self._sign_hashes = [family.member(2 * i + 1) for i in range(rows)]

    @classmethod
    def from_memory(
        cls, budget: MemoryBudget, rows: int = 3, heap_k: int = 0, seed: int = 0xC0DE
    ) -> "CountSketch":
        """Size the sketch for a byte budget, reserving a k-entry heap."""
        return cls(width=budget.sketch_width(rows, heap_k), rows=rows, seed=seed)

    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` to ``key`` (signed per row)."""
        width = self.width
        for table, bh, sh in zip(
            self._tables, self._bucket_hashes, self._sign_hashes
        ):
            sign = 1 if sh(key) & 1 else -1
            table[bh(key) % width] += sign * delta

    def update_many(self, keys: Iterable[int], delta: int = 1) -> None:
        """Add ``delta`` to every key (signed per row) in one pass.

        Signed additions commute, so the batch is cell-for-cell identical
        to per-key :meth:`update` calls; duplicates fold via
        ``numpy.unique``.  Falls back to a loop without numpy.
        """
        if not numpy_available():
            update = self.update
            for key in keys:
                update(key, delta)
            return
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        uniq, counts = _np.unique(arr, return_counts=True)
        deltas = counts.astype(_np.int64) * delta
        width = _np.uint64(self.width)
        one = _np.uint64(1)
        for row in range(self.rows):
            idx = (self._family.hash_array(2 * row, uniq) % width).astype(
                _np.int64
            )
            sign_bits = self._family.hash_array(2 * row + 1, uniq) & one
            signed = _np.where(sign_bits.astype(bool), deltas, -deltas)
            view = _np.frombuffer(self._tables[row], dtype=_np.int64)
            _np.add.at(view, idx, signed)

    def query(self, key: int) -> int:
        """Median-of-signed-counters point estimate (can be negative)."""
        width = self.width
        estimates = [
            (1 if sh(key) & 1 else -1) * table[bh(key) % width]
            for table, bh, sh in zip(
                self._tables, self._bucket_hashes, self._sign_hashes
            )
        ]
        return int(statistics.median(estimates))

    def update_and_query(self, key: int, delta: int = 1) -> int:
        """Single-pass update returning the fresh estimate."""
        self.update(key, delta)
        return self.query(key)

    def update_and_query_many(self, keys: Iterable[int], delta: int = 1) -> Any:
        """Per-event fresh estimates for a whole batch, replay-identical.

        The signed counter event ``i`` observes in a row is its pre-batch
        value plus the inclusive signed running sum of same-slot batch
        events (:func:`repro.sketches._vectorized.grouped_cumsum`); the
        per-event estimate is the row median with the same
        truncate-toward-zero conversion ``int(statistics.median(...))``
        applies on the per-event path.  Tables commit the folded batch in
        one pass per row.
        """
        if not numpy_available():
            update_and_query = self.update_and_query
            return [update_and_query(key, delta) for key in keys]
        arr = as_key_array(keys)
        n = arr.size
        if n == 0:
            return _np.empty(0, dtype=_np.int64)
        width = _np.uint64(self.width)
        one = _np.uint64(1)
        row_estimates = _np.empty((self.rows, n), dtype=_np.int64)
        for row in range(self.rows):
            idx = (self._family.hash_array(2 * row, arr) % width).astype(
                _np.int64
            )
            sign_bits = self._family.hash_array(2 * row + 1, arr) & one
            signs = _np.where(sign_bits.astype(bool), 1, -1).astype(_np.int64)
            view = _np.frombuffer(self._tables[row], dtype=_np.int64)
            signed = signs * delta
            row_estimates[row] = signs * (view[idx] + grouped_cumsum(idx, signed))
            _np.add.at(view, idx, signed)
        medians = _np.median(row_estimates, axis=0)
        return _np.trunc(medians).astype(_np.int64)

    @property
    def total_counters(self) -> int:
        """Total number of counters in the sketch."""
        return self.width * self.rows
