"""Sketch-based frequency estimators (paper §II-A baselines).

Count-Min ("CM"), CU (Count-Min with conservative update) and the Count
sketch, plus :class:`repro.sketches.topk.SketchTopK`, which pairs any of
them with a top-k min-heap the way the paper's sketch baselines do.
"""

from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.topk import SketchTopK

SKETCH_CLASSES = {
    "cm": CountMinSketch,
    "cu": CUSketch,
    "count": CountSketch,
}

__all__ = [
    "CountMinSketch",
    "CUSketch",
    "CountSketch",
    "SketchTopK",
    "SKETCH_CLASSES",
]
