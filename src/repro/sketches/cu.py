"""CU sketch (Estan & Varghese 2002, "conservative update") — baseline "CU".

Identical layout to Count-Min, but an update only increments the mapped
counters that currently hold the minimum value.  The estimate is still
never an underestimate and is empirically much tighter than CM; the paper
finds CU the strongest sketch baseline.

Batch ingestion: conservative update is order-dependent whenever distinct
keys share counters, so the one-shot ``add.at`` fold that serves CM is
wrong here.  Instead the batch paths solve the per-event target
recurrence directly with the sort-and-segment fixpoint kernel in
:func:`repro.sketches._vectorized.conservative_update_targets` — each
row's slots are sorted once, then iterative segmented running-max passes
(plus a same-key chain tightening that folds duplicate-heavy batches)
converge to the exact sequential targets, which commit via one segmented
max per row.  Batches the kernel cannot certify (no convergence within
the pass budget, or counters near int64 range) replay through the scalar
loop, so every path stays cell-for-cell identical to per-event updates.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence

from repro.hashing.family import as_key_array, numpy_available
from repro.sketches._vectorized import conservative_update_targets
from repro.sketches.count_min import CountMinSketch

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

#: Fixpoint iterations before giving the batch back to the scalar loop.
#: Dependency chains longer than this only arise when nearly every event
#: collides (tiny widths); real sketch geometries converge in 2-4 passes.
_MAX_PASSES = 64

#: Events per kernel invocation.  Chain depth — and with it the pass
#: count — grows with batch size, so huge batches converge slowly as one
#: piece; committing chunk by chunk keeps the sequential semantics (each
#: chunk's T0 already contains its predecessors' raises) while holding
#: passes near the 2-4 sweet spot.  Swept on the bench workload:
#: 1024/2048/4096/8192/20000 -> 1.86/2.08/2.07/1.75/0.97 Mops.
_CHUNK = 2048


class CUSketch(CountMinSketch):
    """Count-Min with conservative update (insert-only streams)."""

    def update(self, key: int, delta: int = 1) -> None:
        """Raise the minimum mapped counters to ``min + delta``.

        Conservative update is defined for non-negative ``delta`` only.
        """
        if delta < 0:
            raise ValueError("CU sketch does not support decrements")
        if delta == 0:
            return
        width = self.width
        slots = [h(key) % width for h in self._hashes]
        values = [t[s] for t, s in zip(self._tables, slots)]
        target = min(values) + delta
        for table, slot, value in zip(self._tables, slots, values):
            if value < target:
                table[slot] = target

    def _batch_targets(self, arr: Any, deltas: Any) -> Optional[Any]:
        """Exact per-event targets for a batch, or ``None`` for scalar replay.

        On success the kernel has already committed the targets to the
        tables (each counter rises to the max target routed through it).
        """
        np = _np
        width = np.uint64(self.width)
        slot_rows = [
            (self._family.hash_array(row, arr) % width).astype(np.int64)
            for row in range(self.rows)
        ]
        views = [np.frombuffer(t, dtype=np.int64) for t in self._tables]
        return conservative_update_targets(
            slot_rows, views, arr, deltas, max_passes=_MAX_PASSES
        )

    @staticmethod
    def _check_batch_args(
        delta: int, counts: Optional[Sequence[int]]
    ) -> None:
        if delta < 0:
            raise ValueError("CU sketch does not support decrements")
        if counts is not None and any(c < 0 for c in counts):
            raise ValueError("CU sketch does not support negative counts")

    def update_many(
        self,
        keys: Iterable[int],
        delta: int = 1,
        counts: Optional[Sequence[int]] = None,
    ) -> None:
        """Batch update, cell-for-cell identical to sequential replay.

        ``counts[i]`` (optional) repeats ``keys[i]`` that many times
        consecutively at position ``i``.  Consecutive same-key updates
        fold exactly — after one conservative update the row minimum *is*
        the target, so ``c`` repeats raise it by ``c * delta`` in one
        step — which is also how the scalar fallbacks replay them.
        """
        self._check_batch_args(delta, counts)
        if delta == 0:
            return
        if not numpy_available():
            update = self.update
            if counts is None:
                for key in keys:
                    update(key, delta)
            else:
                for key, count in zip(keys, counts):
                    if count:
                        update(key, delta * count)
            return
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        deltas = self._event_deltas(arr, delta, counts)
        for start in range(0, arr.size, _CHUNK):
            sub, d = arr[start : start + _CHUNK], deltas[start : start + _CHUNK]
            if self._batch_targets(sub, d) is None:
                self._scalar_replay(sub, d)

    def _event_deltas(
        self, arr: Any, delta: int, counts: Optional[Sequence[int]]
    ) -> Any:
        """Per-event folded deltas (``counts[i] * delta``).

        Count-0 events stay in the batch with delta 0: the target
        recurrence then yields the key's *positional* estimate (the
        min over its counters as raised by earlier events only), and
        committing such a target is a no-op because every counter it
        touches already sits at or above it.
        """
        np = _np
        if counts is None:
            return np.full(arr.size, delta, dtype=np.int64)
        carr = np.asarray(counts, dtype=np.int64)
        if carr.shape != arr.shape:
            raise ValueError("counts must match keys in length")
        return carr * delta

    def _scalar_replay(self, arr: Any, deltas: Any) -> None:
        """Per-event replay of a folded batch (kernel bail-out path)."""
        update = self.update
        for key, d in zip(arr.tolist(), deltas.tolist()):
            if d:
                update(key, d)

    def update_and_query(self, key: int, delta: int = 1) -> int:
        """Single-pass update returning the fresh estimate."""
        self.update(key, delta)
        return self.query(key)

    def update_and_query_many(
        self,
        keys: Iterable[int],
        delta: int = 1,
        counts: Optional[Sequence[int]] = None,
    ) -> Any:
        """Per-event fresh estimates for a whole batch, replay-identical.

        After an update the post-update minimum over the key's counters
        *is* the raise target, so the kernel's per-event targets are
        exactly the answers :meth:`update_and_query` would return in
        stream order.  With ``counts``, each answer is the estimate after
        all of that event's repeats (count-0 events answer a plain
        query).  Returns a list, like the scalar path.
        """
        self._check_batch_args(delta, counts)
        if delta == 0:
            # update() is a no-op at delta=0, so the estimate is a plain query.
            return [self.query(key) for key in keys]
        if not numpy_available():
            update_and_query = self.update_and_query
            if counts is None:
                return [update_and_query(key, delta) for key in keys]
            return [
                update_and_query(key, delta * count)
                if count
                else self.query(key)
                for key, count in zip(keys, counts)
            ]
        arr = as_key_array(keys)
        if arr.size == 0:
            return []
        deltas = self._event_deltas(arr, delta, counts)
        answers: "list[int]" = []
        update_and_query = self.update_and_query
        query = self.query
        for start in range(0, arr.size, _CHUNK):
            sub, d = arr[start : start + _CHUNK], deltas[start : start + _CHUNK]
            targets = self._batch_targets(sub, d)
            if targets is not None:
                answers.extend(targets.tolist())
            else:
                for key, kd in zip(sub.tolist(), d.tolist()):
                    answers.append(
                        update_and_query(key, kd) if kd else query(key)
                    )
        return answers
