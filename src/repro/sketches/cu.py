"""CU sketch (Estan & Varghese 2002, "conservative update") — baseline "CU".

Identical layout to Count-Min, but an update only increments the mapped
counters that currently hold the minimum value.  The estimate is still
never an underestimate and is empirically much tighter than CM; the paper
finds CU the strongest sketch baseline.
"""

from __future__ import annotations

from repro.sketches.count_min import CountMinSketch


class CUSketch(CountMinSketch):
    """Count-Min with conservative update (insert-only streams)."""

    def update(self, key: int, delta: int = 1) -> None:
        """Raise the minimum mapped counters to ``min + delta``.

        Conservative update is defined for non-negative ``delta`` only.
        """
        if delta < 0:
            raise ValueError("CU sketch does not support decrements")
        if delta == 0:
            return
        width = self.width
        slots = [h(key) % width for h in self._hashes]
        values = [t[s] for t, s in zip(self._tables, slots)]
        target = min(values) + delta
        for table, slot, value in zip(self._tables, slots, values):
            if value < target:
                table[slot] = target

    def update_and_query(self, key: int, delta: int = 1) -> int:
        """Single-pass update returning the fresh estimate."""
        self.update(key, delta)
        return self.query(key)
