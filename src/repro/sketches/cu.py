"""CU sketch (Estan & Varghese 2002, "conservative update") — baseline "CU".

Identical layout to Count-Min, but an update only increments the mapped
counters that currently hold the minimum value.  The estimate is still
never an underestimate and is empirically much tighter than CM; the paper
finds CU the strongest sketch baseline.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.hashing.family import as_key_array, numpy_available
from repro.sketches.count_min import CountMinSketch

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class CUSketch(CountMinSketch):
    """Count-Min with conservative update (insert-only streams)."""

    def update(self, key: int, delta: int = 1) -> None:
        """Raise the minimum mapped counters to ``min + delta``.

        Conservative update is defined for non-negative ``delta`` only.
        """
        if delta < 0:
            raise ValueError("CU sketch does not support decrements")
        if delta == 0:
            return
        width = self.width
        slots = [h(key) % width for h in self._hashes]
        values = [t[s] for t, s in zip(self._tables, slots)]
        target = min(values) + delta
        for table, slot, value in zip(self._tables, slots, values):
            if value < target:
                table[slot] = target

    def update_many(self, keys: Iterable[int], delta: int = 1) -> None:
        """Batch update with vectorised hashing, exact stream order.

        Conservative update is order-dependent when distinct keys share
        counters, so (unlike CM) the raise-to-target pass must stay a
        per-event loop; the per-row hashing and modulo — the dominant
        Python cost — are hoisted into one numpy pass over the batch.
        The result is cell-for-cell identical to calling :meth:`update`
        per key in stream order.
        """
        if delta < 0:
            raise ValueError("CU sketch does not support decrements")
        if delta == 0:
            return
        if not numpy_available():
            update = self.update
            for key in keys:
                update(key, delta)
            return
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        width = _np.uint64(self.width)
        slot_rows = [
            (self._family.hash_array(row, arr) % width).astype(_np.int64).tolist()
            for row in range(self.rows)
        ]
        tables = self._tables
        for slots in zip(*slot_rows):
            values = [t[s] for t, s in zip(tables, slots)]
            target = min(values) + delta
            for table, slot, value in zip(tables, slots, values):
                if value < target:
                    table[slot] = target

    def update_and_query(self, key: int, delta: int = 1) -> int:
        """Single-pass update returning the fresh estimate."""
        self.update(key, delta)
        return self.query(key)

    def update_and_query_many(self, keys: Iterable[int], delta: int = 1) -> Any:
        """Per-event fresh estimates for a whole batch, replay-identical.

        Conservative update makes the raise-to-target pass inherently
        sequential, but the fresh estimate is free inside it: after
        raising the minimum mapped counters to ``min + delta``, the
        post-update minimum *is* the target, which is exactly what
        :meth:`update_and_query` returns.  As in :meth:`update_many`,
        only the per-row hashing is hoisted to numpy.
        """
        if delta < 0:
            raise ValueError("CU sketch does not support decrements")
        if delta == 0:
            # update() is a no-op at delta=0, so the estimate is a plain query.
            return [self.query(key) for key in keys]
        if not numpy_available():
            update_and_query = self.update_and_query
            return [update_and_query(key, delta) for key in keys]
        arr = as_key_array(keys)
        if arr.size == 0:
            return []
        width = _np.uint64(self.width)
        slot_rows = [
            (self._family.hash_array(row, arr) % width).astype(_np.int64).tolist()
            for row in range(self.rows)
        ]
        tables = self._tables
        estimates = []
        append = estimates.append
        for slots in zip(*slot_rows):
            values = [t[s] for t, s in zip(tables, slots)]
            target = min(values) + delta
            for table, slot, value in zip(tables, slots, values):
                if value < target:
                    table[slot] = target
            append(target)
        return estimates
