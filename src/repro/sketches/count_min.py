"""Count-Min sketch (Cormode & Muthukrishnan 2005) — paper baseline "CM".

``rows`` equal-width counter arrays with independent hash functions.  An
update increments one counter per row; a point query returns the minimum of
the mapped counters, which never underestimates the true count.
"""

from __future__ import annotations

from array import array
from typing import Any, Iterable

from repro.hashing.family import HashFamily, as_key_array, numpy_available
from repro.metrics.memory import MemoryBudget
from repro.sketches._vectorized import grouped_cumcount

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


class CountMinSketch:
    """Count-Min sketch over non-negative integer updates.

    Args:
        width: Counters per row.
        rows: Number of rows (the paper uses 3).
        seed: Hash-family seed.
    """

    def __init__(self, width: int, rows: int = 3, seed: int = 0x5EED) -> None:
        if width < 1 or rows < 1:
            raise ValueError("width and rows must be >= 1")
        self.width = width
        self.rows = rows
        self._family = HashFamily(seed)
        self._tables = [array("q", [0]) * width for _ in range(rows)]
        # Bind the row hash callables once; saves a dict lookup per update.
        self._hashes = [self._family.member(i) for i in range(rows)]

    @classmethod
    def from_memory(
        cls, budget: MemoryBudget, rows: int = 3, heap_k: int = 0, seed: int = 0x5EED
    ) -> "CountMinSketch":
        """Size the sketch for a byte budget, reserving a k-entry heap."""
        return cls(width=budget.sketch_width(rows, heap_k), rows=rows, seed=seed)

    def update(self, key: int, delta: int = 1) -> None:
        """Add ``delta`` to ``key``'s counters."""
        width = self.width
        for table, h in zip(self._tables, self._hashes):
            table[h(key) % width] += delta

    def update_many(self, keys: Iterable[int], delta: int = 1) -> None:
        """Add ``delta`` to every key's counters in one vectorised pass.

        CM updates are pure additions, so batching commutes: the result is
        cell-for-cell identical to calling :meth:`update` per key in any
        order.  Duplicate keys are folded with ``numpy.unique`` so a
        Zipfian batch hashes each distinct key once.  Falls back to a
        plain loop when numpy is unavailable.
        """
        if not numpy_available():
            update = self.update
            for key in keys:
                update(key, delta)
            return
        arr = as_key_array(keys)
        if arr.size == 0:
            return
        uniq, counts = _np.unique(arr, return_counts=True)
        deltas = counts.astype(_np.int64) * delta
        width = _np.uint64(self.width)
        for row, table in enumerate(self._tables):
            idx = (self._family.hash_array(row, uniq) % width).astype(_np.int64)
            view = _np.frombuffer(table, dtype=_np.int64)
            _np.add.at(view, idx, deltas)

    def update_and_query_many(self, keys: Iterable[int], delta: int = 1) -> Any:
        """Per-event fresh estimates for a whole batch, replay-identical.

        Returns the sequence of estimates :meth:`update_and_query` would
        produce for each key in stream order (an int64 array with numpy,
        a list without), leaving the tables exactly as a sequential
        replay would.  The counter value event ``i`` observes in a row is
        its pre-batch value plus ``delta`` per batch event ``j <= i``
        hashing to the same slot — a grouped occurrence rank
        (:func:`repro.sketches._vectorized.grouped_cumcount`) — so no
        per-event table write is needed; each row commits the folded
        batch in one ``numpy.add.at``.
        """
        if not numpy_available():
            update_and_query = self.update_and_query
            return [update_and_query(key, delta) for key in keys]
        arr = as_key_array(keys)
        if arr.size == 0:
            return _np.empty(0, dtype=_np.int64)
        width = _np.uint64(self.width)
        estimates = None
        for row, table in enumerate(self._tables):
            idx = (self._family.hash_array(row, arr) % width).astype(_np.int64)
            view = _np.frombuffer(table, dtype=_np.int64)
            row_est = view[idx] + (grouped_cumcount(idx) + 1) * delta
            if estimates is None:
                estimates = row_est
            else:
                _np.minimum(estimates, row_est, out=estimates)
            uniq, counts = _np.unique(idx, return_counts=True)
            _np.add.at(view, uniq, counts.astype(_np.int64) * delta)
        return estimates

    def query(self, key: int) -> int:
        """Point-estimate ``key``'s count (never an underestimate)."""
        width = self.width
        return min(
            table[h(key) % width]
            for table, h in zip(self._tables, self._hashes)
        )

    def update_and_query(self, key: int, delta: int = 1) -> int:
        """Single-pass update returning the fresh estimate (heap wrappers)."""
        width = self.width
        estimate = None
        for table, h in zip(self._tables, self._hashes):
            slot = h(key) % width
            table[slot] += delta
            value = table[slot]
            if estimate is None or value < estimate:
                estimate = value
        return estimate if estimate is not None else 0

    @property
    def total_counters(self) -> int:
        """Total number of counters in the sketch."""
        return self.width * self.rows
