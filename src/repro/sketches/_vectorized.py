"""Vectorised group-by kernels shared by the sketch batch paths.

Both helpers answer per-event questions about a batch of slot indices
without materialising the per-event loop: for event ``i`` hitting slot
``idx[i]``, how many earlier events of the same batch hit the same slot
(:func:`grouped_cumcount`), and what is the inclusive running sum of a
per-event value over same-slot events (:func:`grouped_cumsum`)?  The
answers let ``update_and_query_many`` reconstruct the counter value each
event *would* have observed mid-batch while committing the whole batch to
the table in one pass.

Pure numpy; callers gate on :func:`repro.hashing.family.numpy_available`.
"""

from __future__ import annotations

from typing import Any

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


def _group_offsets(sorted_idx: Any) -> Any:
    """Start offset (into the sorted order) of each event's slot group."""
    n = sorted_idx.shape[0]
    is_start = _np.empty(n, dtype=bool)
    is_start[0] = True
    _np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=is_start[1:])
    starts = _np.flatnonzero(is_start)
    sizes = _np.diff(_np.append(starts, n))
    return _np.repeat(starts, sizes)


def grouped_cumcount(idx: Any) -> Any:
    """Per event, the number of *earlier* batch events hitting its slot.

    ``idx`` is an int array of slot indices in stream order; the result
    has the same shape, with ``out[i] == |{j < i : idx[j] == idx[i]}|``.
    """
    n = idx.shape[0]
    if n == 0:
        return _np.empty(0, dtype=_np.int64)
    order = _np.argsort(idx, kind="stable")
    offsets = _group_offsets(idx[order])
    out = _np.empty(n, dtype=_np.int64)
    out[order] = _np.arange(n, dtype=_np.int64) - offsets
    return out


def grouped_cumsum(idx: Any, values: Any) -> Any:
    """Inclusive running sum of ``values`` over same-slot events.

    ``out[i] == sum(values[j] for j <= i if idx[j] == idx[i])`` — the
    signed-counter analogue of :func:`grouped_cumcount` (Count sketch
    needs per-event ±1 contributions, not occurrence ranks).
    """
    n = idx.shape[0]
    if n == 0:
        return _np.empty(0, dtype=_np.int64)
    order = _np.argsort(idx, kind="stable")
    sorted_vals = values[order].astype(_np.int64)
    running = _np.cumsum(sorted_vals)
    offsets = _group_offsets(idx[order])
    base = _np.where(offsets > 0, running[offsets - 1], 0)
    out = _np.empty(n, dtype=_np.int64)
    out[order] = running - base
    return out
