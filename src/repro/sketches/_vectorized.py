"""Vectorised group-by kernels shared by the sketch batch paths.

Both helpers answer per-event questions about a batch of slot indices
without materialising the per-event loop: for event ``i`` hitting slot
``idx[i]``, how many earlier events of the same batch hit the same slot
(:func:`grouped_cumcount`), and what is the inclusive running sum of a
per-event value over same-slot events (:func:`grouped_cumsum`)?  The
answers let ``update_and_query_many`` reconstruct the counter value each
event *would* have observed mid-batch while committing the whole batch to
the table in one pass.

Pure numpy; callers gate on :func:`repro.hashing.family.numpy_available`.
"""

from __future__ import annotations

from typing import Any

try:
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None


def _group_offsets(sorted_idx: Any) -> Any:
    """Start offset (into the sorted order) of each event's slot group."""
    n = sorted_idx.shape[0]
    is_start = _np.empty(n, dtype=bool)
    is_start[0] = True
    _np.not_equal(sorted_idx[1:], sorted_idx[:-1], out=is_start[1:])
    starts = _np.flatnonzero(is_start)
    sizes = _np.diff(_np.append(starts, n))
    return _np.repeat(starts, sizes)


def grouped_cumcount(idx: Any) -> Any:
    """Per event, the number of *earlier* batch events hitting its slot.

    ``idx`` is an int array of slot indices in stream order; the result
    has the same shape, with ``out[i] == |{j < i : idx[j] == idx[i]}|``.
    """
    n = idx.shape[0]
    if n == 0:
        return _np.empty(0, dtype=_np.int64)
    order = _np.argsort(idx, kind="stable")
    offsets = _group_offsets(idx[order])
    out = _np.empty(n, dtype=_np.int64)
    out[order] = _np.arange(n, dtype=_np.int64) - offsets
    return out


def _sorted_groups(idx: Any) -> Any:
    """Stable sort of ``idx`` plus segment metadata for the sorted order.

    Returns ``(order, is_start, gid)``: the stable argsort, a boolean
    marking each group's first element in sorted order, and a dense
    0-based group id per sorted position.  Within a group the sorted
    order preserves stream order (stable sort), which is what the
    segmented running-max kernels below rely on.
    """
    order = _np.argsort(idx, kind="stable")
    si = idx[order]
    n = si.shape[0]
    is_start = _np.empty(n, dtype=bool)
    is_start[0] = True
    _np.not_equal(si[1:], si[:-1], out=is_start[1:])
    gid = _np.cumsum(is_start) - 1
    return order, is_start, gid


_I64_MIN = -(1 << 63)


def segmented_running_max(
    vals: Any, gid: Any, is_start: Any, inclusive: bool
) -> Any:
    """Per-segment running maximum of ``vals`` (already in sorted order).

    Segments are the maximal runs of equal ``gid``.  With
    ``inclusive=False`` each position gets the max over *strictly
    earlier* same-segment positions (``_I64_MIN`` for segment heads).
    Implemented as one ``np.maximum.accumulate`` over values offset by
    ``gid * span`` so later segments dominate earlier ones; raises
    :class:`OverflowError` when that offset would leave int64 range
    (callers fall back to the scalar path — counters that large do not
    occur in practice).
    """
    lo = int(vals[0] if vals.shape[0] == 1 else vals.min())
    hi = int(vals.max())
    span = hi - lo + 1
    ngroups = int(gid[-1]) + 1
    if ngroups * span >= (1 << 62):
        raise OverflowError("segment offset would overflow int64")
    shifted = (vals - lo) + gid * span
    run = _np.maximum.accumulate(shifted)
    if inclusive:
        return run - gid * span + lo
    out = _np.empty_like(run)
    out[0] = 0
    out[1:] = run[:-1]
    out -= gid * span
    out += lo
    out[is_start] = _I64_MIN
    return out


def conservative_update_targets(
    slot_rows: Any,
    table_views: Any,
    keys: Any,
    deltas: Any,
    max_passes: int = 64,
) -> Any:
    """Per-event CU targets for a batch, replay-identical, or ``None``.

    Sequential conservative update obeys the recurrence

        ``t[i] = d[i] + min_r max(T0_r[s_r[i]],
                                  max{t[j] : j < i, s_r[j] == s_r[i]})``

    — each row's counter seen by event ``i`` is its pre-batch value
    raised by every earlier same-slot target.  ``t`` is the unique
    solution of that recurrence, and it is the least fixpoint of the
    (monotone) right-hand side above the no-interaction lower bound
    ``t0[i] = d[i] + min_r T0_r[s_r[i]]``.  The kernel iterates the
    operator with segmented running-max passes (sort each row's slots
    once, then one ``maximum.accumulate`` per row per pass) plus a
    same-key chain tightening (same-key events share every slot, so
    ``t`` along a key's occurrences grows by at least its delta each
    time; folding that in via a per-key running max collapses the long
    duplicate chains of skewed batches to one pass).  Iterates increase
    monotonically and are always lower bounds, so the first repeated
    iterate *is* the sequential answer.  On convergence the targets are
    committed to ``table_views`` (each counter rises to the max target
    routed through it, one segmented max per row over the cached sort)
    and returned.  Returns ``None`` — tables untouched — if
    ``max_passes`` iterations do not converge or the offset trick would
    overflow; callers replay scalar then.
    """
    np = _np
    n = keys.shape[0]
    row_meta = []
    t = None
    for idx, view in zip(slot_rows, table_views):
        order, is_start, gid = _sorted_groups(idx)
        t0 = view[idx]
        row_meta.append((order, is_start, gid, t0))
        t = t0.copy() if t is None else np.minimum(t, t0, out=t)
    assert t is not None
    t += deltas
    korder, kstart, kgid = _sorted_groups(keys)
    # Inclusive per-key running sum of deltas in stream order (inlined
    # grouped_cumsum so the key argsort is shared with the tightening).
    running = np.cumsum(deltas[korder])
    kheads = np.flatnonzero(kstart)
    base = np.where(kheads > 0, running[kheads - 1], 0)
    kdelta = np.empty(n, dtype=np.int64)
    kdelta[korder] = running - base[kgid]
    scratch = np.empty(n, dtype=np.int64)
    converged = False
    try:
        for _ in range(max_passes):
            t_prev = t
            v = None
            for order, is_start, gid, t0 in row_meta:
                prev = segmented_running_max(
                    t[order], gid, is_start, inclusive=False
                )
                scratch[order] = prev
                if v is None:
                    v = np.maximum(t0, scratch)
                else:
                    np.minimum(v, np.maximum(t0, scratch), out=v)
            assert v is not None
            t = v + deltas
            # Same-key chain tightening: u removes each occurrence's own
            # cumulative delta so a per-key running max of u restores the
            # "+delta per occurrence" floor in one vector pass.
            u = t - kdelta
            incl = segmented_running_max(
                u[korder], kgid, kstart, inclusive=True
            )
            scratch[korder] = incl
            np.maximum(t, scratch + kdelta, out=t)
            if np.array_equal(t, t_prev):
                converged = True
                break
    except OverflowError:  # pragma: no cover - astronomically large counters
        return None
    if not converged:
        return None
    for (idx, view), (order, is_start, gid, t0) in zip(
        zip(slot_rows, table_views), row_meta
    ):
        heads = np.flatnonzero(is_start)
        segmax = np.maximum.reduceat(t[order], heads)
        slots = idx[order][heads]
        view[slots] = np.maximum(view[slots], segmax)
    return t


def grouped_cumsum(idx: Any, values: Any) -> Any:
    """Inclusive running sum of ``values`` over same-slot events.

    ``out[i] == sum(values[j] for j <= i if idx[j] == idx[i])`` — the
    signed-counter analogue of :func:`grouped_cumcount` (Count sketch
    needs per-event ±1 contributions, not occurrence ranks).
    """
    n = idx.shape[0]
    if n == 0:
        return _np.empty(0, dtype=_np.int64)
    order = _np.argsort(idx, kind="stable")
    sorted_vals = values[order].astype(_np.int64)
    running = _np.cumsum(sorted_vals)
    offsets = _group_offsets(idx[order])
    base = _np.where(offsets > 0, running[offsets - 1], 0)
    out = _np.empty(n, dtype=_np.int64)
    out[order] = running - base
    return out
