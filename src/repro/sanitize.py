"""repro.sanitize — opt-in runtime invariant checking (debug mode).

The library's structures are bound by structural contracts that normally
only differential tests enforce after the fact: a cell's persistency can
never exceed its frequency (paper §III — every period counted by
persistency contains at least one arrival), CLOCK flags stay in their
two-bit domain, the top-k heap keeps the heap property, and Space-Saving
buckets stay strictly count-ordered.  This module checks those contracts
*at the mutation site* so a violation produces a precise repro message
instead of a distant assertion failure.

Enabling (both are read at **construction** time):

* environment: ``REPRO_SANITIZE=1`` turns sanitization on for every
  structure built afterwards (the nightly CI hypothesis profile runs the
  suites this way);
* per instance: ``LTCConfig(sanitize=True)`` for the LTC family.

When disabled (the default) nothing is installed — the public mutators
remain the plain class functions, so the hot paths carry **zero** extra
cost (no wrapper, no flag branch).  When enabled, the mutators are
wrapped per instance:

* ``insert`` / ``insert_timed`` validate the touched bucket plus the
  slots the CLOCK hand just swept (O(d + harvested) per arrival);
* ``insert_many`` validates the full table once per batch;
* ``end_period`` / ``finalize`` validate the full table, and
  ``end_period`` additionally proves checkpoint round-trip stability
  (``to_bytes → from_bytes → to_bytes`` must be byte-identical).

Every failure raises :class:`SanitizeError` naming the failing invariant
and the exact cell/slot involved.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.ltc import LTC
    from repro.core.windowed import WindowedLTC
    from repro.summaries.heap import TopKHeap
    from repro.summaries.space_saving import SpaceSaving
    from repro.summaries.stream_summary import StreamSummaryList

__all__ = [
    "SanitizeError",
    "env_enabled",
    "check_ltc",
    "check_ltc_bucket",
    "check_ltc_checkpoint",
    "check_windowed",
    "check_heap",
    "check_stream_summary_list",
    "check_space_saving",
    "install_ltc",
    "install_windowed",
    "install_heap",
    "install_space_saving",
]

_TRUTHY = frozenset({"1", "true", "yes", "on"})


class SanitizeError(AssertionError):
    """A structural invariant was violated.

    Attributes:
        structure: Class name of the offending structure.
        invariant: Short machine-readable name of the violated invariant
            (e.g. ``persistency_le_frequency``).
        detail: Human-readable description with the offending values.
    """

    def __init__(self, structure: str, invariant: str, detail: str) -> None:
        self.structure = structure
        self.invariant = invariant
        self.detail = detail
        super().__init__(f"{structure}: invariant '{invariant}' violated: {detail}")


def env_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests sanitization (read per call)."""
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in _TRUTHY


def _fail(structure: Any, invariant: str, detail: str) -> None:
    name = structure if isinstance(structure, str) else type(structure).__name__
    raise SanitizeError(name, invariant, detail)


# --------------------------------------------------------------------- LTC
def _check_ltc_cell(ltc: "LTC", j: int, strong: bool) -> None:
    bits = ltc._flags[j]
    if bits & ~0b11:
        _fail(ltc, "flag_domain", f"cell {j} carries flag bits {bits:#x} > 0b11")
    if not ltc._de and bits & 0b10:
        _fail(
            ltc,
            "flag_domain",
            f"cell {j} has the odd-parity flag set without the Deviation "
            f"Eliminator (flags={bits:#x})",
        )
    freq = ltc._freqs[j]
    counter = ltc._counters[j]
    if ltc._keys[j] is None:
        if freq or counter or bits:
            _fail(
                ltc,
                "empty_cell_zeroed",
                f"empty cell {j} holds freq={freq} counter={counter} "
                f"flags={bits:#x}",
            )
        return
    if freq < 0:
        _fail(ltc, "frequency_non_negative", f"cell {j} has frequency {freq}")
    if counter < 0:
        _fail(ltc, "persistency_non_negative", f"cell {j} has persistency {counter}")
    if strong:
        pending = (bits & 1) + (bits >> 1 & 1)
        if counter + pending > freq:
            _fail(
                ltc,
                "persistency_le_frequency",
                f"cell {j} (item {ltc._keys[j]}): persistency {counter} + "
                f"{pending} pending flag(s) exceeds frequency {freq}",
            )


def _check_ltc_clock(ltc: "LTC") -> None:
    clock = ltc._clock
    m = clock.num_cells
    if not 0 <= clock.hand < m:
        _fail(ltc, "clock_hand_in_range", f"hand={clock.hand} outside [0, {m})")
    if not 0 <= clock.scanned_in_period <= m:
        _fail(
            ltc,
            "clock_scan_bound",
            f"scanned_in_period={clock.scanned_in_period} outside [0, {m}]",
        )
    if not 0 <= clock._acc < clock.items_per_period:
        _fail(
            ltc,
            "clock_accumulator_in_range",
            f"acc={clock._acc} outside [0, {clock.items_per_period})",
        )
    if not 0 <= clock._tacc < clock.TICKS_PER_PERIOD:
        _fail(
            ltc,
            "clock_accumulator_in_range",
            f"tacc={clock._tacc} outside [0, {clock.TICKS_PER_PERIOD})",
        )
    if ltc._parity not in (0, 1):
        _fail(ltc, "parity_domain", f"parity={ltc._parity}")
    if ltc._de:
        if ltc._set_bit != 1 << ltc._parity or ltc._harvest_bit != 1 << (
            ltc._parity ^ 1
        ):
            _fail(
                ltc,
                "parity_domain",
                f"DE bit assignment inconsistent with parity {ltc._parity}: "
                f"set={ltc._set_bit} harvest={ltc._harvest_bit}",
            )
    elif ltc._set_bit != 1 or ltc._harvest_bit != 1:
        _fail(
            ltc,
            "parity_domain",
            f"basic version must use flag bit 1 (set={ltc._set_bit} "
            f"harvest={ltc._harvest_bit})",
        )


def _check_ltc_index(ltc: "LTC") -> None:
    slot_of = getattr(ltc, "_slot_of", None)
    if slot_of is None:
        return
    occupied = {
        key: j for j, key in enumerate(ltc._keys) if key is not None
    }
    if slot_of != occupied:
        extra = {k: v for k, v in slot_of.items() if occupied.get(k) != v}
        missing = {k: v for k, v in occupied.items() if slot_of.get(k) != v}
        _fail(
            ltc,
            "index_matches_cells",
            f"item→slot index diverges from the cell arrays "
            f"(stale: {extra}, missing: {missing})",
        )


def _check_ltc_columns(ltc: "LTC") -> None:
    # ColumnarLTC mirrors the key list into fingerprint/occupancy columns
    # for vectorized probing; the mirror must agree with the row state.
    kcol = getattr(ltc, "_kcol", None)
    occ = getattr(ltc, "_occ", None)
    if kcol is None or occ is None:
        return
    for j, key in enumerate(ltc._keys):
        occupied = bool(occ[j])
        if occupied != (key is not None):
            _fail(
                ltc,
                "columns_match_cells",
                f"occupancy column says {occupied} at cell {j}, key list "
                f"holds {key!r}",
            )
        if occupied and int(kcol[j]) != key:
            _fail(
                ltc,
                "columns_match_cells",
                f"fingerprint column holds {int(kcol[j])} at cell {j}, key "
                f"list holds {key!r}",
            )


def check_ltc(ltc: "LTC", cells: Optional[Iterable[int]] = None) -> None:
    """Validate the structural invariants of an LTC (or subclass).

    ``cells`` restricts the scan to the given slot indices; the default
    checks the whole table, the CLOCK state, (for FastLTC) the item→slot
    index, and (for ColumnarLTC) the fingerprint/occupancy columns.  The
    ``persistency <= frequency`` check counts un-harvested flags as
    pending persistency credit, so a decrement that strands excess credit
    is caught at the mutation site — before the harvest that would
    materialise the violation.  The check is skipped for the
    ``space-saving`` ablation policy, which overestimates by design
    (§I-C).
    """
    strong = ltc._policy != "space-saving"
    if cells is None:
        for j in range(ltc.total_cells):
            _check_ltc_cell(ltc, j, strong)
        _check_ltc_clock(ltc)
        _check_ltc_index(ltc)
        _check_ltc_columns(ltc)
    else:
        for j in cells:
            _check_ltc_cell(ltc, j, strong)
        _check_ltc_clock(ltc)


def check_ltc_bucket(ltc: "LTC", item: int) -> None:
    """Validate only the bucket that ``item`` hashes to (O(d))."""
    from repro.hashing.family import splitmix64

    base = (splitmix64(item ^ ltc._seed) % ltc._w) * ltc._d
    check_ltc(ltc, cells=range(base, base + ltc._d))


def check_ltc_checkpoint(ltc: "LTC") -> None:
    """Prove checkpoint round-trip stability: serialising, restoring and
    re-serialising must reproduce the byte image exactly."""
    from repro.core import serialize

    blob = serialize.to_bytes(ltc)
    restored = serialize.from_bytes(blob, cls=type(ltc))
    blob2 = serialize.to_bytes(restored)
    if blob2 != blob:
        diff = next(
            (i for i, (a, b) in enumerate(zip(blob, blob2)) if a != b),
            min(len(blob), len(blob2)),
        )
        _fail(
            ltc,
            "checkpoint_round_trip",
            f"to_bytes→from_bytes→to_bytes diverges at byte {diff} "
            f"(lengths {len(blob)} vs {len(blob2)})",
        )


def install_ltc(ltc: "LTC") -> None:
    """Wrap the public mutators of ``ltc`` with invariant checks.

    Idempotent.  The wrappers live on the *instance*, so other instances
    (and the class) keep the unwrapped hot paths.
    """
    if getattr(ltc, "_sanitize_installed", False):
        return
    ltc._sanitize_installed = True  # type: ignore[attr-defined]
    orig_insert = ltc.insert
    orig_insert_many = ltc.insert_many
    orig_insert_timed = ltc.insert_timed
    orig_end_period = ltc.end_period
    orig_finalize = ltc.finalize
    m = ltc.total_cells

    def _swept_since(start_hand: int, start_scanned: int) -> range:
        # The hand alone is ambiguous after a full-table sweep (it ends
        # where it started), so measure via the monotone per-period scan
        # counter instead.  ltc._clock is re-read on every call because
        # clear() replaces the ClockPointer instance.
        swept = min(ltc._clock.scanned_in_period - start_scanned, m)
        return range(start_hand, start_hand + swept)

    def insert(item: int) -> None:
        clock = ltc._clock
        start_hand, start_scanned = clock.hand, clock.scanned_in_period
        orig_insert(item)
        check_ltc_bucket(ltc, item)
        span = _swept_since(start_hand, start_scanned)
        if len(span):
            check_ltc(ltc, cells=(j % m for j in span))

    def insert_timed(item: int, timestamp: float, period_seconds: float) -> None:
        clock = ltc._clock
        start_hand, start_scanned = clock.hand, clock.scanned_in_period
        orig_insert_timed(item, timestamp, period_seconds)
        check_ltc_bucket(ltc, item)
        span = _swept_since(start_hand, start_scanned)
        if len(span):
            check_ltc(ltc, cells=(j % m for j in span))

    def insert_many(items: Any, counts: Any = None) -> None:
        orig_insert_many(items, counts)
        check_ltc(ltc)

    def end_period() -> None:
        orig_end_period()
        check_ltc(ltc)
        check_ltc_checkpoint(ltc)

    def finalize() -> None:
        orig_finalize()
        check_ltc(ltc)

    ltc.insert = insert  # type: ignore[method-assign]
    ltc.insert_timed = insert_timed  # type: ignore[method-assign]
    ltc.insert_many = insert_many  # type: ignore[method-assign]
    ltc.end_period = end_period  # type: ignore[method-assign]
    ltc.finalize = finalize  # type: ignore[method-assign]


# ------------------------------------------------------------ WindowedLTC
def check_windowed(wltc: "WindowedLTC") -> None:
    """Validate a :class:`repro.core.windowed.WindowedLTC`: presence rings
    stay inside the W-bit window mask, decayed frequencies never go
    negative, and vacated cells are fully zeroed."""
    mask = wltc._ring_mask
    for j in range(len(wltc._keys)):
        ring = wltc._rings[j]
        freq = wltc._freqs[j]
        if ring & ~mask:
            _fail(
                wltc,
                "ring_in_window",
                f"cell {j} ring {ring:#x} has bits outside the "
                f"{wltc.window}-period window",
            )
        if wltc._keys[j] is None:
            if freq or ring:
                _fail(
                    wltc,
                    "empty_cell_zeroed",
                    f"empty cell {j} holds freq={freq} ring={ring:#x}",
                )
            continue
        if freq < 0:
            _fail(wltc, "frequency_non_negative", f"cell {j} has frequency {freq}")


def install_windowed(wltc: "WindowedLTC") -> None:
    """Wrap the mutators of a WindowedLTC with invariant checks."""
    if getattr(wltc, "_sanitize_installed", False):
        return
    wltc._sanitize_installed = True  # type: ignore[attr-defined]
    orig_insert = wltc.insert
    orig_insert_many = wltc.insert_many
    orig_end_period = wltc.end_period

    def insert(item: int) -> None:
        orig_insert(item)
        check_windowed(wltc)

    def insert_many(items: Any, counts: Any = None) -> None:
        orig_insert_many(items, counts)
        check_windowed(wltc)

    def end_period() -> None:
        orig_end_period()
        check_windowed(wltc)

    wltc.insert = insert  # type: ignore[method-assign]
    wltc.insert_many = insert_many  # type: ignore[method-assign]
    wltc.end_period = end_period  # type: ignore[method-assign]


# ----------------------------------------------------------------- TopKHeap
def check_heap(heap: "TopKHeap") -> None:
    """Validate a :class:`repro.summaries.heap.TopKHeap`: array sizes
    agree and stay within capacity, every parent is ≤ its children, and
    the position map matches the arrays exactly."""
    values, items, pos = heap._values, heap._items, heap._pos
    if len(values) != len(items):
        _fail(
            heap,
            "array_sizes_agree",
            f"{len(values)} values vs {len(items)} items",
        )
    if len(items) > heap.capacity:
        _fail(
            heap,
            "size_within_capacity",
            f"{len(items)} entries exceed capacity {heap.capacity}",
        )
    for i in range(1, len(items)):
        parent = (i - 1) >> 1
        if values[i] < values[parent]:
            _fail(
                heap,
                "heap_property",
                f"slot {i} (item {items[i]}, value {values[i]}) is smaller "
                f"than its parent slot {parent} (item {items[parent]}, "
                f"value {values[parent]})",
            )
    if len(pos) != len(items):
        _fail(
            heap,
            "position_map_matches",
            f"{len(pos)} position entries vs {len(items)} items",
        )
    for item, slot in pos.items():
        if not 0 <= slot < len(items) or items[slot] != item:
            _fail(
                heap,
                "position_map_matches",
                f"position map sends item {item} to slot {slot}, which "
                f"holds {items[slot] if 0 <= slot < len(items) else 'nothing'}",
            )


def install_heap(heap: "TopKHeap") -> None:
    """Wrap :meth:`TopKHeap.offer` with a post-mutation check."""
    if getattr(heap, "_sanitize_installed", False):
        return
    heap._sanitize_installed = True  # type: ignore[attr-defined]
    orig_offer = heap.offer

    def offer(item: int, value: float) -> None:
        orig_offer(item, value)
        check_heap(heap)

    heap.offer = offer  # type: ignore[method-assign]


# -------------------------------------------------------------- SpaceSaving
def check_stream_summary_list(summary: "StreamSummaryList") -> None:
    """Validate a Stream-Summary: buckets strictly increasing, no empty
    buckets, every node consistent with its bucket, counts ≥ errors ≥ 0,
    and the node map in bijection with the linked structure."""
    seen = 0
    prev_count: Optional[int] = None
    bucket = summary._min_bucket
    while bucket is not None:
        if prev_count is not None and bucket.count <= prev_count:
            _fail(
                summary,
                "bucket_order_strict",
                f"bucket count {bucket.count} follows {prev_count}",
            )
        prev_count = bucket.count
        node = bucket.head
        if node is None:
            _fail(summary, "no_empty_buckets", f"bucket {bucket.count} is empty")
        while node is not None:
            if node.count != bucket.count:
                _fail(
                    summary,
                    "node_in_count_bucket",
                    f"node {node.item} has count {node.count} but sits in "
                    f"bucket {bucket.count}",
                )
            if node.bucket is not bucket:
                _fail(
                    summary,
                    "node_in_count_bucket",
                    f"node {node.item} back-links to a different bucket",
                )
            if not 0 <= node.error <= node.count:
                _fail(
                    summary,
                    "error_bound_in_range",
                    f"node {node.item}: error {node.error} outside "
                    f"[0, count {node.count}]",
                )
            if summary._nodes.get(node.item) is not node:
                _fail(
                    summary,
                    "node_map_bijection",
                    f"linked node {node.item} missing from the node map",
                )
            seen += 1
            node = node.next
        bucket = bucket.next
    if seen != len(summary._nodes):
        _fail(
            summary,
            "node_map_bijection",
            f"{seen} linked nodes vs {len(summary._nodes)} mapped",
        )


def check_space_saving(ss: "SpaceSaving") -> None:
    """Validate a SpaceSaving summary (bucket bounds + capacity)."""
    if len(ss._summary) > ss.capacity:
        _fail(
            ss,
            "size_within_capacity",
            f"{len(ss._summary)} monitored items exceed capacity {ss.capacity}",
        )
    check_stream_summary_list(ss._summary)


def install_space_saving(ss: "SpaceSaving") -> None:
    """Wrap the mutators of a SpaceSaving summary with checks."""
    if getattr(ss, "_sanitize_installed", False):
        return
    ss._sanitize_installed = True  # type: ignore[attr-defined]
    orig_insert = ss.insert
    orig_insert_many = ss.insert_many

    def insert(item: int) -> None:
        orig_insert(item)
        check_space_saving(ss)

    def insert_many(items: Any, counts: Optional[Sequence[int]] = None) -> None:
        orig_insert_many(items, counts)
        check_space_saving(ss)

    ss.insert = insert  # type: ignore[method-assign]
    ss.insert_many = insert_many  # type: ignore[method-assign]
