"""repro — a reproduction of "Finding Significant Items in Data Streams"
(Tong Yang et al., ICDE 2019).

The headline export is :class:`LTC`, the paper's Long-Tail CLOCK structure
for top-k *significant* items (``significance = α·frequency +
β·persistency``), together with every baseline and substrate the paper's
evaluation uses.

Quick start::

    from repro import LTC, LTCConfig
    from repro.streams import network_like, GroundTruth

    stream = network_like()
    ltc = LTC(LTCConfig(num_buckets=512, alpha=1.0, beta=1.0,
                        items_per_period=stream.period_length))
    stream.run(ltc)
    for report in ltc.top_k(10):
        print(report.item, report.significance)
"""

from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from repro.core.windowed import WindowedLTC
from repro.combined.two_structure import TwoStructureSignificant
from repro.membership.bloom import BloomFilter
from repro.membership.stbf import SpaceTimeBloomFilter
from repro.metrics.accuracy import average_relative_error, precision
from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.pie import PIE
from repro.persistent.sketch_persistent import SketchPersistent
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.topk import SketchTopK
from repro.streams.ground_truth import GroundTruth
from repro.streams.model import PeriodicStream
from repro.summaries.base import ItemReport, StreamSummary
from repro.summaries.frequent import Frequent
from repro.summaries.lossy_counting import LossyCounting
from repro.summaries.space_saving import SpaceSaving

__version__ = "1.0.0"

__all__ = [
    "LTC",
    "FastLTC",
    "LTCConfig",
    "WindowedLTC",
    "SpaceSaving",
    "LossyCounting",
    "Frequent",
    "CountMinSketch",
    "CUSketch",
    "CountSketch",
    "SketchTopK",
    "SketchPersistent",
    "PIE",
    "TwoStructureSignificant",
    "BloomFilter",
    "SpaceTimeBloomFilter",
    "PeriodicStream",
    "GroundTruth",
    "MemoryBudget",
    "kb",
    "precision",
    "average_relative_error",
    "ItemReport",
    "StreamSummary",
    "__version__",
]
