"""Shared-memory batch transport for the persistent shard workers.

The process-parallel coordinator used to pickle every period batch into
its worker's pipe — megabytes of `ingest_ipc_bytes` on the exact path the
throughput benchmark showed was IPC-bound.  This module provides the
zero-copy alternative: a :class:`ShmRing` of fixed-size ``int64`` slots
in one `multiprocessing.shared_memory` segment per worker.  The parent
writes a period batch into a free slot (one ``memcpy``); the worker —
which inherited the segment via ``fork`` — reads the slot directly.  The
only bytes that cross the pipe are tiny control tuples (shard id, slot
index, batch length), so ingest IPC drops from the full event volume to
a few dozen bytes per period.

Lifecycle and crash safety:

* the **parent** creates every segment, records it in a module-level
  live-segment registry, and ``destroy()``s it (close + unlink) in a
  ``finally`` when the run ends — including runs aborted by
  :class:`~repro.distributed.parallel.WorkerCrashError`;
* **workers** only ever read; a worker killed mid-run (``SIGKILL``,
  ``os._exit``) leaks nothing because it owns nothing — the parent's
  unlink removes the ``/dev/shm`` entry regardless;
* if the **parent** itself dies hard, the stdlib ``resource_tracker``
  (which registered the segment at creation) unlinks it at interpreter
  teardown, so even double crashes cannot strand ``/dev/shm`` entries.

When numpy, ``shared_memory``, or the ``fork`` start method is missing,
:func:`shm_available` is false and the coordinator falls back to pickled
batches over the pipe (chunked, see ``parallel.py``) — same results,
higher IPC cost.
"""

from __future__ import annotations

from typing import Any, FrozenSet, List, Optional, Sequence, Set

try:  # numpy backs the slot views; without it only the pickle path runs.
    import numpy as _np
except ImportError:  # pragma: no cover - the CI image ships numpy
    _np = None

try:
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platforms without shm support
    _shm = None

_ITEM_BYTES = 8  # int64 slots

# Names of segments created by this process and not yet unlinked.  The
# leak tests assert this drains to empty after every run, crashes
# included; it intentionally tracks creation, not attachment, because
# the creator (the coordinator parent) owns cleanup.
_live_segments: Set[str] = set()


def shm_available() -> bool:
    """Whether the zero-copy shared-memory transport can be used.

    Requires numpy (slot views), ``multiprocessing.shared_memory`` (the
    segments), and the ``fork`` start method (workers inherit the mapped
    segment instead of re-attaching by name, which keeps the stdlib
    resource tracker's accounting to exactly one owner: the parent).
    """
    if _np is None or _shm is None:
        return False
    try:
        import multiprocessing

        return "fork" in multiprocessing.get_all_start_methods()
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


def live_segment_names() -> FrozenSet[str]:
    """Names of segments this process created and has not yet unlinked."""
    return frozenset(_live_segments)


class ShmRing:
    """A ring of fixed-size ``int64`` batch slots in one shm segment.

    The parent creates the ring, writes batches into free slots, and
    tells the worker ``(slot, length)`` over the control pipe; the worker
    reads the slot view and acknowledges, returning the slot to the free
    pool.  Flow control (which slots are free) lives with the caller —
    the ring is just the memory and its geometry.

    Args:
        slots: Number of batch slots (the in-flight window per worker).
        slot_items: Capacity of each slot in ``int64`` items.  Batches
            larger than this spill to the pickle path.
        name: Attach to an existing segment instead of creating one.
    """

    def __init__(
        self, slots: int, slot_items: int, name: Optional[str] = None
    ) -> None:
        if _np is None or _shm is None:
            raise RuntimeError("shared-memory transport requires numpy and shm")
        if slots < 1 or slot_items < 1:
            raise ValueError("slots and slot_items must be >= 1")
        self.slots = slots
        self.slot_items = slot_items
        self._created = name is None
        size = slots * slot_items * _ITEM_BYTES
        if name is None:
            self._segment = _shm.SharedMemory(create=True, size=size)
            _live_segments.add(self._segment.name)
        else:
            self._segment = _shm.SharedMemory(name=name)
            # Attaching registers the segment with the resource tracker a
            # second time (until 3.13's track= parameter); undo it so the
            # creator stays the sole owner and exit-time accounting is
            # clean.
            try:
                from multiprocessing import resource_tracker

                resource_tracker.unregister(
                    getattr(self._segment, "_name", self._segment.name),
                    "shared_memory",
                )
            except Exception:  # pragma: no cover - best effort
                pass
        self._view: Any = _np.frombuffer(
            self._segment.buf, dtype=_np.int64, count=slots * slot_items
        )
        self._closed = False

    @property
    def name(self) -> str:
        """The segment name (its ``/dev/shm`` entry on Linux)."""
        return str(self._segment.name)

    def write(self, slot: int, values: Any) -> int:
        """Copy ``values`` (array or sequence of ints) into ``slot``.

        Returns the number of items written.  Raises ``ValueError`` when
        the batch does not fit — callers spill oversized batches to the
        pickle path instead.
        """
        length = len(values)
        if length > self.slot_items:
            raise ValueError(
                f"batch of {length} items exceeds slot capacity "
                f"{self.slot_items}"
            )
        base = slot * self.slot_items
        if length:
            self._view[base : base + length] = values
        return length

    def read_list(self, slot: int, length: int) -> List[int]:
        """Copy ``slot``'s first ``length`` items out as Python ints.

        ``int64.tolist()`` round-trips exactly, so the worker feeds its
        summary the same values the pickled list would have carried —
        the bit-identity gate depends on this.  The copy also makes it
        safe to acknowledge the slot (the parent may overwrite it) before
        the caller finishes consuming the batch.
        """
        base = slot * self.slot_items
        result: List[int] = self._view[base : base + length].tolist()
        return result

    def close(self) -> None:
        """Release this handle's mapping (does not remove the segment)."""
        if self._closed:
            return
        self._closed = True
        # The numpy view holds a buffer export; drop it before closing
        # the mapping or SharedMemory.close() raises BufferError.
        self._view = None
        self._segment.close()

    def unlink(self) -> None:
        """Remove the segment from the system (creator only)."""
        try:
            self._segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already removed
            pass
        _live_segments.discard(self._segment.name)

    def destroy(self) -> None:
        """Close, and unlink if this handle created the segment.

        Idempotent; the parent's ``finally`` hook.  Non-creator handles
        only close — the creator's registry entry stays until *it*
        unlinks.
        """
        self.close()
        if self._created:
            self.unlink()

    @classmethod
    def attach(cls, name: str, slots: int, slot_items: int) -> "ShmRing":
        """Attach to an existing ring by name (non-fork consumers)."""
        return cls(slots, slot_items, name=name)
