"""Split a logical periodic stream across monitoring sites.

Period structure is preserved: period ``p`` of every per-site stream
contains exactly the site's share of the logical period ``p``, so
persistency semantics line up across the system.
"""

from __future__ import annotations

import random
from typing import List

from repro.hashing.family import splitmix64
from repro.streams.model import PeriodicStream


def _assemble(
    per_site_periods: "list[list[list[int]]]", source: PeriodicStream
) -> List[PeriodicStream]:
    streams: List[PeriodicStream] = []
    for site, periods in enumerate(per_site_periods):
        events: List[int] = []
        boundaries: List[int] = []
        for index, block in enumerate(periods):
            events.extend(block)
            if index < len(periods) - 1:
                boundaries.append(len(events))
        # Period sizes vary per site, so reuse the boundary-based stream.
        from repro.streams.io import TimeBinnedStream

        streams.append(
            TimeBinnedStream(
                events=events,
                boundaries=boundaries,
                name=f"{source.name}@site{site}",
            )
        )
    return streams


def partition_sharded(
    stream: PeriodicStream, num_sites: int, seed: int = 0xD15C
) -> List[PeriodicStream]:
    """Item-sharded split: all of an item's arrivals go to one site.

    Models traffic entering the fabric at the item's ingress point — the
    regime where :func:`repro.core.merge.merge` is exact.
    """
    if num_sites < 1:
        raise ValueError("num_sites must be >= 1")
    per_site: List[List[List[int]]] = [
        [[] for _ in range(stream.num_periods)] for _ in range(num_sites)
    ]
    for period_index, period in enumerate(stream.iter_periods()):
        for item in period:
            site = splitmix64(item ^ seed) % num_sites
            per_site[site][period_index].append(item)
    return _assemble(per_site, stream)


def partition_random(
    stream: PeriodicStream, num_sites: int, seed: int = 0xEC3B
) -> List[PeriodicStream]:
    """Uniform random split: each arrival goes to a random site.

    Models per-packet load balancing — an item's arrivals (and therefore
    its per-period presence) are spread over all sites, the regime where
    naive summary merging over-counts persistency.
    """
    if num_sites < 1:
        raise ValueError("num_sites must be >= 1")
    rng = random.Random(seed)
    per_site: List[List[List[int]]] = [
        [[] for _ in range(stream.num_periods)] for _ in range(num_sites)
    ]
    for period_index, period in enumerate(stream.iter_periods()):
        for item in period:
            per_site[rng.randrange(num_sites)][period_index].append(item)
    return _assemble(per_site, stream)
