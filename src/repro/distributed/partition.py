"""Split a logical periodic stream across monitoring sites.

Period structure is preserved: period ``p`` of every per-site stream
contains exactly the site's share of the logical period ``p``, so
persistency semantics line up across the system.
"""

from __future__ import annotations

import random
from typing import List

from repro.hashing.family import (
    as_key_array,
    numpy_available,
    splitmix64,
    splitmix64_array,
)
from repro.streams.model import PeriodicStream


def _assemble(
    per_site_periods: "list[list[list[int]]]", source: PeriodicStream
) -> List[PeriodicStream]:
    streams: List[PeriodicStream] = []
    for site, periods in enumerate(per_site_periods):
        events: List[int] = []
        boundaries: List[int] = []
        for index, block in enumerate(periods):
            events.extend(block)
            if index < len(periods) - 1:
                boundaries.append(len(events))
        # Period sizes vary per site, so reuse the boundary-based stream.
        from repro.streams.io import TimeBinnedStream

        streams.append(
            TimeBinnedStream(
                events=events,
                boundaries=boundaries,
                name=f"{source.name}@site{site}",
            )
        )
    return streams


def shard_of(item: int, num_sites: int, seed: int = 0xD15C) -> int:
    """The site owning ``item`` under the item-sharded split.

    Deterministic and shared between the partitioner and any external
    router: a persistent worker that owns site ``s`` owns exactly the
    key range ``{x : splitmix64(x ^ seed) % num_sites == s}`` for the
    whole run.
    """
    return splitmix64(item ^ seed) % num_sites


def partition_sharded(
    stream: PeriodicStream, num_sites: int, seed: int = 0xD15C
) -> List[PeriodicStream]:
    """Item-sharded split: all of an item's arrivals go to one site.

    Models traffic entering the fabric at the item's ingress point — the
    regime where :func:`repro.core.merge.merge` is exact.  Site
    assignment is :func:`shard_of`; with numpy the hash is computed in
    one vectorised pass (bit-for-bit identical to the scalar loop — see
    :func:`repro.hashing.family.splitmix64_array`).
    """
    if num_sites < 1:
        raise ValueError("num_sites must be >= 1")
    per_site: List[List[List[int]]] = [
        [[] for _ in range(stream.num_periods)] for _ in range(num_sites)
    ]
    if numpy_available() and len(stream.events) > 0:
        import numpy as np

        keys = as_key_array(stream.events)
        sites = (
            splitmix64_array(keys ^ np.uint64(seed % (1 << 64)))
            % np.uint64(num_sites)
        ).tolist()
        # Index the source list so sites receive the original Python int
        # objects, exactly as the scalar loop would hand them over.
        events = stream.events
        for period_index, (start, end) in enumerate(stream.period_slices()):
            for index in range(start, end):
                per_site[sites[index]][period_index].append(events[index])
        return _assemble(per_site, stream)
    for period_index, period in enumerate(stream.iter_periods()):
        for item in period:
            per_site[shard_of(item, num_sites, seed)][period_index].append(item)
    return _assemble(per_site, stream)


def partition_random(
    stream: PeriodicStream, num_sites: int, seed: int = 0xEC3B
) -> List[PeriodicStream]:
    """Uniform random split: each arrival goes to a random site.

    Models per-packet load balancing — an item's arrivals (and therefore
    its per-period presence) are spread over all sites, the regime where
    naive summary merging over-counts persistency.
    """
    if num_sites < 1:
        raise ValueError("num_sites must be >= 1")
    rng = random.Random(seed)
    per_site: List[List[List[int]]] = [
        [[] for _ in range(stream.num_periods)] for _ in range(num_sites)
    ]
    for period_index, period in enumerate(stream.iter_periods()):
        for item in period:
            per_site[rng.randrange(num_sites)][period_index].append(item)
    return _assemble(per_site, stream)
