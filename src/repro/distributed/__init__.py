"""Distributed stream monitoring (extension; paper use case 3 & §II-B).

Use case 3 of the paper closes with the need to identify persistent flows
"all over the data center"; its related work cites coordinated sampling
for distributed streams.  This package simulates that setting: a logical
stream is split across monitoring *sites*, each site runs a small summary
locally, and a *coordinator* combines the summaries — paying only the
communication cost of shipping them.

Two coordination strategies are provided:

* :class:`~repro.distributed.coordinator.MergingCoordinator` — every site
  runs an identically configured LTC; the coordinator merges the
  serialized tables (exact for item-sharded partitions);
* :class:`~repro.distributed.coordinator.SamplingCoordinator` — every
  site runs a coordinated sampler (same hash ⇒ same item subset
  everywhere) reporting per-period presence bitmaps; the coordinator ORs
  the bitmaps, so sampled items are *exact* even under arbitrary
  partitions — but unsampled items are invisible.

``repro.distributed.parallel`` scales the merging strategy across CPU
cores: :class:`~repro.distributed.parallel.ParallelMergingCoordinator`
streams period batches to persistent worker processes that each own a
disjoint slice of the key space for the whole run (bit-identical to the
sequential coordinator, differentially tested — crash + respawn
included), and :class:`~repro.distributed.parallel.ShardedPipeline`
hash-shards one logical stream across N workers for single-stream
multi-core ingestion.  Batches travel through the shared-memory ring in
``repro.distributed.transport`` when numpy/shm is available, falling
back to pickled chunks otherwise.

``repro.distributed.partition`` splits a stream by item hash (each item's
traffic enters at one site; :func:`~repro.distributed.partition.shard_of`
is the routing function) or uniformly at random (ECMP-like spraying).
"""

from repro.distributed.partition import (
    partition_random,
    partition_sharded,
    shard_of,
)
from repro.distributed.sampling import CoordinatedSampler
from repro.distributed.coordinator import (
    CoordinatorReport,
    MergingCoordinator,
    SamplingCoordinator,
)
from repro.distributed.parallel import (
    ParallelMergingCoordinator,
    ShardedPipeline,
    WorkerCrashError,
    worker_processes_available,
)

__all__ = [
    "partition_sharded",
    "partition_random",
    "shard_of",
    "worker_processes_available",
    "CoordinatedSampler",
    "MergingCoordinator",
    "ParallelMergingCoordinator",
    "SamplingCoordinator",
    "ShardedPipeline",
    "CoordinatorReport",
    "WorkerCrashError",
]
