"""Coordinators: run sites on partitioned streams and combine summaries."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro import obs
from repro.core.config import LTCConfig
from repro.core.kernels import build_ltc
from repro.core.ltc import LTC
from repro.core.merge import merge
from repro.core.serialize import to_bytes
from repro.distributed.sampling import CoordinatedSampler, combine_reports
from repro.streams.model import PeriodicStream


@dataclass(frozen=True)
class CoordinatorReport:
    """Outcome of one distributed run.

    ``communication_bytes`` counts site→coordinator traffic (serialized
    summaries or sample reports).  ``ingest_ipc_bytes`` counts
    coordinator→worker traffic and is only non-zero for the process-based
    engine (:mod:`repro.distributed.parallel`), where the parent streams
    each shard's batches to its persistent worker; in-process
    coordinators read their streams directly and pay nothing.
    ``worker_crashes`` counts worker-process deaths survived via respawn
    and replay during the run (process engine only).
    """

    top_k: List[Tuple[int, float]]  # (item, estimated significance)
    communication_bytes: int
    num_sites: int
    ingest_ipc_bytes: int = 0
    worker_crashes: int = 0

    def items(self) -> "set[int]":
        """The reported item set."""
        return {item for item, _ in self.top_k}


class _Observes(Protocol):
    """Anything observe()-able: a live histogram or the null metric."""

    def observe(self, value: float) -> None: ...


def _coordinator_timers() -> Tuple[Optional[_Observes], Optional[_Observes]]:
    """The merge-engine timing histograms, or ``(None, None)`` when off.

    Shared by the sequential and process-parallel coordinators so one
    deployment's dashboards read the same series whichever engine runs:
    ``coordinator_site_merge_seconds`` (one observation per site: drive +
    serialize, or restore on the parallel path) and
    ``coordinator_merge_seconds`` (one observation per table merge).
    """
    if not obs.is_enabled():
        return None, None
    reg = obs.registry()
    return (
        reg.histogram(
            "coordinator_site_merge_seconds",
            "Per-site summary build time feeding one merge (seconds)",
        ),
        reg.histogram(
            "coordinator_merge_seconds",
            "Time merging all site summaries into the global table (seconds)",
        ),
    )


class MergingCoordinator:
    """Each site runs an identical LTC; the coordinator merges the tables.

    Exact up to bucket capacity when the partition is item-sharded; for
    arbitrary partitions merged persistency is an upper bound clipped to
    the period count (see :mod:`repro.core.merge`).

    Args:
        config: The LTC configuration every site instantiates.  The
            count-based CLOCK needs each site's own period length, so the
            per-site config overrides ``items_per_period``.
        batched: Ship each period to its site as one ``insert_many``
            batch (the default; differentially tested to be identical to
            per-event insertion, just faster).
    """

    def __init__(self, config: LTCConfig, batched: bool = True) -> None:
        self.config = config
        self.batched = batched

    def run(
        self, site_streams: Sequence[PeriodicStream], k: int
    ) -> CoordinatorReport:
        """Drive every site and produce the merged global answer."""
        num_periods = max(s.num_periods for s in site_streams)
        site_timer, merge_timer = _coordinator_timers()
        summaries: List[LTC] = []
        communication = 0
        for stream in site_streams:
            site_config = self.config.with_options(
                items_per_period=stream.period_length
            )
            started = time.perf_counter()
            ltc = build_ltc(site_config)
            stream.run(ltc, batched=self.batched)
            communication += len(to_bytes(ltc))
            if site_timer is not None:
                site_timer.observe(time.perf_counter() - started)
            summaries.append(ltc)
        # Sites share the logical period structure but see different
        # arrival counts, so their CLOCK rates legitimately differ.
        started = time.perf_counter()
        merged = merge(summaries, num_periods=num_periods, check_period=False)
        if merge_timer is not None:
            merge_timer.observe(time.perf_counter() - started)
        return CoordinatorReport(
            top_k=[(r.item, r.significance) for r in merged.top_k(k)],
            communication_bytes=communication,
            num_sites=len(site_streams),
        )


class SamplingCoordinator:
    """Each site runs a coordinated sampler; the coordinator ORs bitmaps.

    Sampled items get *exact* global frequency and persistency under any
    partition; unsampled items are invisible, capping recall at roughly
    the sampling rate.

    Args:
        sample_rate: Shared inclusion probability.
        alpha: Frequency weight of the reported significance.
        beta: Persistency weight.
        seed: Shared sampling seed.
    """

    def __init__(
        self,
        sample_rate: float,
        alpha: float = 0.0,
        beta: float = 1.0,
        seed: int = 0xC00D,
    ) -> None:
        self.sample_rate = sample_rate
        self.alpha = alpha
        self.beta = beta
        self.seed = seed

    def run(
        self, site_streams: Sequence[PeriodicStream], k: int
    ) -> CoordinatorReport:
        """Drive every site and rank the union of the sampled reports."""
        reports: List[List[Tuple[int, int, int]]] = []
        communication = 0
        for stream in site_streams:
            sampler = CoordinatedSampler(self.sample_rate, seed=self.seed)
            stream.run(sampler)
            reports.append(sampler.export())
            communication += sampler.export_bytes()
        combined = combine_reports(reports)
        scored = [
            (self.alpha * freq + self.beta * bin(bits).count("1"), item)
            for item, (freq, bits) in combined.items()
        ]
        scored.sort(key=lambda pair: (-pair[0], pair[1]))
        return CoordinatorReport(
            top_k=[(item, sig) for sig, item in scored[:k]],
            communication_bytes=communication,
            num_sites=len(site_streams),
        )
