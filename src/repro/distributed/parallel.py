"""Multi-core sharded ingestion (extension; scales the merging coordinator).

:class:`~repro.distributed.coordinator.MergingCoordinator` drives every
site sequentially in one process, so ingestion caps out at a single core
no matter how many sites the partition has.  This module adds the
process-parallel counterpart:

* :class:`ParallelMergingCoordinator` — a drop-in alongside
  ``MergingCoordinator`` with the same ``run(site_streams, k)`` API.  Each
  site's whole-period batches are shipped to a worker process (driven
  through :class:`concurrent.futures.ProcessPoolExecutor`); the worker
  replays them through the ``insert_many`` harvest-boundary fast path and
  returns its finished summary as a :func:`repro.core.serialize.to_bytes`
  payload; the parent restores and merges with :func:`repro.core.merge.merge`.
  Because a worker performs *exactly* the sequential per-site loop, the
  parallel answer is differentially testable against the sequential
  coordinator — item for item on item-sharded partitions
  (``tests/test_parallel.py``).
* :class:`ShardedPipeline` — hash-partitions one logical stream across N
  shards (:func:`repro.distributed.partition.partition_sharded`) and runs
  the parallel coordinator over them: single-stream multi-core ingestion.

Robustness: a worker that dies mid-run poisons its whole pool
(``BrokenProcessPool``), so each retry round gets a fresh executor and
only the still-unfinished shards are resubmitted, up to ``max_retries``
rounds; exhaustion raises :class:`WorkerCrashError` naming the shards.
When ``max_workers=1``, or the platform cannot host a process pool at
all, ingestion gracefully falls back to in-process execution of the same
worker function — bit-identical results, no pool.

Communication accounting covers both directions of the new path:
``communication_bytes`` (summaries shipped back, as in the sequential
coordinator) and ``ingest_ipc_bytes`` (pickled batches shipped out).
"""

from __future__ import annotations

import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from typing import (
    TYPE_CHECKING,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from multiprocessing.context import BaseContext

from repro import obs
from repro.core.config import LTCConfig
from repro.core.kernels import build_ltc
from repro.core.ltc import LTC
from repro.core.merge import merge
from repro.core.serialize import from_bytes, to_bytes
from repro.distributed.coordinator import CoordinatorReport, _coordinator_timers
from repro.distributed.partition import partition_sharded
from repro.streams.model import PeriodicStream


class WorkerCrashError(RuntimeError):
    """Raised when shards still fail after every retry round.

    Args:
        shards: Indices of the shards whose workers kept dying.
        max_retries: The retry budget that was exhausted.
        last_error: The final exception observed (kept as ``__cause__``
            context for debugging).
    """

    def __init__(
        self,
        shards: Sequence[int],
        max_retries: int,
        last_error: Optional[BaseException] = None,
    ) -> None:
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"shards {sorted(shards)} still failing after "
            f"{max_retries} retries{detail}"
        )
        self.shards = sorted(shards)
        self.max_retries = max_retries
        self.last_error = last_error


def process_pool_available() -> bool:
    """Whether this platform can host a process pool at all."""
    try:
        import multiprocessing

        return bool(multiprocessing.get_all_start_methods())
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


class _Counts(Protocol):
    """Anything inc()-able: a live counter or the null metric."""

    def inc(self, amount: float = 1) -> None: ...


def _pool_context() -> Optional[BaseContext]:
    """Prefer fork (cheap on Linux); fall back to the platform default."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None  # pragma: no cover - non-fork platforms


def ingest_shard(
    config: LTCConfig,
    batches: Sequence[Sequence[int]],
    crash_after: Optional[int] = None,
) -> bytes:
    """Worker body: replay one shard's period batches into a fresh LTC.

    Performs exactly the sequential coordinator's per-site loop
    (``PeriodicStream.run(ltc, batched=True)`` unrolled over the shipped
    batches), so the returned :func:`to_bytes` payload is bit-identical
    to the summary the sequential path would have built.

    Args:
        config: The per-site configuration (``items_per_period`` already
            set to the shard's period length).
        batches: One list of arrivals per period, in period order.
        crash_after: Fault-injection hook for the retry tests — the
            worker hard-exits (as if killed) after ingesting this many
            periods.  ``None`` disables injection.
    """
    ltc = build_ltc(config)
    insert_many = ltc.insert_many
    end_period = ltc.end_period
    for index, batch in enumerate(batches):
        if crash_after is not None and index >= crash_after:
            os._exit(13)  # simulate a hard worker death mid-run
        insert_many(batch)
        end_period()
    ltc.finalize()
    return to_bytes(ltc)


class ParallelMergingCoordinator:
    """Drive the merging coordinator's sites in parallel worker processes.

    Drop-in alongside :class:`~repro.distributed.coordinator.MergingCoordinator`:
    same constructor shape, same ``run(site_streams, k)`` signature, and —
    by construction — the same report for the same inputs (workers run the
    identical batched per-site loop; merging is unchanged).  The only
    report difference is the extra ``ingest_ipc_bytes`` accounting field.

    Args:
        config: The LTC configuration every site instantiates
            (``items_per_period`` is overridden per site, as in the
            sequential coordinator).
        max_workers: Process count; ``None`` means ``os.cpu_count()``.
            ``1`` skips the pool entirely and ingests in-process.
        max_retries: Retry rounds for crashed workers.  Each round
            resubmits only the failed shards to a fresh pool; exhaustion
            raises :class:`WorkerCrashError`.
    """

    def __init__(
        self,
        config: LTCConfig,
        max_workers: Optional[int] = None,
        max_retries: int = 2,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.config = config
        self.max_workers = max_workers
        self.max_retries = max_retries
        # Fault-injection plan (testing hook): shard index -> number of
        # attempts that crash after ingesting half the shard's periods.
        self._crash_plan: Dict[int, int] = {}
        self._ingest_ipc_bytes = 0

    def run(
        self, site_streams: Sequence[PeriodicStream], k: int
    ) -> CoordinatorReport:
        """Drive every site in parallel and produce the merged answer."""
        if not site_streams:
            raise ValueError("no site streams to run")
        num_periods = max(s.num_periods for s in site_streams)
        site_timer, merge_timer = _coordinator_timers()
        payloads = self._ingest(site_streams)
        summaries: List[LTC] = []
        for payload in payloads:
            started = time.perf_counter()
            summaries.append(from_bytes(payload))
            if site_timer is not None:
                # Parallel sites build concurrently in workers; the
                # parent-side cost per site is the restore, so that is
                # what this engine contributes to the shared series.
                site_timer.observe(time.perf_counter() - started)
        communication = sum(len(payload) for payload in payloads)
        started = time.perf_counter()
        merged = merge(summaries, num_periods=num_periods, check_period=False)
        if merge_timer is not None:
            merge_timer.observe(time.perf_counter() - started)
        return CoordinatorReport(
            top_k=[(r.item, r.significance) for r in merged.top_k(k)],
            communication_bytes=communication,
            num_sites=len(site_streams),
            ingest_ipc_bytes=self._ingest_ipc_bytes,
        )

    # ------------------------------------------------------------ ingestion
    def _jobs(
        self, site_streams: Sequence[PeriodicStream]
    ) -> List[Tuple[LTCConfig, List[List[int]]]]:
        """Build each shard's picklable (config, period batches) payload."""
        jobs: List[Tuple[LTCConfig, List[List[int]]]] = []
        for stream in site_streams:
            site_config = self.config.with_options(
                items_per_period=stream.period_length
            )
            jobs.append((site_config, stream.period_batches()))
        self._ingest_ipc_bytes = sum(
            len(pickle.dumps(job, protocol=pickle.HIGHEST_PROTOCOL))
            for job in jobs
        )
        if obs.is_enabled():
            obs.registry().gauge(
                "ingest_ipc_bytes",
                "Pickled batch bytes shipped coordinator -> workers "
                "in the most recent run",
            ).set(self._ingest_ipc_bytes)
        return jobs

    def _ingest(self, site_streams: Sequence[PeriodicStream]) -> List[bytes]:
        jobs = self._jobs(site_streams)
        workers = self.max_workers or os.cpu_count() or 1
        if workers == 1 or not process_pool_available():
            # Graceful in-process fallback: same worker body, no pool.
            # Fault injection is pool-only — it would kill the parent here.
            return [ingest_shard(config, batches) for config, batches in jobs]
        return self._run_pool(jobs, workers)

    def _run_pool(
        self, jobs: List[Tuple[LTCConfig, List[List[int]]]], workers: int
    ) -> List[bytes]:
        crash_counter: Optional[_Counts] = None
        retry_counter: Optional[_Counts] = None
        if obs.is_enabled():
            reg = obs.registry()
            crash_counter = reg.counter(
                "coordinator_worker_crashes_total",
                "Shard ingestion attempts lost to a dead worker process",
            )
            retry_counter = reg.counter(
                "coordinator_worker_retries_total",
                "Shard ingestion attempts resubmitted after a crash",
            )
        results: List[Optional[bytes]] = [None] * len(jobs)
        outstanding = list(range(len(jobs)))
        attempt = 0
        last_error: Optional[BaseException] = None
        while outstanding:
            if attempt > self.max_retries:
                raise WorkerCrashError(outstanding, self.max_retries, last_error)
            if retry_counter is not None and attempt > 0:
                retry_counter.inc(len(outstanding))
            # A dead worker breaks its whole pool, so every round gets a
            # fresh executor and resubmits only the unfinished shards.
            failed: List[int] = []
            with ProcessPoolExecutor(
                max_workers=min(workers, len(outstanding)),
                mp_context=_pool_context(),
            ) as pool:
                futures = {
                    index: pool.submit(
                        ingest_shard,
                        jobs[index][0],
                        jobs[index][1],
                        self._crash_schedule(index, attempt, len(jobs[index][1])),
                    )
                    for index in outstanding
                }
                for index, future in futures.items():
                    try:
                        results[index] = future.result()
                    except Exception as exc:  # BrokenProcessPool et al.
                        last_error = exc
                        failed.append(index)
                        if crash_counter is not None:
                            crash_counter.inc()
            outstanding = failed
            attempt += 1
        return [payload for payload in results if payload is not None]

    def _crash_schedule(
        self, index: int, attempt: int, num_batches: int
    ) -> Optional[int]:
        """Resolve the fault-injection plan for one submission."""
        if attempt < self._crash_plan.get(index, 0):
            return num_batches // 2
        return None


class ShardedPipeline:
    """Single-stream multi-core ingestion: hash-shard, ingest, merge.

    Hash-partitions one logical stream into item-sharded per-worker
    streams (all of an item's arrivals land on one shard, the regime
    where merging is exact) and drives them through a
    :class:`ParallelMergingCoordinator`.

    Args:
        config: The LTC configuration each shard instantiates
            (``items_per_period`` is overridden per shard).
        num_shards: Shard count; defaults to ``max_workers`` (or the CPU
            count when that is also unset).
        max_workers: Worker process count; ``None`` means ``os.cpu_count()``.
        max_retries: Crash-retry budget, as in the coordinator.
        seed: Item-shard hash seed (must be shared to reproduce a split).
    """

    def __init__(
        self,
        config: LTCConfig,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        max_retries: int = 2,
        seed: int = 0xD15C,
    ) -> None:
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        workers = max_workers or os.cpu_count() or 1
        self.num_shards = num_shards if num_shards is not None else workers
        self.seed = seed
        self.coordinator = ParallelMergingCoordinator(
            config, max_workers=max_workers, max_retries=max_retries
        )

    def run(self, stream: PeriodicStream, k: int) -> CoordinatorReport:
        """Shard ``stream``, ingest every shard in parallel, and merge."""
        shards = partition_sharded(stream, self.num_shards, seed=self.seed)
        return self.coordinator.run(shards, k)
