"""Multi-core sharded ingestion (extension; scales the merging coordinator).

:class:`~repro.distributed.coordinator.MergingCoordinator` drives every
site sequentially in one process, so ingestion caps out at a single core
no matter how many sites the partition has.  This module adds the
process-parallel counterpart, built around **persistent key-space-sharded
workers**:

* Each worker process is spawned **once per run** and owns a disjoint
  subset of the shards (and therefore — on item-sharded partitions — a
  disjoint hash range of the key space) for the whole run.  The parent
  streams period batches to the owners period-by-period and collects each
  worker's finished :func:`repro.core.serialize.to_bytes` summaries once
  at the end.  Because shards are item-disjoint, the final
  :func:`repro.core.merge.merge` is a trivial concatenation of
  non-overlapping tables rather than a cell-wise reconciliation.
* Batches travel through a :class:`~repro.distributed.transport.ShmRing`
  — a shared-memory ring of ``int64`` slots the worker inherited via
  ``fork`` — so the pipe carries only tiny control tuples and
  ``ingest_ipc_bytes`` drops to near zero.  When numpy/shm/fork is
  unavailable (or ``transport="pickle"`` is forced), batches fall back to
  pickled chunks over the pipe, acknowledged in lockstep so a dead reader
  can never wedge the parent mid-``send``.  Oversized batches spill to
  the same pickle path per batch.

Each worker performs *exactly* the sequential per-site loop
(``insert_many`` + ``end_period`` per period, ``finalize`` at the end),
so the parallel answer is differentially testable against the sequential
coordinator — item for item on item-sharded partitions
(``tests/test_parallel.py``), crash injection included.

Robustness: worker deaths are detected per process via its ``sentinel``
(not via pool teardown, which used to blame every in-flight shard for one
crash).  Only the dead worker is respawned, and only *its* shards are
replayed from period zero; other workers never notice.  A worker that
keeps dying past ``max_retries`` respawns raises
:class:`WorkerCrashError` naming its owned shards, and
``coordinator_worker_crashes_total`` counts exactly one increment per
actual death.  When ``max_workers=1`` (or the platform cannot host
worker processes at all) ingestion gracefully falls back to in-process
execution of the same per-shard loop — bit-identical results, no
processes, no IPC.

Communication accounting covers both directions:
``communication_bytes`` (summaries shipped back, as in the sequential
coordinator) and ``ingest_ipc_bytes`` (bytes the parent actually wrote
to worker pipes).  Every outbound message is serialised exactly once by
:func:`dumps_ipc` and that same payload is both shipped and counted.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from typing import (
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:
    from multiprocessing.connection import Connection
    from multiprocessing.context import BaseContext
    from multiprocessing.process import BaseProcess

from repro import obs
from repro.core.config import LTCConfig
from repro.core.kernels import build_ltc
from repro.core.ltc import LTC
from repro.core.merge import merge
from repro.core.serialize import from_bytes, to_bytes
from repro.distributed.coordinator import CoordinatorReport, _coordinator_timers
from repro.distributed.partition import partition_sharded
from repro.distributed.transport import ShmRing, shm_available
from repro.streams.model import PeriodicStream

# Pickle-path chunk size: small enough that one chunk (the only
# unacknowledged message in flight on that path) always fits in the OS
# pipe buffer, so `send_bytes` never blocks against a dead reader.
_PICKLE_CHUNK_ITEMS = 2048

_TRANSPORTS = ("auto", "shm", "pickle")


class WorkerCrashError(RuntimeError):
    """Raised when a worker still crashes after every respawn attempt.

    Args:
        shards: Indices of the shards owned by the repeatedly-dying
            worker (only these were affected; sibling workers' shards
            completed normally).
        max_retries: The respawn budget that was exhausted.
        last_error: The final exception observed (kept as ``__cause__``
            context for debugging).
    """

    def __init__(
        self,
        shards: Sequence[int],
        max_retries: int,
        last_error: Optional[BaseException] = None,
    ) -> None:
        detail = f": {last_error}" if last_error is not None else ""
        super().__init__(
            f"shards {sorted(shards)} still failing after "
            f"{max_retries} retries{detail}"
        )
        self.shards = sorted(shards)
        self.max_retries = max_retries
        self.last_error = last_error


def worker_processes_available() -> bool:
    """Whether this platform can host worker processes at all."""
    try:
        import multiprocessing

        return bool(multiprocessing.get_all_start_methods())
    except (ImportError, NotImplementedError):  # pragma: no cover
        return False


# Backwards-compatible alias from the pool-based implementation.
process_pool_available = worker_processes_available


def dumps_ipc(message: object) -> bytes:
    """Serialise one coordinator→worker message — exactly once.

    The single chokepoint for parent→worker bytes: callers ship the
    returned payload verbatim *and* add its length to
    ``ingest_ipc_bytes``, so nothing is ever pickled a second time just
    for accounting (the pool-based implementation re-pickled every job
    purely to measure it).
    """
    return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)


class _Counts(Protocol):
    """Anything inc()-able: a live counter or the null metric."""

    def inc(self, amount: float = 1) -> None: ...


class _WorkerDied(RuntimeError):
    """Internal: a worker process died mid-conversation."""

    def __init__(self, worker_id: int, cause: BaseException) -> None:
        super().__init__(f"worker {worker_id} died: {cause}")
        self.worker_id = worker_id
        self.cause = cause


def _mp_context() -> "BaseContext":
    """Prefer fork (cheap on Linux, required for shm inheritance)."""
    import multiprocessing

    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-fork


def ingest_shard(
    config: LTCConfig,
    batches: Sequence[Sequence[int]],
    crash_after: Optional[int] = None,
) -> bytes:
    """Replay one shard's period batches into a fresh LTC.

    Performs exactly the sequential coordinator's per-site loop
    (``PeriodicStream.run(ltc, batched=True)`` unrolled over the
    batches), so the returned :func:`to_bytes` payload is bit-identical
    to the summary the sequential path would have built.  Used directly
    by the in-process fallback; the persistent workers run the same loop
    incrementally as batches arrive.

    Args:
        config: The per-site configuration (``items_per_period`` already
            set to the shard's period length).
        batches: One list of arrivals per period, in period order.
        crash_after: Fault-injection hook for the retry tests — the
            worker hard-exits (as if killed) after ingesting this many
            periods.  ``None`` disables injection.
    """
    ltc = build_ltc(config)
    insert_many = ltc.insert_many
    end_period = ltc.end_period
    for index, batch in enumerate(batches):
        if crash_after is not None and index >= crash_after:
            os._exit(13)  # simulate a hard worker death mid-run
        insert_many(batch)
        end_period()
    ltc.finalize()
    return to_bytes(ltc)


class _WorkerState:
    """Worker-side shard sessions (the logic inside ``_worker_main``).

    Factored out of the process entry point so the message protocol is
    unit-testable in-process: feed it parent messages, check the replies.
    One LTC per owned shard; batches arrive either as ring slots
    (``"b"``) or pickled chunks (``"c"``), and ``"f"`` finalizes every
    shard and returns the serialized summaries.
    """

    def __init__(
        self,
        jobs: Sequence[Tuple[int, LTCConfig]],
        ring: Optional[ShmRing],
        crash_spec: Dict[int, int],
    ) -> None:
        self._ltcs: Dict[int, LTC] = {
            shard: build_ltc(config) for shard, config in jobs
        }
        self._periods: Dict[int, int] = {shard: 0 for shard, _ in jobs}
        self._pending: Dict[int, List[int]] = {shard: [] for shard, _ in jobs}
        self._ring = ring
        self._crash_spec = crash_spec

    def handle(self, message: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Process one parent message and return the reply to send."""
        kind = message[0]
        if kind == "b":  # ring batch: (kind, shard, slot, length)
            _, shard, slot, length = message
            if self._ring is None:
                raise RuntimeError("ring batch received without a ring")
            items = self._ring.read_list(slot, length)
            self._ingest(shard, items)
            return ("a", slot)
        if kind == "c":  # pickled chunk: (kind, shard, items, final)
            _, shard, items, final = message
            self._pending[shard].extend(items)
            if final:
                batch = self._pending[shard]
                self._pending[shard] = []
                self._ingest(shard, batch)
            return ("a", None)
        if kind == "f":  # finish: finalize and return all summaries
            payloads: Dict[int, bytes] = {}
            for shard in sorted(self._ltcs):
                ltc = self._ltcs[shard]
                ltc.finalize()
                payloads[shard] = to_bytes(ltc)
            return ("s", payloads)
        raise RuntimeError(f"unknown worker message kind: {kind!r}")

    def _ingest(self, shard: int, items: List[int]) -> None:
        crash_after = self._crash_spec.get(shard)
        if crash_after is not None and self._periods[shard] >= crash_after:
            os._exit(13)  # pragma: no cover - simulated death, child only
        ltc = self._ltcs[shard]
        ltc.insert_many(items)
        ltc.end_period()
        self._periods[shard] += 1


def _worker_main(
    conn: "Connection",
    jobs: Sequence[Tuple[int, LTCConfig]],
    ring: Optional[ShmRing],
    crash_spec: Dict[int, int],
) -> None:  # pragma: no cover - runs in the worker process
    """Worker process entry point: serve messages until the summaries go out."""
    state = _WorkerState(jobs, ring, crash_spec)
    while True:
        try:
            message = pickle.loads(conn.recv_bytes())
        except (EOFError, OSError):
            os._exit(1)
        reply = state.handle(message)
        conn.send_bytes(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        if reply[0] == "s":
            break
    conn.close()
    # Hard exit skips interpreter teardown so the fork-inherited ring
    # mapping (owned and unlinked by the parent) is never double-closed.
    os._exit(0)


class _ShardWorker:
    """Parent-side handle for one persistent worker process.

    Owns the worker's shard list, its control pipe, its shm ring (if
    any), the per-shard count of batches handed off (``sent`` — the
    replay cursor after a respawn), and the outbound byte count.  Crash
    detection is per process: every receive waits on the pipe *and* the
    process sentinel, so a death is noticed even while acks are pending,
    and sends translate a broken pipe into :class:`_WorkerDied`.
    """

    def __init__(
        self,
        worker_id: int,
        jobs: Sequence[Tuple[int, LTCConfig]],
        ctx: "BaseContext",
        ring: Optional[ShmRing],
    ) -> None:
        self.worker_id = worker_id
        self.jobs = list(jobs)
        self.shards = [shard for shard, _ in self.jobs]
        self.sent: Dict[int, int] = {shard: 0 for shard in self.shards}
        self.attempts = 0
        self.ipc_bytes = 0
        self.ring = ring
        self._ctx = ctx
        self._free: Deque[int] = deque()
        self.proc: Optional["BaseProcess"] = None
        self.conn: Optional["Connection"] = None

    def spawn(self, crash_spec: Dict[int, int]) -> None:
        """(Re)start the worker process; resets the in-flight window."""
        if self.conn is not None:
            self.conn.close()
        parent_conn, child_conn = self._ctx.Pipe()
        proc = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.jobs, self.ring, crash_spec),
            name=f"repro-shard-worker-{self.worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        self.proc = proc
        self.conn = parent_conn
        self._free = (
            deque(range(self.ring.slots)) if self.ring is not None else deque()
        )

    # ------------------------------------------------------------- plumbing
    def _send(self, message: Tuple[Any, ...]) -> None:
        payload = dumps_ipc(message)
        self.ipc_bytes += len(payload)
        assert self.conn is not None
        try:
            self.conn.send_bytes(payload)
        except (BrokenPipeError, ConnectionError, OSError) as exc:
            raise _WorkerDied(self.worker_id, exc) from exc

    def _recv(self) -> Tuple[Any, ...]:
        """Receive one worker reply, or raise :class:`_WorkerDied`.

        Waits on the pipe *and* the process sentinel; buffered replies
        are drained before a death is declared (acks sent just before a
        crash are still honoured).
        """
        from multiprocessing.connection import wait as _wait

        assert self.conn is not None and self.proc is not None
        while True:
            _wait([self.conn, self.proc.sentinel])
            if self.conn.poll(0):
                try:
                    reply: Tuple[Any, ...] = pickle.loads(
                        self.conn.recv_bytes()
                    )
                    return reply
                except (EOFError, OSError) as exc:
                    raise _WorkerDied(self.worker_id, exc) from exc
            if not self.proc.is_alive():
                raise _WorkerDied(
                    self.worker_id,
                    RuntimeError(
                        f"worker {self.worker_id} exited with "
                        f"code {self.proc.exitcode}"
                    ),
                )

    def _note_ack(self, reply: Tuple[Any, ...]) -> None:
        if reply[0] != "a":
            raise RuntimeError(f"expected ack, got {reply[0]!r}")
        if reply[1] is not None:
            self._free.append(reply[1])

    def _acquire_slot(self) -> int:
        assert self.conn is not None
        while self.conn.poll(0):  # opportunistically drain pending acks
            self._note_ack(self._recv())
        while not self._free:
            self._note_ack(self._recv())
        return self._free.popleft()

    # ------------------------------------------------------------ transport
    def send_batch(
        self, shard: int, array: Any, items: Optional[Sequence[int]]
    ) -> None:
        """Hand one period batch to the worker.

        ``array`` is an ``int64`` numpy view (or ``None``); ``items`` is
        the list fallback.  Batches that have an array and fit a ring
        slot go zero-copy; everything else — no ring, no array (numpy
        missing or oversized keys), or batch larger than a slot — spills
        to lockstep pickled chunks.
        """
        if (
            self.ring is not None
            and array is not None
            and len(array) <= self.ring.slot_items
        ):
            slot = self._acquire_slot()
            self.ring.write(slot, array)
            self._send(("b", shard, slot, len(array)))
            return
        data: Sequence[int] = (
            array.tolist() if items is None else list(items)
        )
        if not data:
            self._send(("c", shard, [], True))
            self._await_chunk_ack()
            return
        for start in range(0, len(data), _PICKLE_CHUNK_ITEMS):
            chunk = list(data[start : start + _PICKLE_CHUNK_ITEMS])
            final = start + _PICKLE_CHUNK_ITEMS >= len(data)
            self._send(("c", shard, chunk, final))
            self._await_chunk_ack()

    def _await_chunk_ack(self) -> None:
        # Ring acks may be interleaved ahead of the chunk ack; replies
        # are FIFO, so consume until the chunk's own (slotless) ack.
        while True:
            reply = self._recv()
            self._note_ack(reply)
            if reply[1] is None:
                return

    def collect(self) -> Dict[int, bytes]:
        """Ask for the finished summaries of every owned shard."""
        self._send(("f",))
        while True:
            reply = self._recv()
            if reply[0] == "a":
                self._note_ack(reply)
                continue
            if reply[0] == "s":
                payloads: Dict[int, bytes] = reply[1]
                return payloads
            raise RuntimeError(f"unexpected worker reply: {reply[0]!r}")

    def shutdown(self) -> None:
        """Reap the process and destroy the ring (parent ``finally``)."""
        if self.proc is not None:
            if self.proc.is_alive():
                self.proc.terminate()
            self.proc.join(timeout=10)
        if self.conn is not None:
            self.conn.close()
            self.conn = None
        if self.ring is not None:
            self.ring.destroy()
            self.ring = None


class ParallelMergingCoordinator:
    """Drive the merging coordinator's sites in persistent worker processes.

    Drop-in alongside :class:`~repro.distributed.coordinator.MergingCoordinator`:
    same constructor shape, same ``run(site_streams, k)`` signature, and —
    by construction — the same report for the same inputs (workers run the
    identical batched per-site loop; merging is unchanged).  The report
    additionally carries ``ingest_ipc_bytes`` and ``worker_crashes``.

    Args:
        config: The LTC configuration every site instantiates
            (``items_per_period`` is overridden per site, as in the
            sequential coordinator).
        max_workers: Worker process count; ``None`` means
            ``os.cpu_count()``.  ``1`` skips processes entirely and
            ingests in-process (override with ``use_processes=True``).
        max_retries: Respawn budget per worker.  A worker that dies gets
            respawned and its shards replayed from period zero, up to
            this many times; exhaustion raises :class:`WorkerCrashError`.
        transport: ``"auto"`` (shared memory when available, else
            pickled chunks), ``"shm"`` (require shared memory), or
            ``"pickle"`` (force the fallback — the benchmark baseline).
        ring_slots: Ring slots per worker — the zero-copy in-flight
            window.
        slot_items: Ring slot capacity in items; ``None`` sizes slots to
            the largest period batch.  Small values force the oversized-
            batch spill path (testing hook).
        use_processes: ``None`` auto (processes iff ``max_workers > 1``),
            ``True``/``False`` force.  Platforms without multiprocessing
            always fall back in-process.
    """

    def __init__(
        self,
        config: LTCConfig,
        max_workers: Optional[int] = None,
        max_retries: int = 2,
        transport: str = "auto",
        ring_slots: int = 4,
        slot_items: Optional[int] = None,
        use_processes: Optional[bool] = None,
    ) -> None:
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if transport not in _TRANSPORTS:
            raise ValueError(f"transport must be one of {_TRANSPORTS}")
        if ring_slots < 1:
            raise ValueError("ring_slots must be >= 1")
        if slot_items is not None and slot_items < 1:
            raise ValueError("slot_items must be >= 1")
        self.config = config
        self.max_workers = max_workers
        self.max_retries = max_retries
        self.transport = transport
        self.ring_slots = ring_slots
        self.slot_items = slot_items
        self.use_processes = use_processes
        # Fault-injection plan (testing hook): shard index -> number of
        # owning-worker spawns that crash after ingesting half the
        # shard's periods.
        self._crash_plan: Dict[int, int] = {}
        self._ingest_ipc_bytes = 0
        self._worker_crashes = 0

    def run(
        self, site_streams: Sequence[PeriodicStream], k: int
    ) -> CoordinatorReport:
        """Drive every site in parallel and produce the merged answer."""
        if not site_streams:
            raise ValueError("no site streams to run")
        num_periods = max(s.num_periods for s in site_streams)
        site_timer, merge_timer = _coordinator_timers()
        payloads = self._ingest(site_streams)
        summaries: List[LTC] = []
        for payload in payloads:
            started = time.perf_counter()
            summaries.append(from_bytes(payload))
            if site_timer is not None:
                # Parallel sites build concurrently in workers; the
                # parent-side cost per site is the restore, so that is
                # what this engine contributes to the shared series.
                site_timer.observe(time.perf_counter() - started)
        communication = sum(len(payload) for payload in payloads)
        started = time.perf_counter()
        merged = merge(summaries, num_periods=num_periods, check_period=False)
        if merge_timer is not None:
            merge_timer.observe(time.perf_counter() - started)
        return CoordinatorReport(
            top_k=[(r.item, r.significance) for r in merged.top_k(k)],
            communication_bytes=communication,
            num_sites=len(site_streams),
            ingest_ipc_bytes=self._ingest_ipc_bytes,
            worker_crashes=self._worker_crashes,
        )

    # ------------------------------------------------------------ ingestion
    def _resolve_transport(self) -> str:
        if self.transport == "pickle":
            return "pickle"
        if self.transport == "shm":
            if not shm_available():
                raise RuntimeError(
                    "shm transport requested but numpy/shared_memory/fork "
                    "is unavailable"
                )
            return "shm"
        return "shm" if shm_available() else "pickle"

    def _site_configs(
        self, site_streams: Sequence[PeriodicStream]
    ) -> List[LTCConfig]:
        return [
            self.config.with_options(items_per_period=stream.period_length)
            for stream in site_streams
        ]

    def _set_ipc_gauge(self) -> None:
        if obs.is_enabled():
            obs.registry().gauge(
                "ingest_ipc_bytes",
                "Bytes shipped coordinator -> workers in the most recent "
                "run (control messages and pickled batches; zero-copy "
                "ring traffic is free)",
            ).set(self._ingest_ipc_bytes)

    def _ingest(self, site_streams: Sequence[PeriodicStream]) -> List[bytes]:
        configs = self._site_configs(site_streams)
        workers = self.max_workers or os.cpu_count() or 1
        in_process = (
            self.use_processes is False
            or (self.use_processes is None and workers == 1)
            or not worker_processes_available()
        )
        if in_process:
            # Graceful fallback: same per-shard loop, no processes, no
            # IPC.  Fault injection is process-only — it would kill the
            # parent here.
            self._ingest_ipc_bytes = 0
            self._worker_crashes = 0
            self._set_ipc_gauge()
            return [
                ingest_shard(config, stream.period_batches())
                for config, stream in zip(configs, site_streams)
            ]
        return self._run_workers(
            site_streams, configs, min(workers, len(site_streams))
        )

    def _run_workers(
        self,
        sites: Sequence[PeriodicStream],
        configs: List[LTCConfig],
        num_workers: int,
    ) -> List[bytes]:
        use_shm = self._resolve_transport() == "shm"
        slices = [stream.period_slices() for stream in sites]
        arrays = [
            stream.events_array() if use_shm else None for stream in sites
        ]
        slot_items = self.slot_items or max(
            [end - start for site in slices for start, end in site] + [1]
        )
        ctx = _mp_context()

        crash_counter: Optional[_Counts] = None
        retry_counter: Optional[_Counts] = None
        if obs.is_enabled():
            reg = obs.registry()
            crash_counter = reg.counter(
                "coordinator_worker_crashes_total",
                "Worker processes that died mid-run (one increment per "
                "actual death)",
            )
            retry_counter = reg.counter(
                "coordinator_worker_retries_total",
                "Shard ingestions replayed into a respawned worker",
            )

        workers: List[_ShardWorker] = []

        def crash_spec(worker: _ShardWorker) -> Dict[int, int]:
            return {
                shard: len(slices[shard]) // 2
                for shard in worker.shards
                if worker.attempts < self._crash_plan.get(shard, 0)
            }

        def send_one(worker: _ShardWorker, shard: int, period: int) -> None:
            start, end = slices[shard][period]
            array = arrays[shard]
            if array is not None:
                worker.send_batch(shard, array[start:end], None)
            else:
                worker.send_batch(shard, None, sites[shard].events[start:end])

        def recover(worker: _ShardWorker, death: _WorkerDied) -> None:
            """Respawn ``worker`` and replay its handed-off batches."""
            exc: BaseException = death
            while True:
                self._worker_crashes += 1
                if crash_counter is not None:
                    crash_counter.inc()
                worker.attempts += 1
                if worker.attempts > self.max_retries:
                    raise WorkerCrashError(
                        worker.shards, self.max_retries, exc
                    ) from exc
                if retry_counter is not None:
                    retry_counter.inc(len(worker.shards))
                worker.spawn(crash_spec(worker))
                try:
                    for shard in worker.shards:
                        for period in range(worker.sent[shard]):
                            send_one(worker, shard, period)
                    return
                except _WorkerDied as next_death:
                    exc = next_death

        def feed(worker: _ShardWorker, shard: int, period: int) -> None:
            while True:
                try:
                    send_one(worker, shard, period)
                except _WorkerDied as death:
                    recover(worker, death)
                    continue
                worker.sent[shard] = period + 1
                return

        def collect(worker: _ShardWorker) -> Dict[int, bytes]:
            while True:
                try:
                    return worker.collect()
                except _WorkerDied as death:
                    recover(worker, death)

        self._worker_crashes = 0
        payloads: Dict[int, bytes] = {}
        try:
            # Rings are created inside the try so a failure partway
            # through construction still unlinks the earlier segments.
            for worker_id in range(num_workers):
                workers.append(
                    _ShardWorker(
                        worker_id,
                        [
                            (shard, configs[shard])
                            for shard in range(
                                worker_id, len(sites), num_workers
                            )
                        ],
                        ctx,
                        ShmRing(self.ring_slots, slot_items)
                        if use_shm
                        else None,
                    )
                )
            for worker in workers:
                worker.spawn(crash_spec(worker))
            for period in range(max(len(site) for site in slices)):
                for worker in workers:
                    for shard in worker.shards:
                        if period < len(slices[shard]):
                            feed(worker, shard, period)
            for worker in workers:
                payloads.update(collect(worker))
        finally:
            for worker in workers:
                worker.shutdown()
        self._ingest_ipc_bytes = sum(worker.ipc_bytes for worker in workers)
        self._set_ipc_gauge()
        return [payloads[shard] for shard in range(len(sites))]


class ShardedPipeline:
    """Single-stream multi-core ingestion: hash-shard, ingest, merge.

    Hash-partitions one logical stream into item-sharded per-worker
    streams (all of an item's arrivals land on one shard, the regime
    where merging is exact) and drives them through a
    :class:`ParallelMergingCoordinator` — each persistent worker ends up
    owning a fixed slice of the key space for the whole run.

    Args:
        config: The LTC configuration each shard instantiates
            (``items_per_period`` is overridden per shard).
        num_shards: Shard count; defaults to ``max_workers`` (or the CPU
            count when that is also unset).
        max_workers: Worker process count; ``None`` means ``os.cpu_count()``.
        max_retries: Crash-respawn budget, as in the coordinator.
        seed: Item-shard hash seed (must be shared to reproduce a split).
        transport: Batch transport, as in the coordinator.
    """

    def __init__(
        self,
        config: LTCConfig,
        num_shards: Optional[int] = None,
        max_workers: Optional[int] = None,
        max_retries: int = 2,
        seed: int = 0xD15C,
        transport: str = "auto",
    ) -> None:
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        workers = max_workers or os.cpu_count() or 1
        self.num_shards = num_shards if num_shards is not None else workers
        self.seed = seed
        self.coordinator = ParallelMergingCoordinator(
            config,
            max_workers=max_workers,
            max_retries=max_retries,
            transport=transport,
        )

    def run(self, stream: PeriodicStream, k: int) -> CoordinatorReport:
        """Shard ``stream``, ingest every shard in parallel, and merge."""
        shards = partition_sharded(stream, self.num_shards, seed=self.seed)
        return self.coordinator.run(shards, k)
