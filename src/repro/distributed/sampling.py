"""Coordinated sampling with per-period presence bitmaps.

Every site samples the *same* pseudo-random item subset (same hash, same
threshold), and for each sampled item records a bitmap of the periods in
which the site saw it.  Because presence bitmaps OR losslessly, a
coordinator can reconstruct the exact global frequency and persistency of
every sampled item no matter how arrivals were spread across sites —
the property that makes coordinated sampling attractive for distributed
streams (paper §II-B, refs [17]/[30]).  The price is recall: items outside
the sample are invisible everywhere.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.hashing.family import HashFamily
from repro.summaries.base import ItemReport, StreamSummary

_HASH_SPACE = 1 << 64


class CoordinatedSampler(StreamSummary):
    """Per-site sampler recording exact stats of the sampled subset.

    Args:
        sample_rate: Inclusion probability (identical at every site).
        seed: Sampling-hash seed (identical at every site — that is the
            "coordinated" part).
    """

    def __init__(self, sample_rate: float, seed: int = 0xC00D) -> None:
        if not 0.0 < sample_rate <= 1.0:
            raise ValueError("sample_rate must be in (0, 1]")
        self.sample_rate = sample_rate
        self.seed = seed
        self._hash = HashFamily(seed).member(0)
        self._threshold = int(sample_rate * _HASH_SPACE)
        self._freq: Dict[int, int] = {}
        self._presence: Dict[int, int] = {}  # item -> period bitmap
        self._period = 0

    def insert(self, item: int) -> None:
        """Process one arrival (sampled items only)."""
        if self._hash(item) >= self._threshold:
            return
        self._freq[item] = self._freq.get(item, 0) + 1
        self._presence[item] = self._presence.get(item, 0) | (1 << self._period)

    def insert_many(
        self, items: Iterable[int], counts: Optional[Sequence[int]] = None
    ) -> None:
        """Batched arrivals, replay-identical to per-event :meth:`insert`.

        Within one period frequency additions and presence-bit ORs
        commute, so a weighted row folds to a single dictionary update
        (first-touch dict order still matches the per-event path because
        rows are walked in arrival order).
        """
        threshold = self._threshold
        sample_hash = self._hash
        bit = 1 << self._period
        freq = self._freq
        presence = self._presence
        if counts is None:
            for item in items:
                if sample_hash(item) < threshold:
                    freq[item] = freq.get(item, 0) + 1
                    presence[item] = presence.get(item, 0) | bit
            return
        for item, count in zip(items, counts):
            if count < 0:
                raise ValueError("counts must be non-negative")
            if count and sample_hash(item) < threshold:
                freq[item] = freq.get(item, 0) + count
                presence[item] = presence.get(item, 0) | bit

    def end_period(self) -> None:
        """Advance to the next period's bitmap bit."""
        self._period += 1

    def query(self, item: int) -> float:
        """Exact local persistency of a sampled item (0 otherwise)."""
        return float(bin(self._presence.get(item, 0)).count("1"))

    def top_k(self, k: int) -> List[ItemReport]:
        """Locally most persistent sampled items."""
        ranked = sorted(
            self._presence.items(),
            key=lambda kv: (-bin(kv[1]).count("1"), kv[0]),
        )
        return [
            ItemReport(
                item=item,
                significance=float(bin(bits).count("1")),
                frequency=float(self._freq[item]),
                persistency=float(bin(bits).count("1")),
            )
            for item, bits in ranked[:k]
        ]

    # ------------------------------------------------------------ shipping
    def export(self) -> "list[tuple[int, int, int]]":
        """The site's report: ``(item, frequency, presence_bitmap)`` rows."""
        return [
            (item, self._freq[item], bits)
            for item, bits in self._presence.items()
        ]

    def export_bytes(self) -> int:
        """Communication cost of :meth:`export`.

        4B id + 4B frequency + one byte per 8 tracked periods.
        """
        bitmap_bytes = max(1, (self._period + 7) // 8)
        return len(self._presence) * (8 + bitmap_bytes)


def combine_reports(
    reports: "list[list[tuple[int, int, int]]]",
) -> Dict[int, Tuple[int, int]]:
    """OR/ADD site reports into global ``item -> (frequency, bitmap)``."""
    combined: Dict[int, Tuple[int, int]] = {}
    for report in reports:
        for item, freq, bits in report:
            old_freq, old_bits = combined.get(item, (0, 0))
            combined[item] = (old_freq + freq, old_bits | bits)
    return combined
