"""Trace I/O: item-only and timestamped loaders, time binning."""

from __future__ import annotations

import io

import pytest

from repro.streams.io import (
    TimeBinnedStream,
    dump_items,
    load_items,
    load_timestamped,
    loads_items,
)


class TestLoadItems:
    def test_basic(self):
        stream = loads_items("1\n2\n1\n3\n", num_periods=2)
        assert stream.events == [1, 2, 1, 3]
        assert stream.num_periods == 2

    def test_skips_blank_and_comment_lines(self):
        stream = loads_items("# header\n1\n\n2\n# x\n3\n", num_periods=1)
        assert stream.events == [1, 2, 3]

    def test_string_ids_canonicalised(self):
        stream = loads_items("alice\nbob\nalice\n", num_periods=1)
        assert stream.events[0] == stream.events[2]
        assert stream.events[0] != stream.events[1]

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            loads_items("", num_periods=1)

    def test_periods_clamped_to_events(self):
        stream = loads_items("1\n2\n", num_periods=100)
        assert stream.num_periods == 2

    def test_file_path(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("5\n6\n7\n")
        stream = load_items(str(path), num_periods=1)
        assert stream.events == [5, 6, 7]

    def test_roundtrip_with_dump(self, tmp_path):
        original = loads_items("9\n8\n9\n", num_periods=1)
        path = tmp_path / "out.txt"
        dump_items(original, str(path))
        again = load_items(str(path), num_periods=1)
        assert again.events == original.events


class TestLoadTimestamped:
    def test_sorts_by_time(self):
        text = "2 0.9\n1 0.1\n3 0.5\n"
        stream = load_timestamped(io.StringIO(text), num_periods=1)
        assert stream.events == [1, 3, 2]

    def test_time_bins(self):
        # Times 0..9; 2 periods → [0,5) and [5,10).
        text = "".join(f"{i} {i}\n" for i in range(10))
        stream = load_timestamped(io.StringIO(text), num_periods=2)
        periods = list(stream.iter_periods())
        assert periods[0] == [0, 1, 2, 3, 4]
        assert periods[1] == [5, 6, 7, 8, 9]

    def test_uneven_bins(self):
        # Burst early: most events land in the first interval.
        text = "1 0.0\n2 0.1\n3 0.2\n4 0.3\n5 9.9\n"
        stream = load_timestamped(io.StringIO(text), num_periods=2)
        periods = list(stream.iter_periods())
        assert len(periods[0]) == 4
        assert len(periods[1]) == 1

    def test_custom_columns_and_separator(self):
        text = "0.5,a\n1.5,b\n"
        stream = load_timestamped(
            io.StringIO(text),
            num_periods=2,
            separator=",",
            item_column=1,
            time_column=0,
        )
        assert stream.num_periods == 2

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            load_timestamped(io.StringIO(""), num_periods=2)


class TestTimeBinnedStream:
    def make(self):
        records = [(float(t), t * 10) for t in range(10)]
        return TimeBinnedStream.from_records(records, num_periods=5)

    def test_period_of(self):
        stream = self.make()
        assert stream.period_of(0) == 0
        assert stream.period_of(2) == 1
        assert stream.period_of(9) == 4

    def test_iter_periods_covers_everything(self):
        stream = self.make()
        flattened = [i for p in stream.iter_periods() for i in p]
        assert flattened == stream.events

    def test_empty_trailing_periods(self):
        records = [(0.0, 1), (0.1, 2), (10.0, 3)]
        stream = TimeBinnedStream.from_records(records, num_periods=4)
        periods = [len(p) for p in stream.iter_periods()]
        assert sum(periods) == 3
        assert len(periods) == 4

    def test_drives_summaries(self):
        from repro.streams.ground_truth import GroundTruth

        records = [(float(t), t % 3) for t in range(30)]
        stream = TimeBinnedStream.from_records(records, num_periods=5)
        truth = GroundTruth(stream)
        assert truth.persistency(0) == 5

    def test_rejects_bad_periods(self):
        with pytest.raises(ValueError):
            TimeBinnedStream.from_records([(0.0, 1)], num_periods=0)
