"""Property-based tests of LTC's core invariants (hypothesis)."""

from __future__ import annotations

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream

# Small alphabets and tables force heavy contention, which is where the
# invariants are at risk.
events_strategy = st.lists(st.integers(0, 30), min_size=1, max_size=400)
periods_strategy = st.integers(1, 8)
table_strategy = st.tuples(st.integers(1, 4), st.integers(1, 8))  # (w, d)


def build_and_run(events, num_periods, w, d, alpha, beta, ltr, de) -> LTC:
    num_periods = min(num_periods, len(events))
    stream = make_stream(events, num_periods=num_periods)
    ltc = LTC(
        LTCConfig(
            num_buckets=w,
            bucket_width=d,
            alpha=alpha,
            beta=beta,
            items_per_period=stream.period_length,
            longtail_replacement=ltr,
            deviation_eliminator=de,
        )
    )
    stream.run(ltc)
    return ltc


class TestNoOverestimation:
    """Theorem IV.1: with the Deviation Eliminator and without Long-tail
    Replacement, ŝ ≤ s for every item — in fact f̂ ≤ f and p̂ ≤ p."""

    @given(events_strategy, periods_strategy, table_strategy)
    @settings(max_examples=120, deadline=None)
    def test_frequency_and_persistency_never_overestimated(
        self, events, num_periods, table
    ):
        w, d = table
        num_periods = min(num_periods, len(events))
        truth = GroundTruth(make_stream(events, num_periods=num_periods))
        ltc = build_and_run(
            events, num_periods, w, d, alpha=1.0, beta=1.0, ltr=False, de=True
        )
        for item in set(events):
            f, p = ltc.estimate(item)
            assert f <= truth.frequency(item)
            assert p <= truth.persistency(item)

    @given(events_strategy, periods_strategy)
    @settings(max_examples=60, deadline=None)
    def test_pure_persistency_mode(self, events, num_periods):
        num_periods = min(num_periods, len(events))
        truth = GroundTruth(make_stream(events, num_periods=num_periods))
        ltc = build_and_run(
            events, num_periods, w=2, d=4, alpha=0.0, beta=1.0, ltr=False, de=True
        )
        for item in set(events):
            assert ltc.estimate(item)[1] <= truth.persistency(item)


class TestStructuralInvariants:
    @given(
        events_strategy,
        periods_strategy,
        table_strategy,
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=120, deadline=None)
    def test_counters_sane_under_any_configuration(
        self, events, num_periods, table, ltr, de
    ):
        w, d = table
        ltc = build_and_run(
            events, num_periods, w, d, alpha=1.0, beta=1.0, ltr=ltr, de=de
        )
        occupied = 0
        num_periods = min(num_periods, len(events))
        # The basic (1-flag) version may overshoot by up to one period —
        # exactly the deviation Optimization I removes (paper §III-C).
        persistency_cap = num_periods if de else num_periods + 1
        for cell in ltc.cells():
            assert cell.frequency >= 0
            assert cell.persistency >= 0
            assert cell.persistency <= persistency_cap
            if cell.key is not None:
                occupied += 1
                assert cell.frequency >= 1 or cell.persistency >= 1
            # finalize() must leave no pending flags.
            assert not cell.flag_even and not cell.flag_odd
        assert occupied == len(ltc)
        assert occupied <= ltc.total_cells

    @given(events_strategy, periods_strategy)
    @settings(max_examples=60, deadline=None)
    # The pre-existing ROADMAP bug (found by hypothesis during PR 4): a
    # Significance Decrement hit a cell whose persistency credit was still
    # sitting in two un-harvested DE flags, so only frequency was charged
    # and the later harvests left frequency=1, persistency=2.
    @example(events=[0, 0, 0, 4, 6, 8, 0, 0, 0, 1, 1, 4], num_periods=6)
    def test_persistency_never_exceeds_frequency(self, events, num_periods):
        """The paper notes f ≥ p always; the structure must preserve it."""
        ltc = build_and_run(
            events, num_periods, w=2, d=4, alpha=1.0, beta=1.0, ltr=False, de=True
        )
        for cell in ltc.cells():
            if cell.key is not None:
                assert cell.persistency <= cell.frequency

    @given(
        events_strategy,
        periods_strategy,
        table_strategy,
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_persistency_never_exceeds_frequency_any_configuration(
        self, events, num_periods, table, ltr, de
    ):
        """f ≥ p holds under every DE/LTR combination, not just the paper
        default (Long-tail Replacement seeds the counter at most f0 − 1,
        so the newcomer's pending flag cannot push p past f either)."""
        w, d = table
        ltc = build_and_run(
            events, num_periods, w, d, alpha=1.0, beta=1.0, ltr=ltr, de=de
        )
        for cell in ltc.cells():
            if cell.key is not None:
                assert cell.persistency <= cell.frequency

    def test_roadmap_persistency_regression_case(self):
        """The exact ROADMAP repro: events=[0,0,0,4,6,8,0,0,0,1,1,4],
        6 periods, w=2, d=4, α=β=1, DE=on, LTR=off used to leave item 1
        with frequency=1, persistency=2."""
        ltc = build_and_run(
            [0, 0, 0, 4, 6, 8, 0, 0, 0, 1, 1, 4],
            6,
            w=2,
            d=4,
            alpha=1.0,
            beta=1.0,
            ltr=False,
            de=True,
        )
        f, p = ltc.estimate(1)
        assert (f, p) == (1, 1)
        for cell in ltc.cells():
            if cell.key is not None:
                assert cell.persistency <= cell.frequency

    @given(events_strategy)
    @settings(max_examples=40, deadline=None)
    def test_tracked_items_are_real(self, events):
        """LTC never reports an item that was not in the stream."""
        ltc = build_and_run(
            events, 1, w=2, d=4, alpha=1.0, beta=0.0, ltr=True, de=True
        )
        universe = set(events)
        for report in ltc.top_k(100):
            assert report.item in universe


class TestTopKConsistency:
    @given(events_strategy, st.integers(1, 20))
    @settings(max_examples=40, deadline=None)
    def test_topk_sorted_and_bounded(self, events, k):
        ltc = build_and_run(
            events, 1, w=2, d=4, alpha=1.0, beta=1.0, ltr=True, de=True
        )
        top = ltc.top_k(k)
        assert len(top) <= k
        sigs = [r.significance for r in top]
        assert sigs == sorted(sigs, reverse=True)

    @given(events_strategy)
    @settings(max_examples=40, deadline=None)
    def test_query_matches_topk_significance(self, events):
        ltc = build_and_run(
            events, 1, w=2, d=4, alpha=1.0, beta=1.0, ltr=True, de=True
        )
        for report in ltc.top_k(5):
            assert ltc.query(report.item) == report.significance
