"""Bob Hash (lookup3 hashlittle) — pinned to the C reference vectors."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hashing.bobhash import BobHash, bob_hash


class TestReferenceVectors:
    """Vectors from the lookup3.c self-test driver."""

    def test_four_score_seed0(self):
        assert bob_hash(b"Four score and seven years ago", 0) == 0x17770551

    def test_four_score_seed1(self):
        assert bob_hash(b"Four score and seven years ago", 1) == 0xCD628161

    def test_empty_seed0(self):
        # hashlittle("", 0) returns the raw initial c = 0xdeadbeef.
        assert bob_hash(b"", 0) == 0xDEADBEEF

    def test_empty_seed_offsets_initial(self):
        assert bob_hash(b"", 5) == 0xDEADBEEF + 5


class TestBasicProperties:
    def test_deterministic(self):
        assert bob_hash(b"abc", 3) == bob_hash(b"abc", 3)

    def test_seed_changes_value(self):
        assert bob_hash(b"abc", 0) != bob_hash(b"abc", 1)

    def test_data_changes_value(self):
        assert bob_hash(b"abc", 0) != bob_hash(b"abd", 0)

    def test_output_is_32_bit(self):
        for data in (b"", b"x", b"x" * 11, b"x" * 12, b"x" * 13, b"x" * 100):
            value = bob_hash(data, 123)
            assert 0 <= value <= 0xFFFFFFFF

    @pytest.mark.parametrize("length", list(range(0, 26)))
    def test_all_tail_lengths(self, length):
        """Exercise every tail-switch branch (0–12 residual bytes)."""
        data = bytes(range(length))
        assert 0 <= bob_hash(data, 7) <= 0xFFFFFFFF

    @given(st.binary(max_size=64), st.integers(0, 2**32 - 1))
    def test_range_property(self, data, seed):
        assert 0 <= bob_hash(data, seed) <= 0xFFFFFFFF


class TestBobHashCallable:
    def test_int_keys_consistent(self):
        h = BobHash(seed=9)
        assert h(12345) == h(12345)

    def test_int_and_equivalent_bytes(self):
        h = BobHash(seed=9)
        assert h(1) == h((1).to_bytes(8, "little"))

    def test_str_key(self):
        h = BobHash()
        assert h("hello") == h("hello")
        assert h("hello") != h("hellp")

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            BobHash()(3.14)

    def test_bucket_in_range(self):
        h = BobHash(seed=2)
        for key in range(200):
            assert 0 <= h.bucket(key, 17) < 17

    def test_bucket_distribution_roughly_uniform(self):
        h = BobHash(seed=4)
        counts = [0] * 16
        for key in range(4096):
            counts[h.bucket(key, 16)] += 1
        assert max(counts) < 2 * min(counts)
