"""Long-tail Replacement (Optimization II): initial values and effect."""

from __future__ import annotations

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.accuracy import precision
from repro.streams.ground_truth import GroundTruth
from repro.streams.synthetic import zipf_stream


def one_bucket(d, ltr, alpha=1.0, beta=0.0, n=1000) -> LTC:
    return LTC(
        LTCConfig(
            num_buckets=1,
            bucket_width=d,
            alpha=alpha,
            beta=beta,
            items_per_period=n,
            longtail_replacement=ltr,
            deviation_eliminator=True,
        )
    )


class TestInitialValue:
    def test_newcomer_gets_second_smallest_minus_one(self):
        ltc = one_bucket(d=3, ltr=True)
        for _ in range(9):
            ltc.insert(1)
        for _ in range(5):
            ltc.insert(2)
        for _ in range(3):
            ltc.insert(3)
        # Bucket: f = {1:9, 2:5, 3:3}.  Three arrivals of 4 decrement item
        # 3 to zero; the fourth expels it.
        for _ in range(3):
            ltc.insert(4)
        assert ltc.estimate(3) == (0, 0)
        # Second-smallest surviving frequency is 5 → newcomer starts at 4.
        assert ltc.estimate(4)[0] == 4

    def test_without_ltr_newcomer_starts_at_one(self):
        ltc = one_bucket(d=3, ltr=False)
        for _ in range(9):
            ltc.insert(1)
        for _ in range(5):
            ltc.insert(2)
        for _ in range(3):
            ltc.insert(3)
        for _ in range(3):
            ltc.insert(4)
        assert ltc.estimate(4)[0] == 1

    def test_newcomer_remains_bucket_minimum(self):
        """Paper: "In this way, the inserted cell is still the smallest"."""
        ltc = one_bucket(d=4, ltr=True)
        for item, count in [(1, 20), (2, 12), (3, 8), (4, 5)]:
            for _ in range(count):
                ltc.insert(item)
        for _ in range(5):
            ltc.insert(9)
        if ltc.estimate(9)[0] > 0:  # 9 made it in
            newcomer = ltc.estimate(9)[0]
            survivors = [
                c.frequency for c in ltc.cells() if c.key not in (9, None)
            ]
            assert newcomer <= min(survivors)

    def test_floor_at_one(self):
        """When the second-smallest is 1, the newcomer still starts at 1."""
        ltc = one_bucket(d=2, ltr=True)
        ltc.insert(1)
        ltc.insert(2)
        ltc.insert(3)  # decrements item 1 (tie → first slot) to 0, expels
        expelled_to = ltc.estimate(3)[0]
        assert expelled_to == 1

    def test_single_cell_bucket_falls_back(self):
        """d = 1 has no second-smallest; LTR falls back to 1/0."""
        ltc = one_bucket(d=1, ltr=True)
        for _ in range(3):
            ltc.insert(1)
        for _ in range(3):
            ltc.insert(2)  # third decrement expels item 1 and inserts 2
        assert ltc.estimate(2)[0] == 1

    def test_persistency_initialised_from_second_smallest(self):
        ltc = one_bucket(d=2, ltr=True, alpha=1.0, beta=1.0, n=4)
        # Build two items with persistency over periods.
        for _ in range(3):
            ltc.insert(1)
            ltc.insert(1)
            ltc.insert(2)
            ltc.insert(2)
            ltc.end_period()
        f2, p2 = ltc.estimate(2)
        assert p2 >= 2
        # Pound item 3 until it takes over item 2's cell.
        for _ in range(30):
            ltc.insert(3)
        f3, p3 = ltc.estimate(3)
        if f3 > 0:
            # Counter seeded near the surviving cell's persistency − 1.
            survivor_p = ltc.estimate(1)[1]
            assert p3 >= max(survivor_p - 1, 0) - 1


class TestAccuracyEffect:
    def test_ltr_improves_precision_on_zipf(self):
        """The paper's Fig. 8: Y (with LTR) ≥ N (without) under pressure."""
        stream = zipf_stream(
            num_events=20_000, num_distinct=5_000, skew=1.0, num_periods=20, seed=3
        )
        truth = GroundTruth(stream)
        exact = truth.top_k_items(100, 1.0, 0.0)

        def run(ltr: bool) -> float:
            ltc = LTC(
                LTCConfig(
                    num_buckets=40,
                    bucket_width=8,
                    alpha=1.0,
                    beta=0.0,
                    items_per_period=stream.period_length,
                    longtail_replacement=ltr,
                )
            )
            stream.run(ltc)
            return precision((r.item for r in ltc.top_k(100)), exact)

        assert run(True) >= run(False)

    def test_ltr_reduces_are_on_zipf(self):
        stream = zipf_stream(
            num_events=20_000, num_distinct=5_000, skew=1.0, num_periods=20, seed=3
        )
        truth = GroundTruth(stream)

        def run(ltr: bool) -> float:
            from repro.metrics.accuracy import average_relative_error

            ltc = LTC(
                LTCConfig(
                    num_buckets=40,
                    bucket_width=8,
                    alpha=1.0,
                    beta=0.0,
                    items_per_period=stream.period_length,
                    longtail_replacement=ltr,
                )
            )
            stream.run(ltc)
            return average_relative_error(
                ltc.reported_pairs(100), lambda i: truth.significance(i, 1.0, 0.0)
            )

        assert run(True) <= run(False)
