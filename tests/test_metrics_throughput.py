"""Throughput measurement mechanics."""

from __future__ import annotations

from repro.metrics.throughput import ThroughputResult, measure_throughput
from tests.conftest import make_stream


class _CountingSummary:
    def __init__(self):
        self.inserted = 0

    def insert(self, item):
        self.inserted += 1


class TestMeasure:
    def test_counts_events(self):
        stream = make_stream(range(100), num_periods=4)
        result = measure_throughput(_CountingSummary, stream, name="count")
        assert result.events == 100
        assert result.seconds > 0
        assert result.name == "count"

    def test_fresh_summary_per_repeat(self):
        built = []

        def factory():
            summary = _CountingSummary()
            built.append(summary)
            return summary

        stream = make_stream(range(10), num_periods=2)
        measure_throughput(factory, stream, repeats=3)
        assert len(built) == 3
        assert all(s.inserted == 10 for s in built)


class TestResult:
    def test_mops(self):
        result = ThroughputResult(name="x", events=2_000_000, seconds=2.0)
        assert result.mops == 1.0

    def test_zero_seconds(self):
        assert ThroughputResult("x", 10, 0.0).mops == float("inf")

    def test_str(self):
        assert "Mops" in str(ThroughputResult("x", 10, 1.0))
