"""Sketch + heap top-k wrapper."""

from __future__ import annotations

import copy
import random

import pytest

from repro.metrics.memory import MemoryBudget, kb
from repro.sketches.count_min import CountMinSketch
from repro.sketches.count_sketch import CountSketch
from repro.sketches.cu import CUSketch
from repro.sketches.topk import SketchTopK


class TestTopK:
    def test_finds_heavy_hitters(self, small_zipf, small_zipf_truth):
        topk = SketchTopK(CUSketch(width=1024, rows=3), k=20)
        small_zipf.run(topk)
        exact = small_zipf_truth.top_k_items(20, 1.0, 0.0)
        reported = {r.item for r in topk.top_k(20)}
        assert len(reported & exact) >= 16

    def test_heap_capacity_respected(self):
        topk = SketchTopK(CountMinSketch(width=64), k=5)
        for item in range(100):
            topk.insert(item)
        assert len(topk.top_k(100)) <= 5

    def test_significance_equals_frequency_estimate(self):
        topk = SketchTopK(CountMinSketch(width=1 << 12, rows=3), k=5)
        for _ in range(9):
            topk.insert(1)
        report = topk.top_k(1)[0]
        assert report.item == 1
        assert report.significance == report.frequency == 9.0

    def test_query_delegates_to_sketch(self):
        topk = SketchTopK(CountMinSketch(width=1 << 12, rows=3), k=5)
        topk.insert(1)
        assert topk.query(1) == 1.0

    def test_from_memory_builds(self):
        topk = SketchTopK.from_memory(CUSketch, MemoryBudget(kb(8)), k=50)
        assert topk.heap.capacity == 50
        assert topk.sketch.width >= 1


class TestHeapFloorSkip:
    """``insert`` skips ``heap.offer`` when the estimate provably cannot
    change a full heap (untracked item, estimate ≤ current min).  The
    skip must be invisible: heap state stays identical to an
    always-offer reference on any workload."""

    @pytest.mark.parametrize(
        "sketch_cls",
        [CountMinSketch, CUSketch, CountSketch],
        ids=["CM", "CU", "Count"],
    )
    def test_skip_matches_always_offer_reference(self, sketch_cls):
        rng = random.Random(31)
        events = [rng.randrange(200) for _ in range(5_000)]
        # Tiny heap on a wide distribution: the skip fires constantly.
        topk = SketchTopK(sketch_cls(width=64, rows=3), k=8)
        reference = SketchTopK(sketch_cls(width=64, rows=3), k=8)
        for item in events:
            topk.insert(item)
            # Reference path: same sketch update, unconditional offer.
            estimate = float(reference.sketch.update_and_query(item))
            reference.heap.offer(item, estimate)
        assert topk.sketch._tables == reference.sketch._tables
        assert list(topk.heap._items) == list(reference.heap._items)
        assert list(topk.heap._values) == list(reference.heap._values)
        assert topk.heap._pos == reference.heap._pos

    def test_skip_fires_on_adversarial_tail(self):
        """After the heap fills with heavy items, a burst of singletons
        must leave the heap untouched (the skip path, by construction)."""
        topk = SketchTopK(CountMinSketch(width=1 << 12, rows=3), k=4)
        for item in range(4):
            for _ in range(50):
                topk.insert(item)
        before = copy.deepcopy(
            (topk.heap._items, topk.heap._values, topk.heap._pos)
        )
        for item in range(1_000, 1_200):  # 200 distinct singletons
            topk.insert(item)
        after = (topk.heap._items, topk.heap._values, topk.heap._pos)
        assert after == before

    def test_tracked_item_is_never_skipped(self):
        """A tracked item's re-offer must go through even when its
        estimate equals the heap minimum."""
        topk = SketchTopK(CountMinSketch(width=1 << 12, rows=3), k=2)
        topk.insert(7)
        topk.insert(8)
        # Heap full with values {1, 1}; item 7's next estimate (2) beats
        # the min, and the *tracked* check is what lets it through when
        # values tie later in mixed workloads.
        topk.insert(7)
        assert topk.heap.value_of(7) == 2.0
