"""Sketch + heap top-k wrapper."""

from __future__ import annotations

from repro.metrics.memory import MemoryBudget, kb
from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.sketches.topk import SketchTopK


class TestTopK:
    def test_finds_heavy_hitters(self, small_zipf, small_zipf_truth):
        topk = SketchTopK(CUSketch(width=1024, rows=3), k=20)
        small_zipf.run(topk)
        exact = small_zipf_truth.top_k_items(20, 1.0, 0.0)
        reported = {r.item for r in topk.top_k(20)}
        assert len(reported & exact) >= 16

    def test_heap_capacity_respected(self):
        topk = SketchTopK(CountMinSketch(width=64), k=5)
        for item in range(100):
            topk.insert(item)
        assert len(topk.top_k(100)) <= 5

    def test_significance_equals_frequency_estimate(self):
        topk = SketchTopK(CountMinSketch(width=1 << 12, rows=3), k=5)
        for _ in range(9):
            topk.insert(1)
        report = topk.top_k(1)[0]
        assert report.item == 1
        assert report.significance == report.frequency == 9.0

    def test_query_delegates_to_sketch(self):
        topk = SketchTopK(CountMinSketch(width=1 << 12, rows=3), k=5)
        topk.insert(1)
        assert topk.query(1) == 1.0

    def test_from_memory_builds(self):
        topk = SketchTopK.from_memory(CUSketch, MemoryBudget(kb(8)), k=50)
        assert topk.heap.capacity == 50
        assert topk.sketch.width >= 1
