"""Shared-memory transport: lifecycle, crash cleanup, and fallbacks.

The zero-copy ring is the fast path of the persistent-worker engine, so
its failure modes get their own suite: segments must never leak (clean
runs, crashed workers, SIGKILLed attachers, aborted runs), oversized
batches must spill to the pickle path without changing answers, and a
numpy/shm-free platform must degrade to pickled chunks transparently.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time

import pytest

from repro.core.config import LTCConfig
from repro.distributed.coordinator import MergingCoordinator
from repro.distributed.parallel import (
    ParallelMergingCoordinator,
    WorkerCrashError,
    worker_processes_available,
)
from repro.distributed.partition import partition_sharded
from repro.distributed.transport import ShmRing, live_segment_names, shm_available
from repro.streams.synthetic import zipf_stream

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="shared-memory transport unavailable"
)
needs_processes = pytest.mark.skipif(
    not worker_processes_available(), reason="platform lacks worker processes"
)

WORKER_PREFIX = "repro-shard-worker-"


def _dev_shm_entries():
    if not os.path.isdir("/dev/shm"):  # pragma: no cover - non-Linux
        return None
    return {name for name in os.listdir("/dev/shm") if name.startswith("psm_")}


@pytest.fixture(scope="module")
def logical_stream():
    return zipf_stream(
        num_events=8_000, num_distinct=1_500, skew=1.1, num_periods=8, seed=21
    )


@pytest.fixture(scope="module")
def config():
    return LTCConfig(
        num_buckets=64,
        bucket_width=8,
        alpha=1.0,
        beta=1.0,
        items_per_period=1,  # overridden per site
    )


@pytest.fixture(scope="module")
def sites(logical_stream):
    return partition_sharded(logical_stream, 4)


@pytest.fixture(scope="module")
def sequential_report(config, sites):
    return MergingCoordinator(config).run(sites, 50)


class TestRingLifecycle:
    @needs_shm
    def test_write_read_roundtrip(self):
        np = pytest.importorskip("numpy")
        ring = ShmRing(slots=4, slot_items=16)
        try:
            assert ring.write(2, np.array([5, 6, 7], dtype=np.int64)) == 3
            assert ring.read_list(2, 3) == [5, 6, 7]
            assert ring.write(0, [1, -2, 2**62]) == 3
            assert ring.read_list(0, 3) == [1, -2, 2**62]
            assert ring.write(1, []) == 0
            assert ring.read_list(1, 0) == []
        finally:
            ring.destroy()

    @needs_shm
    def test_oversized_write_is_rejected(self):
        ring = ShmRing(slots=1, slot_items=4)
        try:
            with pytest.raises(ValueError):
                ring.write(0, list(range(5)))
        finally:
            ring.destroy()

    @needs_shm
    def test_destroy_unlinks_segment_and_registry(self):
        ring = ShmRing(slots=2, slot_items=8)
        name = ring.name
        assert name in live_segment_names()
        entries = _dev_shm_entries()
        if entries is not None:
            assert name in entries
        ring.destroy()
        ring.destroy()  # idempotent
        assert name not in live_segment_names()
        entries = _dev_shm_entries()
        if entries is not None:
            assert name not in entries

    @needs_shm
    def test_attach_reads_creator_data_without_unlinking(self):
        ring = ShmRing(slots=2, slot_items=8)
        try:
            ring.write(1, [41, 42])
            attached = ShmRing.attach(ring.name, slots=2, slot_items=8)
            assert attached.read_list(1, 2) == [41, 42]
            attached.destroy()
            # Non-creator destroy closes its mapping but the segment (and
            # the creator's registry entry) must survive.
            assert ring.name in live_segment_names()
            assert ring.read_list(1, 2) == [41, 42]
        finally:
            ring.destroy()

    @needs_shm
    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            ShmRing(slots=0, slot_items=8)
        with pytest.raises(ValueError):
            ShmRing(slots=1, slot_items=0)

    @needs_shm
    @needs_processes
    def test_segment_survives_sigkilled_attacher(self):
        """A SIGKILLed worker leaks nothing: the creator still owns cleanup."""
        ring = ShmRing(slots=2, slot_items=8)
        ring.write(0, [7, 8])

        def attach_and_sleep(name):  # pragma: no cover - child process
            attached = ShmRing.attach(name, slots=2, slot_items=8)
            attached.read_list(0, 2)
            time.sleep(60)

        ctx = multiprocessing.get_context("fork")
        child = ctx.Process(target=attach_and_sleep, args=(ring.name,))
        child.start()
        time.sleep(0.2)
        os.kill(child.pid, signal.SIGKILL)
        child.join(timeout=10)
        assert child.exitcode == -signal.SIGKILL
        # The creator's handle still works and cleanup still completes.
        assert ring.read_list(0, 2) == [7, 8]
        name = ring.name
        ring.destroy()
        assert name not in live_segment_names()
        entries = _dev_shm_entries()
        if entries is not None:
            assert name not in entries


class TestCoordinatorCleanup:
    @needs_shm
    @needs_processes
    def test_clean_run_leaves_no_segments_or_workers(
        self, config, sites, sequential_report
    ):
        before = _dev_shm_entries()
        report = ParallelMergingCoordinator(
            config, max_workers=2, transport="shm"
        ).run(sites, 50)
        assert report.top_k == sequential_report.top_k
        assert not live_segment_names()
        after = _dev_shm_entries()
        if before is not None:
            assert after <= before
        assert not [
            p
            for p in multiprocessing.active_children()
            if p.name.startswith(WORKER_PREFIX)
        ]

    @needs_shm
    @needs_processes
    def test_crashed_workers_leave_no_segments(self, config, sites):
        """Worker deaths mid-run (as if SIGKILLed) leak no /dev/shm entries."""
        before = _dev_shm_entries()
        coordinator = ParallelMergingCoordinator(
            config, max_workers=4, max_retries=2, transport="shm"
        )
        coordinator._crash_plan = {0: 1, 3: 1}
        report = coordinator.run(sites, 50)
        assert report.worker_crashes == 2
        assert not live_segment_names()
        after = _dev_shm_entries()
        if before is not None:
            assert after <= before

    @needs_shm
    @needs_processes
    def test_aborted_run_cleans_up_segments_and_workers(self, config, sites):
        """Even WorkerCrashError exhaustion tears everything down."""
        before = _dev_shm_entries()
        coordinator = ParallelMergingCoordinator(
            config, max_workers=2, max_retries=1, transport="shm"
        )
        coordinator._crash_plan = {1: 99}
        with pytest.raises(WorkerCrashError):
            coordinator.run(sites, 50)
        assert not live_segment_names()
        after = _dev_shm_entries()
        if before is not None:
            assert after <= before
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leftovers = [
                p
                for p in multiprocessing.active_children()
                if p.name.startswith(WORKER_PREFIX)
            ]
            if not leftovers:
                break
            time.sleep(0.05)
        assert not leftovers


class TestFallbacks:
    @needs_processes
    def test_numpy_absent_falls_back_to_pickle(
        self, config, sites, sequential_report, monkeypatch
    ):
        """With numpy gone the auto transport degrades to pickled chunks."""
        from repro.distributed import transport as transport_mod

        monkeypatch.setattr(transport_mod, "_np", None)
        assert not transport_mod.shm_available()
        report = ParallelMergingCoordinator(
            config, max_workers=2, transport="auto"
        ).run(sites, 50)
        assert report.top_k == sequential_report.top_k
        assert report.communication_bytes == sequential_report.communication_bytes
        with pytest.raises(RuntimeError):
            ParallelMergingCoordinator(
                config, max_workers=2, transport="shm"
            ).run(sites, 50)

    @needs_processes
    def test_shared_memory_absent_falls_back_to_pickle(
        self, config, sites, sequential_report, monkeypatch
    ):
        from repro.distributed import transport as transport_mod

        monkeypatch.setattr(transport_mod, "_shm", None)
        assert not transport_mod.shm_available()
        with pytest.raises(RuntimeError):
            ShmRing(slots=1, slot_items=1)
        report = ParallelMergingCoordinator(
            config, max_workers=2, transport="auto"
        ).run(sites, 50)
        assert report.top_k == sequential_report.top_k

    @needs_shm
    @needs_processes
    def test_oversized_batches_spill_to_pickle(
        self, config, sites, sequential_report
    ):
        """Batches larger than a ring slot ship as chunks, same answer."""
        spilling = ParallelMergingCoordinator(
            config, max_workers=2, transport="shm", slot_items=8
        )
        report = spilling.run(sites, 50)
        assert report.top_k == sequential_report.top_k
        assert report.communication_bytes == sequential_report.communication_bytes
        zero_copy = ParallelMergingCoordinator(
            config, max_workers=2, transport="shm"
        ).run(sites, 50)
        # Spilled batches pay the pickle cost; the sized ring does not.
        assert report.ingest_ipc_bytes > 10 * zero_copy.ingest_ipc_bytes

    @needs_shm
    @needs_processes
    def test_shm_ipc_under_one_percent_of_pickle(self, config):
        """The acceptance gate: zero-copy IPC is <1% of the pickle baseline."""
        stream = zipf_stream(
            num_events=60_000,
            num_distinct=4_000,
            skew=1.1,
            num_periods=8,
            seed=9,
        )
        shards = partition_sharded(stream, 4)
        shm_report = ParallelMergingCoordinator(
            config, max_workers=2, transport="shm"
        ).run(shards, 50)
        pickle_report = ParallelMergingCoordinator(
            config, max_workers=2, transport="pickle"
        ).run(shards, 50)
        assert shm_report.top_k == pickle_report.top_k
        assert shm_report.ingest_ipc_bytes > 0
        assert (
            shm_report.ingest_ipc_bytes
            < 0.01 * pickle_report.ingest_ipc_bytes
        )


class TestWorkerProtocol:
    """In-process unit tests of the worker-side message handling."""

    def _jobs(self, config):
        return [(0, config.with_options(items_per_period=4))]

    def test_chunked_batches_accumulate_until_final(self, config):
        from repro.core.kernels import build_ltc
        from repro.core.serialize import to_bytes
        from repro.distributed.parallel import _WorkerState

        state = _WorkerState(self._jobs(config), None, {})
        assert state.handle(("c", 0, [1, 2], False)) == ("a", None)
        assert state.handle(("c", 0, [3], True)) == ("a", None)
        assert state.handle(("c", 0, [4, 5], True)) == ("a", None)
        kind, payloads = state.handle(("f",))
        assert kind == "s"
        reference = build_ltc(self._jobs(config)[0][1])
        reference.insert_many([1, 2, 3])
        reference.end_period()
        reference.insert_many([4, 5])
        reference.end_period()
        reference.finalize()
        assert payloads == {0: to_bytes(reference)}

    @needs_shm
    def test_ring_batches_are_read_from_slots(self, config):
        from repro.distributed.parallel import _WorkerState

        ring = ShmRing(slots=2, slot_items=8)
        try:
            state = _WorkerState(self._jobs(config), ring, {})
            ring.write(1, [9, 9, 4])
            assert state.handle(("b", 0, 1, 3)) == ("a", 1)
            kind, payloads = state.handle(("f",))
            assert kind == "s" and set(payloads) == {0}
        finally:
            ring.destroy()

    def test_unknown_message_is_rejected(self, config):
        from repro.distributed.parallel import _WorkerState

        state = _WorkerState(self._jobs(config), None, {})
        with pytest.raises(RuntimeError):
            state.handle(("zz",))
        with pytest.raises(RuntimeError):
            state.handle(("b", 0, 0, 1))  # ring batch without a ring
