"""Space-Saving: classic guarantees and top-k behaviour."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.metrics.memory import MemoryBudget, kb
from repro.summaries.space_saving import SpaceSaving


class TestGuarantees:
    def test_exact_when_capacity_covers_distinct(self, small_zipf, small_zipf_truth):
        ss = SpaceSaving(capacity=small_zipf_truth.num_distinct)
        small_zipf.run(ss)
        for item in small_zipf_truth.items()[:300]:
            assert ss.query(item) == small_zipf_truth.frequency(item)

    def test_never_underestimates_tracked_items(self, small_zipf, small_zipf_truth):
        ss = SpaceSaving(capacity=64)
        small_zipf.run(ss)
        for report in ss.top_k(64):
            assert report.frequency >= small_zipf_truth.frequency(report.item)

    def test_error_bounded_by_n_over_m(self, small_zipf, small_zipf_truth):
        """Metwally bound: f̂ − f ≤ N/m for every monitored item."""
        capacity = 64
        ss = SpaceSaving(capacity=capacity)
        small_zipf.run(ss)
        bound = len(small_zipf) / capacity
        for report in ss.top_k(capacity):
            over = report.frequency - small_zipf_truth.frequency(report.item)
            assert 0 <= over <= bound

    def test_guaranteed_count_is_lower_bound(self, small_zipf, small_zipf_truth):
        ss = SpaceSaving(capacity=64)
        small_zipf.run(ss)
        for report in ss.top_k(64):
            assert (
                ss.guaranteed_count(report.item)
                <= small_zipf_truth.frequency(report.item)
            )

    def test_total_count_equals_stream_length(self, small_zipf):
        """Σ counters = N: every arrival adds exactly one unit."""
        ss = SpaceSaving(capacity=32)
        small_zipf.run(ss)
        assert sum(r.frequency for r in ss.top_k(32)) == len(small_zipf)


class TestBehaviour:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            SpaceSaving(0)

    def test_replacement_sets_min_plus_one(self):
        ss = SpaceSaving(capacity=2)
        for item in (1, 1, 1, 2):
            ss.insert(item)
        ss.insert(3)  # replaces item 2 (count 1) → count 2
        assert ss.query(3) == 2.0
        assert ss.query(2) == 0.0

    def test_size_capped(self):
        ss = SpaceSaving(capacity=5)
        for item in range(100):
            ss.insert(item)
        assert len(ss) == 5

    def test_query_untracked_is_zero(self):
        ss = SpaceSaving(capacity=2)
        ss.insert(1)
        assert ss.query(42) == 0.0

    def test_top_k_finds_heavy_hitter(self):
        ss = SpaceSaving(capacity=8)
        events = [1] * 50 + list(range(100, 130))
        for item in events:
            ss.insert(item)
        assert ss.top_k(1)[0].item == 1

    def test_from_memory(self):
        ss = SpaceSaving.from_memory(MemoryBudget(kb(1)))
        assert ss.capacity == 128  # 1024 / 8

    def test_precision_reasonable_on_zipf(self, medium_zipf, medium_zipf_truth):
        ss = SpaceSaving(capacity=256)
        medium_zipf.run(ss)
        exact = medium_zipf_truth.top_k_items(50, 1.0, 0.0)
        reported = {r.item for r in ss.top_k(50)}
        assert len(reported & exact) / 50 >= 0.8


class TestAgainstBruteForce:
    def test_matches_naive_space_saving(self):
        """Cross-check the Stream-Summary implementation against a naive
        O(m)-per-op reference on a random stream."""
        import random

        rng = random.Random(99)
        events = [rng.randrange(30) for _ in range(2_000)]
        capacity = 7

        naive: Counter = Counter()
        for item in events:
            if item in naive:
                naive[item] += 1
            elif len(naive) < capacity:
                naive[item] = 1
            else:
                victim = min(naive.items(), key=lambda kv: (kv[1], kv[0]))[0]
                count = naive.pop(victim)
                naive[item] = count + 1

        ss = SpaceSaving(capacity=capacity)
        for item in events:
            ss.insert(item)

        # Tie-breaking among equal-count minimums may differ, so compare
        # the multiset of counts rather than exact item identity.
        assert sorted(naive.values()) == sorted(
            int(r.frequency) for r in ss.top_k(capacity)
        )
