"""Time-driven CLOCK advancement (paper §III-B, varying arrival speed)."""

from __future__ import annotations

import pytest

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from tests.conftest import make_stream


def timed_ltc(**overrides) -> LTC:
    cfg = dict(
        num_buckets=2,
        bucket_width=4,
        alpha=0.0,
        beta=1.0,
        items_per_period=1,  # unused in timed mode
        longtail_replacement=False,
    )
    cfg.update(overrides)
    return LTC(LTCConfig(**cfg))


class TestTimedInsertion:
    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            timed_ltc().insert_timed(1, timestamp=0.0, period_seconds=0.0)

    def test_rejects_time_regression(self):
        ltc = timed_ltc()
        ltc.insert_timed(1, timestamp=5.0, period_seconds=10.0)
        with pytest.raises(ValueError):
            ltc.insert_timed(1, timestamp=4.0, period_seconds=10.0)

    def test_uniform_arrivals_match_count_based(self):
        """Evenly spaced timed arrivals must produce the same persistency
        as the count-based drive of the same stream."""
        events = [1, 2, 1, 3, 1, 4, 1, 5, 1, 6, 1, 7]
        period_seconds = 10.0
        items_per_period = 4

        counted = timed_ltc(items_per_period=items_per_period)
        stream = make_stream(events, num_periods=3)
        stream.run(counted)

        timed = timed_ltc()
        for i, item in enumerate(events):
            timed.insert_timed(
                item,
                timestamp=i * period_seconds / items_per_period,
                period_seconds=period_seconds,
            )
            if (i + 1) % items_per_period == 0:
                timed.end_period()
        timed.finalize()

        for item in set(events):
            assert timed.estimate(item) == counted.estimate(item)

    def test_bursty_arrivals_still_one_sweep_per_period(self):
        """Irregular timestamps must not break the ≤1-per-period increment."""
        ltc = timed_ltc()
        period_seconds = 1.0
        t = 0.0
        for period in range(4):
            # A burst of arrivals at the start of the period, then silence.
            for _ in range(10):
                t += 0.001
                ltc.insert_timed(7, timestamp=t, period_seconds=period_seconds)
            t = (period + 1) * period_seconds
            ltc.end_period()
        ltc.finalize()
        f, p = ltc.estimate(7)
        assert f == 40
        assert p == 4

    def test_adversarial_split_still_scans_every_cell(self):
        """Regression: a period chopped into 977 equal Δt slices must
        still sweep all ``m`` cells by the boundary.

        The retired float accumulator summed ``Δt/t · m`` per arrival, so
        this exact sequence accumulated enough rounding error to scan
        only ``m − 1`` slots — one cell's persistency silently stalled
        every period.  Tick quantisation of absolute timestamps
        telescopes, making the sweep exact for any split.
        """
        ltc = timed_ltc(num_buckets=8, bucket_width=8)  # m = 64
        splits = 977
        ltc.insert_timed(7, timestamp=0.0, period_seconds=1.0)  # anchor
        for i in range(1, splits + 1):
            ltc.insert_timed(7, timestamp=i / splits, period_seconds=1.0)
        assert ltc._clock.scanned_in_period == ltc.total_cells
        assert ltc._clock._tacc == 0

    def test_clock_state_depends_only_on_latest_timestamp(self):
        """Extra arrivals inside an interval cannot move the sweep: two
        structures seeing the same final timestamp hold identical CLOCK
        state however the interval was subdivided."""
        coarse = timed_ltc(num_buckets=8, bucket_width=8)
        fine = timed_ltc(num_buckets=8, bucket_width=8)
        coarse.insert_timed(1, timestamp=0.0, period_seconds=1.0)
        fine.insert_timed(1, timestamp=0.0, period_seconds=1.0)
        coarse.insert_timed(1, timestamp=0.7, period_seconds=1.0)
        for i in range(1, 211):
            fine.insert_timed(1, timestamp=0.7 * i / 210, period_seconds=1.0)
        for attr in ("hand", "_tacc", "scanned_in_period"):
            assert getattr(fine._clock, attr) == getattr(coarse._clock, attr)

    def test_checkpoint_mid_interval_is_byte_identical(self):
        """Checkpointing between two timed arrivals and resuming produces
        a byte-identical structure to the uninterrupted run."""
        from repro.core.serialize import from_bytes, to_bytes

        schedule = [(1, 0.13), (2, 0.41), (1, 0.98), (3, 1.77), (2, 2.09)]
        straight = timed_ltc()
        for item, ts in schedule:
            straight.insert_timed(item, timestamp=ts, period_seconds=0.9)

        resumed = timed_ltc()
        for item, ts in schedule[:2]:
            resumed.insert_timed(item, timestamp=ts, period_seconds=0.9)
        resumed = from_bytes(to_bytes(resumed))
        for item, ts in schedule[2:]:
            resumed.insert_timed(item, timestamp=ts, period_seconds=0.9)
        assert to_bytes(resumed) == to_bytes(straight)

    def test_persistency_exact_for_timed_gap_pattern(self):
        """An item present only in periods 0 and 2 (timed drive)."""
        ltc = timed_ltc()
        schedule = [(0.5, 1), (1.5, 2), (2.5, 1)]  # (time, item)
        boundary = 1.0
        next_boundary = boundary
        for t, item in schedule:
            while t >= next_boundary:
                ltc.end_period()
                next_boundary += boundary
            ltc.insert_timed(item, timestamp=t, period_seconds=boundary)
        ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(1)[1] == 2
        assert ltc.estimate(2)[1] == 1
