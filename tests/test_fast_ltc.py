"""FastLTC ≡ LTC differential tests, plus the speed claim."""

from __future__ import annotations

import random
import time

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.ltc import LTC
from tests.conftest import make_stream


def run_pair(events, num_periods, **cfg):
    num_periods = max(1, min(num_periods, len(events) or 1))
    defaults = dict(
        num_buckets=2,
        bucket_width=4,
        alpha=1.0,
        beta=1.0,
        items_per_period=max(1, len(events) // num_periods),
    )
    defaults.update(cfg)
    config = LTCConfig(**defaults)
    slow, fast = LTC(config), FastLTC(config)
    if events:
        stream = make_stream(events, num_periods=num_periods)
        stream.run(slow)
        stream.run(fast)
    return slow, fast


def cells(ltc):
    return list(ltc.cells())


class TestEquivalence:
    @given(
        st.lists(st.integers(0, 25), max_size=300),
        st.integers(1, 6),
        st.booleans(),
        st.booleans(),
    )
    @settings(max_examples=100, deadline=None)
    def test_identical_cells(self, events, periods, ltr, de):
        slow, fast = run_pair(
            events,
            periods,
            longtail_replacement=ltr,
            deviation_eliminator=de,
        )
        assert cells(slow) == cells(fast)

    @given(st.lists(st.integers(0, 40), max_size=300))
    @settings(max_examples=60, deadline=None)
    def test_identical_estimates(self, events):
        slow, fast = run_pair(events, 4)
        for item in set(events) | {99999}:
            assert slow.estimate(item) == fast.estimate(item)

    @given(st.lists(st.integers(0, 25), max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_space_saving_policy_identical(self, events):
        slow, fast = run_pair(events, 2, replacement_policy="space-saving")
        assert cells(slow) == cells(fast)

    def test_index_consistency_after_heavy_churn(self):
        rng = random.Random(17)
        events = [rng.randrange(2_000) for _ in range(5_000)]
        _, fast = run_pair(events, 10, num_buckets=4, bucket_width=2)
        # Every indexed slot really holds its item, and every occupied
        # cell is indexed.
        for item, slot in fast._slot_of.items():
            assert fast._keys[slot] == item
        occupied = {j for j, key in enumerate(fast._keys) if key is not None}
        assert occupied == set(fast._slot_of.values())

    def test_topk_identical(self):
        rng = random.Random(23)
        events = [rng.randrange(100) for _ in range(3_000)]
        slow, fast = run_pair(events, 6, num_buckets=4, bucket_width=8)
        assert slow.top_k(50) == fast.top_k(50)


class TestSpeed:
    def test_faster_on_hit_heavy_stream(self):
        """The point of the class: a Zipfian (hit-heavy) stream inserts
        measurably faster.  Generous threshold to stay CI-safe."""
        from repro.streams.synthetic import zipf_stream

        stream = zipf_stream(
            num_events=30_000, num_distinct=3_000, skew=1.2, num_periods=10, seed=5
        )
        config = LTCConfig(
            num_buckets=128,
            bucket_width=8,
            alpha=1.0,
            beta=1.0,
            items_per_period=stream.period_length,
        )

        def clock(cls) -> float:
            summary = cls(config)
            start = time.perf_counter()
            stream.run(summary)
            return time.perf_counter() - start

        slow_time = min(clock(LTC) for _ in range(3))
        fast_time = min(clock(FastLTC) for _ in range(3))
        # Same speed class under CI timing noise; typically 1.2-1.5x faster.
        assert fast_time < slow_time * 1.25


class TestContainerAPI:
    def test_contains_uses_index(self):
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=0.0,
            items_per_period=10,
        )
        fast = FastLTC(config)
        fast.insert(1)
        assert 1 in fast
        assert 99 not in fast

    def test_clear_resets_index(self):
        config = LTCConfig(
            num_buckets=2, bucket_width=4, alpha=1.0, beta=0.0,
            items_per_period=10,
        )
        fast = FastLTC(config)
        fast.insert(1)
        fast.clear()
        assert 1 not in fast
        assert len(fast._slot_of) == 0
        fast.insert(2)
        assert fast.estimate(2) == (1, 0)
