"""LTC insertion cases (paper §III-B) on hand-constructed scenarios.

Using ``num_buckets=1`` pins every item to one bucket so each case is
fully deterministic.
"""

from __future__ import annotations

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.metrics.memory import MemoryBudget, kb


def one_bucket_ltc(
    d=2, alpha=1.0, beta=0.0, items_per_period=1000, ltr=False, de=True
) -> LTC:
    return LTC(
        LTCConfig(
            num_buckets=1,
            bucket_width=d,
            alpha=alpha,
            beta=beta,
            items_per_period=items_per_period,
            longtail_replacement=ltr,
            deviation_eliminator=de,
        )
    )


class TestCase1Hit:
    def test_hit_increments_frequency(self):
        ltc = one_bucket_ltc()
        ltc.insert(1)
        ltc.insert(1)
        ltc.insert(1)
        assert ltc.estimate(1) == (3, 0)

    def test_hit_sets_flag(self):
        ltc = one_bucket_ltc()
        ltc.insert(1)
        cell = next(c for c in ltc.cells() if c.key == 1)
        assert cell.flag_even  # period 0 parity

    def test_query_significance(self):
        ltc = one_bucket_ltc(alpha=2.0, beta=3.0)
        ltc.insert(1)
        ltc.insert(1)
        assert ltc.query(1) == 2.0 * 2  # persistency still 0 mid-period


class TestCase2Empty:
    def test_new_item_takes_free_cell(self):
        ltc = one_bucket_ltc(d=3)
        ltc.insert(1)
        ltc.insert(2)
        ltc.insert(3)
        assert len(ltc) == 3
        assert ltc.estimate(2) == (1, 0)

    def test_initial_values(self):
        ltc = one_bucket_ltc()
        ltc.insert(9)
        cell = next(c for c in ltc.cells() if c.key == 9)
        assert cell.frequency == 1
        assert cell.persistency == 0


class TestCase3FullBucket:
    def test_decrement_without_expulsion_drops_newcomer(self):
        ltc = one_bucket_ltc(d=2)
        for _ in range(3):
            ltc.insert(1)
        for _ in range(2):
            ltc.insert(2)
        ltc.insert(3)  # decrements item 2 (2→1); 3 is dropped
        assert ltc.estimate(3) == (0, 0)
        assert ltc.estimate(2) == (1, 0)
        assert ltc.estimate(1) == (3, 0)

    def test_expulsion_after_enough_decrements(self):
        ltc = one_bucket_ltc(d=2)
        for _ in range(3):
            ltc.insert(1)
        ltc.insert(2)  # f2 = 1
        ltc.insert(3)  # decrement f2 → 0, expel, insert 3 with f=1
        assert ltc.estimate(2) == (0, 0)
        assert ltc.estimate(3) == (1, 0)

    def test_smallest_by_significance_not_frequency(self):
        """With β > 0 the victim is the smallest α·f + β·p cell."""
        ltc = one_bucket_ltc(d=2, alpha=1.0, beta=10.0, items_per_period=2)
        # Period 0: item 1 twice (f=2), item 2 absent.
        ltc.insert(1)
        ltc.insert(1)
        ltc.end_period()
        # Period 1: item 2 once (f=1); item 1's flag harvests → p=1.
        ltc.insert(2)
        ltc.end_period()
        # sig(1) = 2 + 10·1 = 12 ; sig(2) = 1 + 10·p2.
        f1, p1 = ltc.estimate(1)
        assert (f1, p1) == (2, 1)
        # Newcomer decrements item 2 (smaller significance), not item 1.
        ltc.insert(3)
        assert ltc.estimate(1) == (2, 1)

    def test_persistency_floor_at_zero(self):
        ltc = one_bucket_ltc(d=1, alpha=1.0, beta=1.0)
        for _ in range(5):
            ltc.insert(1)  # f=5, p=0
        for _ in range(3):
            ltc.insert(2)  # three decrements: f 5→2, p stays 0
        f, p = ltc.estimate(1)
        assert (f, p) == (2, 0)

    def test_expelled_cell_reset(self):
        ltc = one_bucket_ltc(d=1)
        ltc.insert(1)
        ltc.insert(2)  # decrement f1 → 0 → expel → insert 2
        cell = next(ltc.cells())
        assert cell.key == 2
        assert cell.frequency == 1
        assert cell.persistency == 0
        assert cell.flag_even and not cell.flag_odd


class TestQueries:
    def test_query_absent_item(self):
        ltc = one_bucket_ltc()
        assert ltc.query(77) == 0.0
        assert ltc.estimate(77) == (0, 0)

    def test_top_k_sorted(self):
        ltc = one_bucket_ltc(d=4)
        for item, count in [(1, 5), (2, 2), (3, 9)]:
            for _ in range(count):
                ltc.insert(item)
        top = ltc.top_k(3)
        assert [r.item for r in top] == [3, 1, 2]
        assert top[0].significance == 9.0

    def test_top_k_limits(self):
        ltc = one_bucket_ltc(d=4)
        ltc.insert(1)
        ltc.insert(2)
        assert len(ltc.top_k(10)) == 2

    def test_len_and_load_factor(self):
        ltc = one_bucket_ltc(d=4)
        assert len(ltc) == 0
        ltc.insert(1)
        ltc.insert(2)
        assert len(ltc) == 2
        assert ltc.load_factor() == 0.5
        assert ltc.total_cells == 4


class TestFromMemory:
    def test_sizing(self):
        ltc = LTC.from_memory(MemoryBudget(kb(12)), items_per_period=100)
        assert ltc.total_cells == (1024 // 8) * 8

    def test_options_forwarded(self):
        ltc = LTC.from_memory(
            MemoryBudget(kb(12)),
            items_per_period=100,
            longtail_replacement=False,
        )
        assert not ltc.config.longtail_replacement


class TestSpaceSavingPolicy:
    def test_replaces_min_and_overestimates(self):
        """The §I-C strawman: a miss on a full bucket immediately replaces
        the minimum and inherits its count + 1."""
        ltc = LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=2,
                alpha=1.0,
                beta=0.0,
                items_per_period=1000,
                replacement_policy="space-saving",
            )
        )
        for _ in range(5):
            ltc.insert(1)
        for _ in range(3):
            ltc.insert(2)
        ltc.insert(9)  # replaces item 2 (count 3) → count 4 for a 1-count item
        assert ltc.estimate(2) == (0, 0)
        assert ltc.estimate(9)[0] == 4

    def test_no_decrement_under_space_saving(self):
        ltc = LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=2,
                alpha=1.0,
                beta=0.0,
                items_per_period=1000,
                replacement_policy="space-saving",
            )
        )
        for _ in range(5):
            ltc.insert(1)
        ltc.insert(2)
        ltc.insert(9)  # replaces item 2 (the min), item 1 untouched
        assert ltc.estimate(1)[0] == 5


class TestContainerAPI:
    def test_contains_and_items(self):
        ltc = one_bucket_ltc(d=4)
        ltc.insert(1)
        ltc.insert(2)
        assert 1 in ltc and 2 in ltc
        assert 3 not in ltc
        assert sorted(ltc.items()) == [1, 2]

    def test_clear(self):
        ltc = one_bucket_ltc(d=4)
        for item in (1, 1, 2):
            ltc.insert(item)
        ltc.end_period()
        ltc.clear()
        assert len(ltc) == 0
        assert 1 not in ltc
        # And the structure works again after clearing.
        ltc.insert(9)
        assert ltc.estimate(9) == (1, 0)

    def test_clear_resets_clock_and_parity(self):
        ltc = one_bucket_ltc(d=2, items_per_period=2)
        ltc.insert(1)
        ltc.insert(1)
        ltc.end_period()
        ltc.clear()
        # Re-run the same two-period pattern from scratch.
        for _ in range(2):
            ltc.insert(1)
            ltc.insert(1)
            ltc.end_period()
        ltc.finalize()
        assert ltc.estimate(1) == (4, 2)


class TestCellView:
    def test_significance_helper(self):
        from repro.core.cell import CellView

        cell = CellView(
            bucket=0, slot=1, key=5, frequency=4, persistency=2,
            flag_even=False, flag_odd=True,
        )
        assert cell.significance(1.0, 10.0) == 24.0
        assert not cell.empty

    def test_empty_cell(self):
        from repro.core.cell import CellView

        cell = CellView(
            bucket=0, slot=0, key=None, frequency=0, persistency=0,
            flag_even=False, flag_odd=False,
        )
        assert cell.empty
        assert cell.significance(1.0, 1.0) == 0.0

    def test_cells_report_bucket_and_slot(self):
        ltc = one_bucket_ltc(d=3)
        ltc.insert(1)
        views = list(ltc.cells())
        assert [(c.bucket, c.slot) for c in views] == [(0, 0), (0, 1), (0, 2)]
