"""LT fountain code: chunking, degree distribution, peel decoding."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.codes.lt import LTCode, RobustSoliton, join_chunks, split_chunks


class TestChunking:
    def test_roundtrip(self):
        for value in (0, 1, 0xDEADBEEF, 2**32 - 1):
            chunks = split_chunks(value, 4, 8)
            assert join_chunks(chunks, 8) == value

    def test_chunk_widths(self):
        chunks = split_chunks(0x12345678, 2, 16)
        assert chunks == [0x5678, 0x1234]

    @given(st.integers(0, 2**32 - 1))
    def test_roundtrip_property(self, value):
        assert join_chunks(split_chunks(value, 4, 8), 8) == value


class TestRobustSoliton:
    def test_rejects_bad_n(self):
        with pytest.raises(ValueError):
            RobustSoliton(0)

    def test_degrees_in_range(self):
        soliton = RobustSoliton(10)
        rng = random.Random(1)
        for _ in range(500):
            assert 1 <= soliton.degree(rng.random()) <= 10

    def test_cdf_reaches_one(self):
        soliton = RobustSoliton(10)
        assert soliton._cdf[-1] == pytest.approx(1.0)

    def test_degree_one_possible(self):
        """Peeling needs degree-1 symbols to start."""
        soliton = RobustSoliton(10)
        assert soliton.degree(0.0) == 1

    def test_n_equal_one(self):
        soliton = RobustSoliton(1)
        assert soliton.degree(0.5) == 1


class TestLTCode:
    def test_neighbors_deterministic(self):
        code = LTCode(num_source=4, seed=3)
        assert code.neighbors(17) == code.neighbors(17)

    def test_neighbors_nonempty_sorted_unique(self):
        code = LTCode(num_source=5, seed=3)
        for idx in range(200):
            neighbors = code.neighbors(idx)
            assert neighbors
            assert neighbors == sorted(set(neighbors))
            assert all(0 <= j < 5 for j in neighbors)

    def test_uniform_mode_neighbors(self):
        code = LTCode(num_source=3, seed=3, degree="uniform")
        masks = {tuple(code.neighbors(i)) for i in range(300)}
        # All 7 non-empty subsets of 3 chunks should occur.
        assert len(masks) == 7

    def test_rejects_bad_degree_mode(self):
        with pytest.raises(ValueError):
            LTCode(degree="weird")

    def test_encode_is_xor_of_neighbors(self):
        code = LTCode(num_source=4, chunk_bits=8, seed=5)
        value = 0xA1B2C3D4
        chunks = split_chunks(value, 4, 8)
        for idx in range(50):
            expected = 0
            for j in code.neighbors(idx):
                expected ^= chunks[j]
            assert code.encode(value, idx) == expected

    def test_decode_roundtrip_with_many_symbols(self):
        code = LTCode(num_source=4, chunk_bits=8, seed=5)
        rng = random.Random(4)
        successes = 0
        for _ in range(100):
            value = rng.getrandbits(32)
            symbols = [(i, code.encode(value, i)) for i in rng.sample(range(1000), 12)]
            if code.decode(symbols) == value:
                successes += 1
        # 12 symbols for 4 chunks: peeling succeeds in the vast majority.
        assert successes >= 85

    def test_decode_underdetermined_returns_none(self):
        code = LTCode(num_source=4, chunk_bits=8, seed=5)
        value = 0x12345678
        assert code.decode([(0, code.encode(value, 0))]) is None or isinstance(
            code.decode([(0, code.encode(value, 0))]), int
        )

    def test_decode_empty(self):
        code = LTCode(num_source=2)
        assert code.decode([]) is None

    def test_decode_inconsistent_mixture_rejected(self):
        """Symbols from two different identifiers must not decode cleanly
        to either of them (consistency check)."""
        code = LTCode(num_source=4, chunk_bits=8, seed=5)
        rng = random.Random(9)
        clean_decodes = 0
        for _ in range(100):
            a, b = rng.getrandbits(32), rng.getrandbits(32)
            idxs = rng.sample(range(1000), 12)
            symbols = [
                (i, code.encode(a if n % 2 else b, i)) for n, i in enumerate(idxs)
            ]
            decoded = code.decode(symbols)
            if decoded in (a, b):
                clean_decodes += 1
        assert clean_decodes == 0
