"""Experiment configuration builders (§V-C setup rules)."""

from __future__ import annotations

import pytest

from repro.combined.two_structure import TwoStructureSignificant
from repro.core.ltc import LTC
from repro.experiments.configs import (
    default_algorithms_frequent,
    default_algorithms_persistent,
    default_algorithms_significant,
    ltc_factory,
    make_dataset,
)
from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.pie import PIE
from repro.persistent.sketch_persistent import SketchPersistent
from repro.streams.synthetic import zipf_stream


@pytest.fixture(scope="module")
def tiny_stream():
    return zipf_stream(2_000, 400, 1.0, num_periods=4, seed=2)


class TestLineUps:
    def test_frequent_lineup_members(self, tiny_stream):
        factories = default_algorithms_frequent(
            MemoryBudget(kb(4)), tiny_stream, 10
        )
        assert set(factories) == {"LTC", "SS", "LC", "Freq", "CM", "CU", "Count"}
        ltc = factories["LTC"]()
        assert isinstance(ltc, LTC)
        assert ltc.config.alpha == 1.0 and ltc.config.beta == 0.0

    def test_persistent_lineup_members(self, tiny_stream):
        factories = default_algorithms_persistent(
            MemoryBudget(kb(4)), tiny_stream, 10
        )
        assert set(factories) == {"LTC", "PIE", "CM+BF", "CU+BF", "Count+BF"}
        ltc = factories["LTC"]()
        assert ltc.config.alpha == 0.0 and ltc.config.beta == 1.0
        assert isinstance(factories["PIE"](), PIE)
        assert isinstance(factories["CM+BF"](), SketchPersistent)

    def test_pie_gets_budget_per_period(self, tiny_stream):
        """§V-C: PIE's per-period filter is sized from the *full* default
        budget (T× total memory)."""
        budget = MemoryBudget(kb(4))
        pie = default_algorithms_persistent(budget, tiny_stream, 10)["PIE"]()
        assert pie.cells_per_period == budget.stbf_cells()

    def test_significant_lineup(self, tiny_stream):
        factories = default_algorithms_significant(
            MemoryBudget(kb(4)), tiny_stream, 10, alpha=2.0, beta=3.0
        )
        assert set(factories) == {"LTC", "CU+CU", "CM+CM"}
        combined = factories["CU+CU"]()
        assert isinstance(combined, TwoStructureSignificant)
        assert combined.alpha == 2.0 and combined.beta == 3.0

    def test_factories_build_fresh_instances(self, tiny_stream):
        factory = default_algorithms_frequent(
            MemoryBudget(kb(4)), tiny_stream, 10
        )["LTC"]
        assert factory() is not factory()


class TestLTCFactory:
    def test_period_length_from_stream(self, tiny_stream):
        ltc = ltc_factory(MemoryBudget(kb(4)), tiny_stream, 1.0, 1.0)()
        assert ltc.config.items_per_period == tiny_stream.period_length

    def test_options_forwarded(self, tiny_stream):
        ltc = ltc_factory(
            MemoryBudget(kb(4)),
            tiny_stream,
            1.0,
            1.0,
            deviation_eliminator=False,
        )()
        assert not ltc.config.deviation_eliminator


class TestMakeDataset:
    def test_default_builds_cached(self):
        a = make_dataset("social")
        b = make_dataset("social")
        assert a is b

    def test_parameterised_builds_not_cached(self):
        a = make_dataset("social", num_events=1_000, num_distinct=200, num_periods=2)
        b = make_dataset("social", num_events=1_000, num_distinct=200, num_periods=2)
        assert a is not b
        assert a.events == b.events  # still deterministic

    def test_unknown_dataset(self):
        with pytest.raises(KeyError):
            make_dataset("bogus")
