"""Count-Min sketch: one-sided error and sizing."""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.memory import MemoryBudget, kb
from repro.sketches.count_min import CountMinSketch


class TestGuarantees:
    def test_never_underestimates(self, small_zipf, small_zipf_truth):
        sketch = CountMinSketch(width=256, rows=3)
        for item in small_zipf.events:
            sketch.update(item)
        for item in small_zipf_truth.items()[:400]:
            assert sketch.query(item) >= small_zipf_truth.frequency(item)

    def test_exact_with_huge_width(self):
        events = [1, 1, 2, 3, 3, 3]
        sketch = CountMinSketch(width=1 << 16, rows=3)
        for item in events:
            sketch.update(item)
        for item, real in Counter(events).items():
            assert sketch.query(item) == real

    def test_error_shrinks_with_width(self, small_zipf, small_zipf_truth):
        def total_error(width: int) -> int:
            sketch = CountMinSketch(width=width, rows=3, seed=1)
            for item in small_zipf.events:
                sketch.update(item)
            return sum(
                sketch.query(i) - small_zipf_truth.frequency(i)
                for i in small_zipf_truth.items()
            )

        assert total_error(1024) < total_error(64)

    @given(st.lists(st.integers(0, 50), min_size=1, max_size=300))
    @settings(max_examples=40, deadline=None)
    def test_overestimate_property(self, events):
        sketch = CountMinSketch(width=16, rows=2)
        for item in events:
            sketch.update(item)
        counts = Counter(events)
        for item, real in counts.items():
            assert sketch.query(item) >= real


class TestBehaviour:
    def test_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=0)
        with pytest.raises(ValueError):
            CountMinSketch(width=4, rows=0)

    def test_update_delta(self):
        sketch = CountMinSketch(width=64)
        sketch.update(1, delta=10)
        assert sketch.query(1) >= 10

    def test_update_and_query_matches_query(self):
        sketch = CountMinSketch(width=64, seed=2)
        for item in (5, 5, 9):
            returned = sketch.update_and_query(item)
            assert returned == sketch.query(item)

    def test_unseen_item_can_be_zero(self):
        sketch = CountMinSketch(width=1 << 12, rows=3)
        sketch.update(1)
        assert sketch.query(999_999) == 0

    def test_from_memory_width(self):
        budget = MemoryBudget(kb(12))
        sketch = CountMinSketch.from_memory(budget, rows=3, heap_k=0)
        assert sketch.width == (kb(12) // 4) // 3
        assert sketch.total_counters == sketch.width * 3

    def test_from_memory_reserves_heap(self):
        budget = MemoryBudget(kb(12))
        with_heap = CountMinSketch.from_memory(budget, rows=3, heap_k=100)
        assert with_heap.width < CountMinSketch.from_memory(budget, rows=3).width
