"""Shared fixtures: small deterministic workloads for fast tests."""

from __future__ import annotations

import os
import random

import pytest
from hypothesis import settings

# CI profiles.  The scheduled nightly job exports
# ``HYPOTHESIS_PROFILE=nightly`` to run the property suites an order of
# magnitude deeper than the per-PR default of 100 examples; tests that
# pin ``max_examples`` inline keep their pins (they are sized for per-PR
# latency, and inline settings override the profile by design).
settings.register_profile("nightly", max_examples=1_000, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))

from repro.streams.ground_truth import GroundTruth
from repro.streams.model import PeriodicStream
from repro.streams.synthetic import zipf_stream


@pytest.fixture(scope="session")
def small_zipf() -> PeriodicStream:
    """5k-event Zipf stream with 10 periods (session-cached)."""
    return zipf_stream(
        num_events=5_000, num_distinct=1_200, skew=1.0, num_periods=10, seed=42
    )


@pytest.fixture(scope="session")
def small_zipf_truth(small_zipf: PeriodicStream) -> GroundTruth:
    return GroundTruth(small_zipf)


@pytest.fixture(scope="session")
def medium_zipf() -> PeriodicStream:
    """20k-event Zipf stream with 20 periods (session-cached)."""
    return zipf_stream(
        num_events=20_000, num_distinct=4_000, skew=1.0, num_periods=20, seed=7
    )


@pytest.fixture(scope="session")
def medium_zipf_truth(medium_zipf: PeriodicStream) -> GroundTruth:
    return GroundTruth(medium_zipf)


@pytest.fixture()
def rng() -> random.Random:
    return random.Random(0xBEEF)


def make_stream(events, num_periods=1, name="test") -> PeriodicStream:
    """Helper to build tiny hand-crafted streams in tests."""
    return PeriodicStream(events=list(events), num_periods=num_periods, name=name)
