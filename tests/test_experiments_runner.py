"""Experiment runner: scoring and multi-algorithm sweeps."""

from __future__ import annotations

from repro.experiments.runner import EvalResult, evaluate, run_and_evaluate
from repro.streams.ground_truth import GroundTruth
from repro.summaries.base import ItemReport, StreamSummary
from tests.conftest import make_stream


class _RiggedSummary(StreamSummary):
    """Reports a fixed answer regardless of the stream."""

    def __init__(self, answers):
        self.answers = answers  # list of (item, significance)

    def insert(self, item):
        pass

    def query(self, item):
        return dict(self.answers).get(item, 0.0)

    def top_k(self, k):
        return [
            ItemReport(item=i, significance=s) for i, s in self.answers[:k]
        ]


class TestEvaluate:
    def test_perfect_summary(self):
        stream = make_stream([1, 1, 1, 2, 2, 3], num_periods=2)
        truth = GroundTruth(stream)
        answers = truth.top_k(2, 1.0, 0.0)
        result = evaluate(
            _RiggedSummary(answers), truth, k=2, alpha=1.0, beta=0.0, name="perfect"
        )
        assert result.precision == 1.0
        assert result.are == 0.0
        assert result.aae == 0.0
        assert result.name == "perfect"

    def test_wrong_items(self):
        stream = make_stream([1, 1, 1, 2, 2, 3], num_periods=2)
        truth = GroundTruth(stream)
        result = evaluate(
            _RiggedSummary([(100, 5.0), (200, 4.0)]), truth, 2, 1.0, 0.0
        )
        assert result.precision == 0.0
        assert result.are == 1.0  # zero-truth items count as error 1

    def test_biased_estimates(self):
        stream = make_stream([1, 1, 1, 1, 2, 2], num_periods=2)
        truth = GroundTruth(stream)
        # Right items, estimates doubled.
        result = evaluate(
            _RiggedSummary([(1, 8.0), (2, 4.0)]), truth, 2, 1.0, 0.0
        )
        assert result.precision == 1.0
        assert result.are == 1.0
        assert result.aae == 3.0

    def test_row_formatting(self):
        result = EvalResult(name="x", k=10, precision=0.5, are=0.125, aae=2.0)
        row = result.row()
        assert row[0] == "x"
        assert row[1] == "0.500"


class TestRunAndEvaluate:
    def test_runs_all_factories(self):
        stream = make_stream([1, 1, 2, 3], num_periods=2)
        factories = {
            "a": lambda: _RiggedSummary([(1, 2.0)]),
            "b": lambda: _RiggedSummary([(9, 1.0)]),
        }
        results = run_and_evaluate(factories, stream, k=1, alpha=1.0, beta=0.0)
        assert [r.name for r in results] == ["a", "b"]
        assert results[0].precision == 1.0
        assert results[1].precision == 0.0

    def test_accepts_precomputed_truth(self):
        stream = make_stream([1, 1, 2], num_periods=1)
        truth = GroundTruth(stream)
        results = run_and_evaluate(
            {"a": lambda: _RiggedSummary([(1, 2.0)])},
            stream,
            k=1,
            alpha=1.0,
            beta=0.0,
            truth=truth,
        )
        assert results[0].precision == 1.0
