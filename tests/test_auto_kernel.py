"""AutoLTC (``kernel="auto"``): probe, hysteresis, and differentials.

AutoLTC must be behaviourally indistinguishable from the other kernels
— same cells, CLOCK phase, parity, estimates — while privately deciding
whether batches ingest through the columnar chunk machinery or the
scalar fast path.  The selection logic is deterministic (probe counts
only, never timing), so these tests drive it with crafted workloads:
hot-key streams keep it columnar, all-distinct eviction storms flip it
to fast, and a recheck period brings it back when the regime relaxes.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import columnar
from repro.core.auto import AutoLTC
from repro.core.config import LTCConfig
from repro.core.fast_ltc import FastLTC
from repro.core.kernels import KERNELS, build_ltc
from tests.conftest import make_stream
from tests.test_columnar import assert_identical

pytestmark = pytest.mark.skipif(
    columnar._np is None, reason="numpy unavailable"
)


def make_config(**overrides):
    defaults = dict(
        num_buckets=2, bucket_width=4, alpha=1.0, beta=1.0,
        items_per_period=256,
    )
    defaults.update(overrides)
    return LTCConfig(**defaults)


def miss_batches(count, size, start=0):
    """``count`` batches of ``size`` all-distinct keys: pure miss storm."""
    key = start
    out = []
    for _ in range(count):
        batch = list(range(key, key + size))
        key += size
        out.append(batch)
    return out


def hot_batches(count, size):
    """``count`` batches cycling 4 hot keys: all hits after warm-up."""
    pattern = [1, 2, 3, 4]
    return [[pattern[i % 4] for i in range(size)] for _ in range(count)]


class TestSelection:
    def test_starts_columnar(self):
        ltc = AutoLTC(make_config())
        assert ltc.kernel_in_use == "columnar"
        assert ltc._auto_mode == "columnar"

    def test_miss_storm_flips_to_fast(self):
        """All-distinct keys over a saturated 8-cell table: once the
        table is full every window votes fast, and after HYSTERESIS
        windows the switch lands at the next period boundary."""
        ltc = AutoLTC(make_config())
        for batch in miss_batches(
            AutoLTC.PROBE_CHUNKS * (AutoLTC.HYSTERESIS + 2), 64
        ):
            ltc.insert_many(batch)
        assert ltc._auto_pending == "fast"
        assert ltc.kernel_in_use == "columnar"  # not yet — mid-period
        ltc.end_period()
        assert ltc._auto_mode == "fast"
        assert ltc.kernel_in_use == "fast"

    def test_hot_keys_stay_columnar(self):
        ltc = AutoLTC(make_config())
        for batch in hot_batches(AutoLTC.PROBE_CHUNKS * 4, 64):
            ltc.insert_many(batch)
        ltc.end_period()
        assert ltc._auto_mode == "columnar"
        assert ltc._auto_pending is None

    def test_fill_phase_does_not_vote(self):
        """While the table is claiming empty cells the stream looks
        miss-heavy by construction; those windows are suppressed."""
        ltc = AutoLTC(make_config(num_buckets=64, bucket_width=8))
        # 512 cells, one window of 4 x 64 distinct keys: all claims.
        for batch in miss_batches(AutoLTC.PROBE_CHUNKS, 64):
            ltc.insert_many(batch)
        assert ltc._auto_votes == 0
        assert ltc._auto_pending is None

    def test_hysteresis_absorbs_single_burst(self):
        """One miss-heavy window between hot windows must not flip."""
        ltc = AutoLTC(make_config())
        hot = hot_batches(AutoLTC.PROBE_CHUNKS, 64)
        for batch in hot + miss_batches(AutoLTC.PROBE_CHUNKS, 64) + hot:
            ltc.insert_many(batch)
        ltc.end_period()
        assert ltc._auto_mode == "columnar"
        assert ltc._auto_pending is None

    def test_never_switches_mid_period(self):
        ltc = AutoLTC(make_config())
        for batch in miss_batches(AutoLTC.PROBE_CHUNKS * 8, 64):
            ltc.insert_many(batch)
            assert ltc._auto_mode == "columnar"
        assert ltc._auto_pending == "fast"
        ltc.end_period()
        assert ltc._auto_mode == "fast"

    def test_recheck_period_flips_back(self):
        """In fast mode one period in RECHECK_PERIODS re-probes through
        the columnar path; a relaxed regime is picked up there."""
        ltc = AutoLTC(make_config())
        for batch in miss_batches(AutoLTC.PROBE_CHUNKS * 4, 64):
            ltc.insert_many(batch)
        ltc.end_period()
        assert ltc._auto_mode == "fast"
        # Idle periods until the next recheck boundary.
        while not ltc._auto_recheck:
            for batch in hot_batches(2, 64):
                ltc.insert_many(batch)
            ltc.end_period()
        assert ltc.kernel_in_use == "columnar"  # probing this period
        for batch in hot_batches(
            AutoLTC.PROBE_CHUNKS * (AutoLTC.HYSTERESIS + 1), 64
        ):
            ltc.insert_many(batch)
        ltc.end_period()
        assert ltc._auto_mode == "columnar"

    def test_clear_resets_to_columnar(self):
        ltc = AutoLTC(make_config())
        for batch in miss_batches(AutoLTC.PROBE_CHUNKS * 4, 64):
            ltc.insert_many(batch)
        ltc.end_period()
        assert ltc._auto_mode == "fast"
        ltc.clear()
        assert ltc._auto_mode == "columnar"
        assert ltc._auto_events == 0
        assert ltc.kernel_in_use == "columnar"


class TestDifferential:
    @given(
        st.lists(st.integers(0, 30), max_size=400),
        st.integers(1, 6),
        st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_to_fast_ltc(self, events, periods, ltr):
        periods = max(1, min(periods, len(events)))
        config = make_config(
            items_per_period=max(1, len(events) // periods),
            longtail_replacement=ltr,
        )
        fast, auto = FastLTC(config), AutoLTC(config)
        if events:
            stream = make_stream(events, num_periods=periods)
            stream.run(fast, batched=True)
            stream.run(auto, batched=True)
        assert_identical(fast, auto)

    def test_identical_across_mode_flips(self):
        """A miss-heavy prefix (drives fast mode) followed by a hot tail
        (drives the recheck back to columnar): state stays identical to
        FastLTC through both switches."""
        config = make_config(items_per_period=512)
        fast, auto = FastLTC(config), AutoLTC(config)
        rng = random.Random(13)
        modes_seen = set()
        for period in range(2 * AutoLTC.RECHECK_PERIODS):
            miss_heavy = period < AutoLTC.RECHECK_PERIODS
            for _ in range(AutoLTC.PROBE_CHUNKS * 2):
                if miss_heavy:
                    batch = [rng.randrange(1 << 30) for _ in range(64)]
                else:
                    batch = [rng.randrange(4) for _ in range(64)]
                fast.insert_many(batch)
                auto.insert_many(batch)
                assert_identical(fast, auto)
            fast.end_period()
            auto.end_period()
            modes_seen.add(auto._auto_mode)
            assert_identical(fast, auto)
        assert modes_seen == {"columnar", "fast"}
        assert auto._auto_mode == "columnar"

    def test_per_event_insert_identical(self):
        config = make_config()
        fast, auto = FastLTC(config), AutoLTC(config)
        rng = random.Random(7)
        for _ in range(2_000):
            item = rng.randrange(500)
            fast.insert(item)
            auto.insert(item)
        assert_identical(fast, auto)

    def test_oversized_key_falls_back_in_fast_mode(self):
        """Vectorization loss mid-stream must not break fast mode."""
        config = make_config()
        fast, auto = FastLTC(config), AutoLTC(config)
        for batch in miss_batches(AutoLTC.PROBE_CHUNKS * 4, 64):
            fast.insert_many(batch)
            auto.insert_many(batch)
        fast.end_period()
        auto.end_period()
        assert auto._auto_mode == "fast"
        poisoned = [1, 1 << 70, 2, 3, 1 << 90, 4]
        fast.insert_many(poisoned)
        auto.insert_many(poisoned)
        assert not auto._vec
        assert_identical(fast, auto)
        fast.insert_many([5, 6, 5])
        auto.insert_many([5, 6, 5])
        assert_identical(fast, auto)


class TestRegistration:
    def test_config_accepts_auto(self):
        config = make_config(kernel="auto")
        assert config.kernel == "auto"
        assert type(build_ltc(config)) is AutoLTC

    def test_registered_in_kernels(self):
        assert KERNELS["auto"] is AutoLTC

    @pytest.mark.parametrize("command", ["compare", "serve"])
    def test_cli_accepts_auto(self, capsys, command):
        from repro.cli import main

        with pytest.raises(SystemExit) as exc:
            main([command, "--help"])
        assert exc.value.code == 0
        help_text = capsys.readouterr().out
        assert "--kernel" in help_text
        assert "auto" in help_text
