"""reprolint self-tests: seeded-violation fixtures and the clean tree.

Each fixture under ``tests/fixtures/reprolint/`` violates exactly one
rule; these tests pin that the linter reports every seeded violation at
the right file:line, stays silent on the control classes, and exits 0 on
the real ``src/repro`` tree (satellite: the tree must lint clean).
"""

import pathlib
import subprocess
import sys

from tools.reprolint import main
from tools.reprolint.rules import Diagnostic, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "reprolint"


def lint_fixture(name: str):
    diags = lint_paths([str(FIXTURES / name)])
    assert all(d.path.endswith(name.rsplit("/", 1)[-1]) for d in diags)
    return diags


def lines_of(diags, rule):
    return sorted(d.line for d in diags if d.rule == rule)


# ----------------------------------------------------------------- R001
def test_r001_flags_both_directions():
    diags = lint_fixture("r001_bad.py")
    assert [d.rule for d in diags] == ["R001", "R001"]
    orphan, missing = diags
    assert orphan.line == 21 and "OrphanBatch" in orphan.message
    assert "without a concrete insert" in orphan.message
    assert missing.line == 28 and "MissingBatch" in missing.message
    assert "insert_many" in missing.message


def test_r001_controls_not_flagged():
    # The abstract stub base and the fully paired subclass stay silent.
    diags = lint_fixture("r001_bad.py")
    assert not any(
        "PairedFine" in d.message or "'StreamSummary'" in d.message for d in diags
    )


# ----------------------------------------------------------------- R002
def test_r002_flags_hot_path_misuse():
    diags = lint_fixture("r002_bad.py")
    assert {d.rule for d in diags} == {"R002"}
    by_line = {}
    for d in diags:
        by_line.setdefault(d.line, []).append(d.message)
    assert any("obs.registry()" in m for m in by_line[13])
    assert any("obs.is_enabled()" in m for m in by_line[14])
    assert any("registers a metric" in m for m in by_line[15])
    # Double guard reported at the method line.
    assert any("2 times" in m for m in by_line[17])
    # Line 19 is both an inline registration and an unguarded _obs use.
    assert any("registers a metric" in m for m in by_line[19])
    assert any("outside an is-None guard" in m for m in by_line[19])
    # Non-hot-path methods (top_k) are never flagged.
    assert all("top_k" not in m for ms in by_line.values() for m in ms)


# ----------------------------------------------------------------- R003
def test_r003_flags_unseeded_entropy_in_core_dirs():
    diags = lint_fixture("core/r003_bad.py")
    assert {d.rule for d in diags} == {"R003"}
    assert lines_of(diags, "R003") == [7, 11, 12, 13, 14, 15]
    messages = " ".join(d.message for d in diags)
    assert "time.time()" in messages and "os.urandom()" in messages
    # The seeded random.Random(42) on line 16 is allowed.
    assert 16 not in lines_of(diags, "R003")


def test_r003_only_applies_inside_deterministic_dirs():
    # The same source outside core/ must not be flagged: R003 is scoped.
    source = (FIXTURES / "core" / "r003_bad.py").read_text()
    elsewhere = FIXTURES / "r003_elsewhere_tmp.py"
    elsewhere.write_text(source)
    try:
        assert lint_paths([str(elsewhere)]) == []
    finally:
        elsewhere.unlink()


# ----------------------------------------------------------------- R004
def test_r004_flags_unguarded_numpy_imports():
    diags = lint_fixture("r004_bad.py")
    assert {d.rule for d in diags} == {"R004"}
    assert lines_of(diags, "R004") == [3, 6]
    unguarded, badtry = sorted(diags, key=lambda d: d.line)
    assert "unguarded top-level numpy import 'np'" in unguarded.message
    assert "never catches ImportError" in badtry.message
    # The properly guarded import (line 11) is allowed.
    assert 11 not in lines_of(diags, "R004")


# ----------------------------------------------------------------- R005
def test_r005_flags_missing_version_constant():
    diags = lint_fixture("r005_bad.py")
    assert [d.rule for d in diags] == ["R005"]
    assert diags[0].line == 4
    assert "without a module-level format-version constant" in diags[0].message


def test_r005_flags_one_sided_constant_reference():
    diags = lint_fixture("r005_unshared.py")
    assert [d.rule for d in diags] == ["R005"]
    assert diags[0].line == 7
    assert "never reference a shared format-version constant" in diags[0].message


# ----------------------------------------------------------------- R006
def test_r006_flags_unnotified_cell_state_writes():
    diags = lint_fixture("core/r006_bad.py")
    r006 = [d for d in diags if d.rule == "R006"]
    assert lines_of(r006, "R006") == [18, 19, 28, 51, 58]
    by_line = {d.line: d.message for d in r006}
    # Both eviction writes, each naming the attribute and the owner.
    assert "'_keys' in 'LTC.evict'" in by_line[18]
    assert "'_freqs' in 'LTC.evict'" in by_line[19]
    assert "post-dominated by a CellListener notification" in by_line[18]
    # One branch notifying is not every path.
    assert "'_counters' in 'LTC.update'" in by_line[28]
    # Module-level restore helpers are in scope too (any receiver).
    assert "'_freqs' in 'restore'" in by_line[58]


def test_r006_bare_waiver_needs_justification():
    diags = lint_fixture("core/r006_bad.py")
    bare = [d for d in diags if d.line == 51]
    assert len(bare) == 1
    assert "needs a justification" in bare[0].message
    assert "blanket suppressions are not accepted" in bare[0].message


def test_r006_controls_not_flagged():
    # Guarded notify, detached region, transitive notifier delegation,
    # and justified waivers all stay silent.
    diags = lint_fixture("core/r006_bad.py")
    flagged = lines_of(diags, "R006")
    for owner in ("LTC.insert", "LTC.reset", "LTC.delegate",
                  "LTC.rebuild", "restore_waived"):
        assert not any(f"'{owner}'" in d.message for d in diags), owner
    assert 38 not in flagged  # write followed by unconditional notify


# ----------------------------------------------------------------- R007
def test_r007_flags_blocking_calls_with_call_chain():
    diags = lint_fixture("serve/r007_bad.py")
    assert {d.rule for d in diags} == {"R007"}
    assert lines_of(diags, "R007") == [14, 19, 24, 32]
    by_line = {d.line: d.message for d in diags}
    # Transitive reach is reported with the full route.
    assert "handle_request -> _load_config" in by_line[14]
    assert "sync file I/O" in by_line[14]
    assert "time.sleep()" in by_line[19]
    assert "subprocess.run()" in by_line[24]
    # Receiver type resolved through the ctor annotation.
    assert "unbounded queue.Queue.get()" in by_line[32]


def test_r007_controls_not_flagged():
    diags = lint_fixture("serve/r007_bad.py")
    messages = " ".join(d.message for d in diags)
    assert 34 not in lines_of(diags, "R007")  # get(timeout=...) is bounded
    assert 38 not in lines_of(diags, "R007")  # waived durability barrier
    assert "save_state" not in messages
    assert "offloaded" not in messages  # run_in_executor handoff


def test_r007_only_applies_to_serve_coroutines():
    # The same source outside serve/ has no entry points: R007 is scoped.
    source = (FIXTURES / "serve" / "r007_bad.py").read_text()
    elsewhere = FIXTURES / "r007_elsewhere_tmp.py"
    elsewhere.write_text(source)
    try:
        assert lint_paths([str(elsewhere)]) == []
    finally:
        elsewhere.unlink()


# ----------------------------------------------------------------- R008
def test_r008_flags_leaks_and_attach_side_unlink():
    diags = lint_fixture("r008_bad.py")
    assert {d.rule for d in diags} == {"R008"}
    assert lines_of(diags, "R008") == [12, 33, 37]
    by_line = {d.line: d.message for d in diags}
    assert "'leak_on_exception'" in by_line[12]
    assert "exception edges included" in by_line[12]
    assert "must not unlink" in by_line[33]
    assert "'transfer_outside_try'" in by_line[37]


def test_r008_controls_not_flagged():
    # try/finally cleanup, protected transfer, ownership return, and a
    # justified waiver all stay silent — including the creation that
    # sits immediately *before* its try/finally.
    diags = lint_fixture("r008_bad.py")
    flagged = lines_of(diags, "R008")
    assert 19 not in flagged  # clean_finally creation
    assert 42 not in flagged  # transfer_inside_try
    assert 48 not in flagged  # returned_to_caller
    assert 54 not in flagged  # waived_creation


# ----------------------------------------------------------------- R009
def test_r009_flags_batched_path_skew():
    diags = lint_fixture("r009_bad.py")
    assert [d.rule for d in diags] == ["R009"]
    assert diags[0].line == 19
    assert "'SkewedKernel.insert_many' never touches '_total'" in diags[0].message
    assert "'SkewedKernel.insert' mutates" in diags[0].message


def test_r009_controls_not_flagged():
    # Delegation closure, may-write mirroring, and a justified waiver.
    diags = lint_fixture("r009_bad.py")
    messages = " ".join(d.message for d in diags)
    assert "PairedKernel" not in messages
    assert "VectorKernel" not in messages
    assert "WaivedKernel" not in messages


# ----------------------------------------------------- driver behaviour
def test_diagnostic_render_format():
    d = Diagnostic(path="a/b.py", line=3, col=7, rule="R001", message="boom")
    assert d.render() == "a/b.py:3:7: R001 boom"


def test_diagnostics_sorted_by_location():
    diags = lint_paths([str(FIXTURES)])
    keys = [(d.path, d.line, d.col, d.rule) for d in diags]
    assert keys == sorted(keys)
    assert {d.rule for d in diags} == {
        "R001", "R002", "R003", "R004", "R005",
        "R006", "R007", "R008", "R009",
    }


def test_rule_filter_restricts_output():
    diags = lint_paths([str(FIXTURES)], only=frozenset({"R004"}))
    assert diags and {d.rule for d in diags} == {"R004"}


def test_clean_tree_src_repro():
    """Satellite: the real library must lint clean (exit status 0)."""
    assert lint_paths([str(REPO_ROOT / "src" / "repro")]) == []


def test_cli_exit_status_and_output(capsys):
    assert main([str(REPO_ROOT / "src" / "repro")]) == 0
    assert "reprolint: clean" in capsys.readouterr().out
    assert main([str(FIXTURES / "r004_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "R004" in out and "violation(s)" in out
    assert main([str(FIXTURES / "does_not_exist.py")]) == 2


def test_cli_rules_flag(capsys):
    assert main([str(FIXTURES), "--rules", "R005"]) == 1
    out = capsys.readouterr().out
    assert "R005" in out and "R001" not in out


def test_cli_rules_glob_selects_matching_rules(capsys):
    assert main([str(FIXTURES), "--rules", "R00[89]"]) == 1
    out = capsys.readouterr().out
    assert "R008" in out and "R009" in out
    assert "R001" not in out and "R006" not in out


def test_cli_rules_unknown_pattern_is_usage_error(capsys):
    assert main([str(FIXTURES), "--rules", "R99*"]) == 2
    out = capsys.readouterr().out
    assert "matches no known rule" in out


def test_cli_json_format(capsys):
    import json

    assert main([str(FIXTURES / "r009_bad.py"), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["tool"] == "reprolint"
    assert payload["count"] == 1
    (entry,) = payload["diagnostics"]
    assert entry["rule"] == "R009" and entry["line"] == 19


def test_cli_sarif_format(tmp_path, capsys):
    import json

    report = tmp_path / "reprolint.sarif"
    assert (
        main(
            [
                str(FIXTURES / "r008_bad.py"),
                "--format",
                "sarif",
                "--output",
                str(report),
            ]
        )
        == 1
    )
    assert "violation(s)" in capsys.readouterr().out
    sarif = json.loads(report.read_text())
    assert sarif["version"] == "2.1.0"
    (run,) = sarif["runs"]
    assert run["tool"]["driver"]["name"] == "reprolint"
    rule_ids = [r["id"] for r in run["tool"]["driver"]["rules"]]
    assert rule_ids == sorted(rule_ids) and "R008" in rule_ids
    assert len(run["results"]) == 3
    first = run["results"][0]
    assert first["ruleId"] == "R008"
    region = first["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 12
    # SARIF columns are 1-based; Diagnostic columns are 0-based offsets.
    assert region["startColumn"] == 11


def test_self_lint_tools_tree_is_clean():
    """Satellite: reprolint's own source must pass reprolint."""
    assert lint_paths([str(REPO_ROOT / "tools")]) == []


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reprolint: clean" in proc.stdout
