"""reprolint self-tests: seeded-violation fixtures and the clean tree.

Each fixture under ``tests/fixtures/reprolint/`` violates exactly one
rule; these tests pin that the linter reports every seeded violation at
the right file:line, stays silent on the control classes, and exits 0 on
the real ``src/repro`` tree (satellite: the tree must lint clean).
"""

import pathlib
import subprocess
import sys

from tools.reprolint import main
from tools.reprolint.rules import Diagnostic, lint_paths

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
FIXTURES = REPO_ROOT / "tests" / "fixtures" / "reprolint"


def lint_fixture(name: str):
    diags = lint_paths([str(FIXTURES / name)])
    assert all(d.path.endswith(name.rsplit("/", 1)[-1]) for d in diags)
    return diags


def lines_of(diags, rule):
    return sorted(d.line for d in diags if d.rule == rule)


# ----------------------------------------------------------------- R001
def test_r001_flags_both_directions():
    diags = lint_fixture("r001_bad.py")
    assert [d.rule for d in diags] == ["R001", "R001"]
    orphan, missing = diags
    assert orphan.line == 21 and "OrphanBatch" in orphan.message
    assert "without a concrete insert" in orphan.message
    assert missing.line == 28 and "MissingBatch" in missing.message
    assert "insert_many" in missing.message


def test_r001_controls_not_flagged():
    # The abstract stub base and the fully paired subclass stay silent.
    diags = lint_fixture("r001_bad.py")
    assert not any(
        "PairedFine" in d.message or "'StreamSummary'" in d.message for d in diags
    )


# ----------------------------------------------------------------- R002
def test_r002_flags_hot_path_misuse():
    diags = lint_fixture("r002_bad.py")
    assert {d.rule for d in diags} == {"R002"}
    by_line = {}
    for d in diags:
        by_line.setdefault(d.line, []).append(d.message)
    assert any("obs.registry()" in m for m in by_line[13])
    assert any("obs.is_enabled()" in m for m in by_line[14])
    assert any("registers a metric" in m for m in by_line[15])
    # Double guard reported at the method line.
    assert any("2 times" in m for m in by_line[17])
    # Line 19 is both an inline registration and an unguarded _obs use.
    assert any("registers a metric" in m for m in by_line[19])
    assert any("outside an is-None guard" in m for m in by_line[19])
    # Non-hot-path methods (top_k) are never flagged.
    assert all("top_k" not in m for ms in by_line.values() for m in ms)


# ----------------------------------------------------------------- R003
def test_r003_flags_unseeded_entropy_in_core_dirs():
    diags = lint_fixture("core/r003_bad.py")
    assert {d.rule for d in diags} == {"R003"}
    assert lines_of(diags, "R003") == [7, 11, 12, 13, 14, 15]
    messages = " ".join(d.message for d in diags)
    assert "time.time()" in messages and "os.urandom()" in messages
    # The seeded random.Random(42) on line 16 is allowed.
    assert 16 not in lines_of(diags, "R003")


def test_r003_only_applies_inside_deterministic_dirs():
    # The same source outside core/ must not be flagged: R003 is scoped.
    source = (FIXTURES / "core" / "r003_bad.py").read_text()
    elsewhere = FIXTURES / "r003_elsewhere_tmp.py"
    elsewhere.write_text(source)
    try:
        assert lint_paths([str(elsewhere)]) == []
    finally:
        elsewhere.unlink()


# ----------------------------------------------------------------- R004
def test_r004_flags_unguarded_numpy_imports():
    diags = lint_fixture("r004_bad.py")
    assert {d.rule for d in diags} == {"R004"}
    assert lines_of(diags, "R004") == [3, 6]
    unguarded, badtry = sorted(diags, key=lambda d: d.line)
    assert "unguarded top-level numpy import 'np'" in unguarded.message
    assert "never catches ImportError" in badtry.message
    # The properly guarded import (line 11) is allowed.
    assert 11 not in lines_of(diags, "R004")


# ----------------------------------------------------------------- R005
def test_r005_flags_missing_version_constant():
    diags = lint_fixture("r005_bad.py")
    assert [d.rule for d in diags] == ["R005"]
    assert diags[0].line == 4
    assert "without a module-level format-version constant" in diags[0].message


def test_r005_flags_one_sided_constant_reference():
    diags = lint_fixture("r005_unshared.py")
    assert [d.rule for d in diags] == ["R005"]
    assert diags[0].line == 7
    assert "never reference a shared format-version constant" in diags[0].message


# ----------------------------------------------------- driver behaviour
def test_diagnostic_render_format():
    d = Diagnostic(path="a/b.py", line=3, col=7, rule="R001", message="boom")
    assert d.render() == "a/b.py:3:7: R001 boom"


def test_diagnostics_sorted_by_location():
    diags = lint_paths([str(FIXTURES)])
    keys = [(d.path, d.line, d.col, d.rule) for d in diags]
    assert keys == sorted(keys)
    assert {d.rule for d in diags} == {"R001", "R002", "R003", "R004", "R005"}


def test_rule_filter_restricts_output():
    diags = lint_paths([str(FIXTURES)], only=frozenset({"R004"}))
    assert diags and {d.rule for d in diags} == {"R004"}


def test_clean_tree_src_repro():
    """Satellite: the real library must lint clean (exit status 0)."""
    assert lint_paths([str(REPO_ROOT / "src" / "repro")]) == []


def test_cli_exit_status_and_output(capsys):
    assert main([str(REPO_ROOT / "src" / "repro")]) == 0
    assert "reprolint: clean" in capsys.readouterr().out
    assert main([str(FIXTURES / "r004_bad.py")]) == 1
    out = capsys.readouterr().out
    assert "R004" in out and "violation(s)" in out
    assert main([str(FIXTURES / "does_not_exist.py")]) == 2


def test_cli_rules_flag(capsys):
    assert main([str(FIXTURES), "--rules", "R005"]) == 1
    out = capsys.readouterr().out
    assert "R005" in out and "R001" not in out


def test_module_entry_point_runs():
    proc = subprocess.run(
        [sys.executable, "-m", "tools.reprolint", "src/repro"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "reprolint: clean" in proc.stdout
