"""WindowedLTC vs a brute-force sliding-window oracle.

The oracle tracks, for every item, the exact decayed frequency and exact
windowed presence.  A WindowedLTC with ample capacity (no evictions)
must agree with it exactly; a capacity-starved one must never exceed it.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.windowed import WindowedLTC
from tests.conftest import make_stream


class SlidingOracle:
    """Exact windowed statistics (decayed frequency + presence ring)."""

    def __init__(self, window: int, decay: float):
        self.window = window
        self.decay = decay
        self.freq = {}
        self.rings = {}

    def insert(self, item: int) -> None:
        self.freq[item] = self.freq.get(item, 0.0) + 1.0
        self.rings[item] = self.rings.get(item, 0) | 1

    def end_period(self) -> None:
        mask = (1 << self.window) - 1
        for item in list(self.rings):
            self.rings[item] = (self.rings[item] << 1) & mask
            self.freq[item] *= self.decay
            # Mirror the structure's garbage collection: a cell with no
            # window presence and sub-½ residual mass is reclaimed (its
            # remaining decayed frequency is deliberately forgotten).
            if self.rings[item] == 0 and self.freq[item] < 0.5:
                del self.rings[item]
                del self.freq[item]

    def estimate(self, item: int):
        return (
            self.freq.get(item, 0.0),
            bin(self.rings.get(item, 0)).count("1"),
        )


def run_both(events, num_periods, window, decay, w, d):
    num_periods = max(1, min(num_periods, len(events) or 1))
    wltc = WindowedLTC(
        num_buckets=w,
        window=window,
        bucket_width=d,
        alpha=1.0,
        beta=1.0,
        decay=decay,
    )
    oracle = SlidingOracle(window, decay)
    if events:
        stream = make_stream(events, num_periods=num_periods)
        for period in stream.iter_periods():
            for item in period:
                wltc.insert(item)
                oracle.insert(item)
            wltc.end_period()
            oracle.end_period()
    return wltc, oracle


class TestAgainstOracle:
    @given(
        st.lists(st.integers(0, 10), max_size=200),
        st.integers(1, 6),
        st.integers(1, 8),
    )
    @settings(max_examples=80, deadline=None)
    def test_exact_with_ample_capacity(self, events, periods, window):
        # 11 possible items, 64 cells → no evictions ever.
        wltc, oracle = run_both(events, periods, window, decay=0.5, w=8, d=8)
        for item in set(events):
            got_f, got_p = wltc.estimate(item)
            exp_f, exp_p = oracle.estimate(item)
            assert got_f == pytest.approx(exp_f)
            assert got_p == exp_p

    @given(st.lists(st.integers(0, 50), max_size=300), st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_oracle_under_pressure(self, events, periods):
        """With evictions, estimates only lose history — a tracked item's
        windowed persistency never exceeds the exact value."""
        wltc, oracle = run_both(events, periods, window=4, decay=1.0, w=1, d=3)
        for item in set(events):
            _, got_p = wltc.estimate(item)
            _, exp_p = oracle.estimate(item)
            assert got_p <= exp_p

    def test_random_long_run(self):
        rng = random.Random(31)
        events = [rng.randrange(12) for _ in range(2_000)]
        wltc, oracle = run_both(events, 20, window=6, decay=0.8, w=8, d=8)
        for item in range(12):
            got_f, got_p = wltc.estimate(item)
            exp_f, exp_p = oracle.estimate(item)
            assert got_p == exp_p
            assert got_f == pytest.approx(exp_f)
