"""LTC persistency tracking: CLOCK harvesting, Deviation Eliminator,
finalisation."""

from __future__ import annotations

from repro.core.config import LTCConfig
from repro.core.ltc import LTC
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


def run_ltc(events, num_periods, **cfg) -> LTC:
    stream = make_stream(events, num_periods=num_periods)
    defaults = dict(
        num_buckets=4,
        bucket_width=4,
        alpha=0.0,
        beta=1.0,
        items_per_period=stream.period_length,
        longtail_replacement=False,
    )
    defaults.update(cfg)
    ltc = LTC(LTCConfig(**defaults))
    stream.run(ltc)
    return ltc


class TestExactPersistency:
    def test_every_period_item(self):
        events = [1, 2, 1, 3, 1, 4, 1, 5] * 2  # item 1 in all periods
        ltc = run_ltc(events, num_periods=4)
        truth = GroundTruth(make_stream(events, num_periods=4))
        assert ltc.estimate(1)[1] == truth.persistency(1)

    def test_single_period_item(self):
        events = [1, 1, 1, 1, 2, 9, 9, 9]
        ltc = run_ltc(events, num_periods=2)
        assert ltc.estimate(2)[1] == 1

    def test_duplicates_in_one_period_count_once(self):
        ltc = run_ltc([7] * 12, num_periods=3)
        assert ltc.estimate(7) == (12, 3)

    def test_uncontended_cells_are_exact(self):
        """With more cells than distinct items and DE on, every estimate
        equals the truth (Lemma IV.1 conditions hold for all items)."""
        events = [1, 2, 3, 1, 2, 1, 4, 4, 3, 2, 1, 4]
        stream = make_stream(events, num_periods=3)
        truth = GroundTruth(stream)
        ltc = run_ltc(events, num_periods=3, num_buckets=8, alpha=1.0)
        for item in truth.items():
            f, p = ltc.estimate(item)
            assert f == truth.frequency(item)
            assert p == truth.persistency(item)

    def test_alternating_item(self):
        # Item 5 appears in periods 0, 2 only.
        events = [5, 1, 2, 3, 5, 4]  # periods of 2: [5,1] [2,3] [5,4]
        ltc = run_ltc(events, num_periods=3)
        assert ltc.estimate(5)[1] == 2


class TestDeviationEliminator:
    def test_basic_version_can_overestimate(self):
        """The Fig. 4 scenario: an item straddling the pointer within one
        period gets double-credited by the basic (1-flag) version."""
        # m = 4 cells (1 bucket × 4), n = 4 items/period.  The pointer
        # passes one cell per arrival; item 1 sits in slot 0, so arrivals
        # after the first are harvested in the same period when slot 0 is
        # passed again... construct across two periods:
        events = [1, 2, 3, 1, 9, 9, 9, 9]
        # True persistency of item 1 = 1 (only period 0).
        basic = run_ltc(
            events, num_periods=2, num_buckets=1, deviation_eliminator=False
        )
        de = run_ltc(
            events, num_periods=2, num_buckets=1, deviation_eliminator=True
        )
        truth = GroundTruth(make_stream(events, num_periods=2))
        assert truth.persistency(1) == 1
        assert de.estimate(1)[1] == 1
        assert basic.estimate(1)[1] >= de.estimate(1)[1]

    def test_de_never_overestimates_on_random_streams(self, rng):
        for trial in range(10):
            events = [rng.randrange(20) for _ in range(200)]
            stream = make_stream(events, num_periods=5)
            truth = GroundTruth(stream)
            ltc = run_ltc(events, num_periods=5, num_buckets=2, bucket_width=4)
            for item in set(events):
                assert ltc.estimate(item)[1] <= truth.persistency(item)


class TestFinalize:
    def test_finalize_idempotent(self):
        ltc = run_ltc([1, 1, 2, 2], num_periods=2)
        p = ltc.estimate(1)[1]
        ltc.finalize()
        ltc.finalize()
        assert ltc.estimate(1)[1] == p

    def test_without_finalize_last_period_pending(self):
        """Before finalisation the last period's appearances are still in
        flags, so persistency lags by exactly the pending periods."""
        events = [1, 1, 1, 1]
        stream = make_stream(events, num_periods=2)
        ltc = LTC(
            LTCConfig(
                num_buckets=1,
                bucket_width=2,
                alpha=0.0,
                beta=1.0,
                items_per_period=2,
                longtail_replacement=False,
            )
        )
        for period in stream.iter_periods():
            for item in period:
                ltc.insert(item)
            ltc.end_period()
        assert ltc.estimate(1)[1] == 1  # period 0 harvested during period 1
        ltc.finalize()
        assert ltc.estimate(1)[1] == 2
