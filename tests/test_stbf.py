"""Space-Time Bloom Filter: cell states and singleton extraction."""

from __future__ import annotations

import pytest

from repro.codes.raptor import RaptorCode
from repro.membership.stbf import CellState, SpaceTimeBloomFilter


def make_stbf(num_cells=256, num_hashes=3, seed=1) -> SpaceTimeBloomFilter:
    return SpaceTimeBloomFilter(
        num_cells=num_cells,
        code=RaptorCode(seed=7),
        num_hashes=num_hashes,
        seed=seed,
    )


class TestStates:
    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            make_stbf(num_cells=0)
        with pytest.raises(ValueError):
            make_stbf(num_hashes=0)

    def test_fresh_filter_empty(self):
        stbf = make_stbf()
        empty, occupied, collided = stbf.occupancy
        assert (empty, occupied, collided) == (256, 0, 0)

    def test_single_insert_occupies_r_cells(self):
        stbf = make_stbf()
        stbf.insert(42)
        cells = set(stbf.cells_of(42))
        _, occupied, collided = stbf.occupancy
        assert occupied == len(cells)
        assert collided == 0

    def test_reinsert_idempotent(self):
        stbf = make_stbf()
        stbf.insert(42)
        before = stbf.occupancy
        for _ in range(5):
            stbf.insert(42)
        assert stbf.occupancy == before

    def test_two_items_colliding_cell_marked(self):
        """Force two items onto one cell and check the collision state."""
        stbf = make_stbf(num_cells=1, num_hashes=1)
        stbf.insert(1)
        stbf.insert(2)
        assert stbf.state_of(0) == CellState.COLLIDED
        assert list(stbf.singletons()) == []

    def test_collided_stays_collided(self):
        stbf = make_stbf(num_cells=1, num_hashes=1)
        stbf.insert(1)
        stbf.insert(2)
        stbf.insert(1)
        assert stbf.state_of(0) == CellState.COLLIDED


class TestSingletons:
    def test_singleton_symbols_decode(self):
        code = RaptorCode(seed=7)
        stbf = SpaceTimeBloomFilter(num_cells=1024, code=code, num_hashes=3, seed=2)
        item = 0xCAFEBABE
        stbf.insert(item)
        symbols = [(cell, sym) for cell, fp, sym in stbf.singletons()]
        decoded = code.decode(symbols)
        assert decoded is None or decoded == item

    def test_singletons_report_fingerprint(self):
        stbf = make_stbf()
        stbf.insert(7)
        fp = stbf.fingerprint(7)
        assert all(f == fp for _, f, _ in stbf.singletons())

    def test_fingerprint_width(self):
        stbf = make_stbf()
        for item in range(100):
            assert 0 <= stbf.fingerprint(item) < (1 << stbf.fp_bits)


class TestMembership:
    def test_no_false_negatives(self):
        stbf = make_stbf(num_cells=2048)
        items = list(range(100))
        for item in items:
            stbf.insert(item)
        assert all(stbf.might_contain(item) for item in items)

    def test_absent_item_usually_rejected(self):
        stbf = make_stbf(num_cells=4096)
        for item in range(50):
            stbf.insert(item)
        misses = sum(
            1 for probe in range(10_000, 11_000) if stbf.might_contain(probe)
        )
        assert misses < 50
