"""Sketch-based persistent adaptation: BF dedup + sketch counting."""

from __future__ import annotations

from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.sketch_persistent import SketchPersistent
from repro.sketches.count_min import CountMinSketch
from repro.sketches.cu import CUSketch
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


def make_summary(width=4096, bits=1 << 15, k=10) -> SketchPersistent:
    return SketchPersistent(
        sketch=CountMinSketch(width=width, rows=3),
        bloom=BloomFilter(num_bits=bits, num_hashes=3),
        k=k,
    )


class TestSemantics:
    def test_counts_periods_not_arrivals(self):
        summary = make_summary()
        stream = make_stream([5] * 20, num_periods=4)
        stream.run(summary)
        assert summary.query(5) == 4.0

    def test_exact_with_ample_memory(self):
        events = [1, 2, 1, 3, 2, 2, 1, 1, 3, 9, 9, 9]
        stream = make_stream(events, num_periods=3)
        truth = GroundTruth(stream)
        summary = make_summary()
        stream.run(summary)
        for item in truth.items():
            assert summary.query(item) == truth.persistency(item)

    def test_bloom_cleared_each_period(self):
        summary = make_summary()
        summary.insert(1)
        summary.end_period()
        assert 1 not in summary.bloom

    def test_cm_overestimates_only_with_perfect_bloom(self, small_zipf, small_zipf_truth):
        """With a large BF (no false positives in practice) the CM-counted
        persistency never underestimates."""
        summary = make_summary(width=128, bits=1 << 18)
        small_zipf.run(summary)
        under = sum(
            1
            for item in small_zipf_truth.items()
            if summary.query(item) < small_zipf_truth.persistency(item)
        )
        # BF false positives are the only undercount source; with 256Kbit
        # for ~500 items/period they are essentially absent.
        assert under == 0

    def test_topk_on_zipf(self, small_zipf, small_zipf_truth):
        summary = SketchPersistent(
            sketch=CUSketch(width=2048, rows=3),
            bloom=BloomFilter(num_bits=1 << 16, num_hashes=3),
            k=30,
        )
        small_zipf.run(summary)
        exact = small_zipf_truth.top_k_items(30, 0.0, 1.0)
        reported = {r.item for r in summary.top_k(30)}
        assert len(reported & exact) / 30 >= 0.7


class TestSizing:
    def test_from_memory_splits_budget(self):
        budget = MemoryBudget(kb(16))
        summary = SketchPersistent.from_memory(CountMinSketch, budget, k=10)
        assert summary.bloom.num_bits == budget.total_bytes // 2 * 8
        assert summary.sketch.width >= 1
        assert summary.heap.capacity == 10
