"""Stream-Summary bucket-list structure: ordering invariant and semantics."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.summaries.stream_summary import StreamSummaryList


class TestBasics:
    def test_add_and_count(self):
        summary = StreamSummaryList()
        summary.add(1, count=1)
        assert summary.count_of(1) == 1
        assert 1 in summary
        assert len(summary) == 1

    def test_add_duplicate_rejected(self):
        summary = StreamSummaryList()
        summary.add(1)
        with pytest.raises(ValueError):
            summary.add(1)

    def test_increment(self):
        summary = StreamSummaryList()
        summary.add(1)
        assert summary.increment(1) == 2
        assert summary.count_of(1) == 2

    def test_increment_delta(self):
        summary = StreamSummaryList()
        summary.add(1)
        summary.increment(1, delta=5)
        assert summary.count_of(1) == 6

    def test_min_count(self):
        summary = StreamSummaryList()
        summary.add(1)
        summary.add(2)
        summary.increment(1)
        assert summary.min_count() == 1

    def test_min_count_empty(self):
        assert StreamSummaryList().min_count() == 0

    def test_replace_min(self):
        summary = StreamSummaryList()
        summary.add(1)
        summary.add(2)
        summary.increment(2, delta=4)
        evicted, min_count = summary.replace_min(99)
        assert evicted == 1
        assert min_count == 1
        assert 1 not in summary
        # Space-Saving semantics: newcomer gets min + 1 and error = min.
        assert summary.count_of(99) == 2
        assert summary.error_of(99) == 1

    def test_replace_min_empty_raises(self):
        with pytest.raises(IndexError):
            StreamSummaryList().replace_min(1)

    def test_items_non_decreasing(self):
        summary = StreamSummaryList()
        for i in range(10):
            summary.add(i, count=1)
        for i in range(5):
            summary.increment(i, delta=i + 1)
        counts = [c for _, c in summary.items()]
        assert counts == sorted(counts)

    def test_top(self):
        summary = StreamSummaryList()
        summary.add(1)
        summary.add(2)
        summary.increment(2, delta=9)
        assert summary.top(1) == [(2, 10)]


class TestInvariantUnderRandomOps:
    def test_random_workload(self):
        rng = random.Random(13)
        summary = StreamSummaryList()
        reference: dict = {}
        capacity = 12
        for _ in range(4_000):
            item = rng.randrange(40)
            if item in summary:
                summary.increment(item)
                reference[item] += 1
            elif len(summary) < capacity:
                summary.add(item)
                reference[item] = 1
            else:
                evicted, min_count = summary.replace_min(item)
                del reference[evicted]
                reference[item] = min_count + 1
        assert summary.check_invariant()
        assert {i: c for i, c in summary.items()} == reference

    @given(st.lists(st.integers(0, 15), max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_invariant_property(self, arrivals):
        summary = StreamSummaryList()
        capacity = 5
        for item in arrivals:
            if item in summary:
                summary.increment(item)
            elif len(summary) < capacity:
                summary.add(item)
            else:
                summary.replace_min(item)
        assert summary.check_invariant()
        assert len(summary) <= capacity
