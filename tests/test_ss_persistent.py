"""SpaceSavingPersistent: counter-based persistent adaptation."""

from __future__ import annotations

from repro.membership.bloom import BloomFilter
from repro.metrics.memory import MemoryBudget, kb
from repro.persistent.ss_persistent import SpaceSavingPersistent
from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


def make_summary(capacity=64, bits=1 << 15) -> SpaceSavingPersistent:
    return SpaceSavingPersistent(
        capacity=capacity, bloom=BloomFilter(num_bits=bits, num_hashes=3)
    )


class TestSemantics:
    def test_counts_periods_not_arrivals(self):
        summary = make_summary()
        stream = make_stream([5] * 20, num_periods=4)
        stream.run(summary)
        assert summary.query(5) == 4.0

    def test_exact_with_ample_capacity(self):
        events = [1, 2, 1, 3, 2, 2, 1, 1, 3, 9, 9, 9]
        stream = make_stream(events, num_periods=3)
        truth = GroundTruth(stream)
        summary = make_summary()
        stream.run(summary)
        for item in truth.items():
            assert summary.query(item) == truth.persistency(item)

    def test_never_underestimates_monitored_items(self, small_zipf, small_zipf_truth):
        """Space-Saving over the deduplicated stream overestimates only."""
        summary = make_summary(capacity=64, bits=1 << 18)
        small_zipf.run(summary)
        for report in summary.top_k(64):
            assert report.persistency >= small_zipf_truth.persistency(report.item)

    def test_overestimate_bounded_by_total_persistency(
        self, small_zipf, small_zipf_truth
    ):
        capacity = 64
        summary = make_summary(capacity=capacity, bits=1 << 18)
        small_zipf.run(summary)
        total_persistency = sum(
            small_zipf_truth.persistency(i) for i in small_zipf_truth.items()
        )
        bound = total_persistency / capacity
        for report in summary.top_k(capacity):
            over = report.persistency - small_zipf_truth.persistency(report.item)
            assert over <= bound

    def test_topk_on_zipf(self, small_zipf, small_zipf_truth):
        summary = make_summary(capacity=256, bits=1 << 16)
        small_zipf.run(summary)
        exact = small_zipf_truth.top_k_items(30, 0.0, 1.0)
        reported = {r.item for r in summary.top_k(30)}
        assert len(reported & exact) / 30 >= 0.7


class TestSizing:
    def test_from_memory(self):
        summary = SpaceSavingPersistent.from_memory(MemoryBudget(kb(8)))
        assert summary.bloom.num_bits == kb(4) * 8
        assert summary._ss.capacity == kb(4) // 8

    def test_len(self):
        summary = make_summary(capacity=4)
        stream = make_stream(list(range(20)), num_periods=2)
        stream.run(summary)
        assert len(summary) == 4
