"""Exact oracle vs brute force."""

from __future__ import annotations

from collections import Counter

from repro.streams.ground_truth import GroundTruth
from tests.conftest import make_stream


class TestExactness:
    def test_frequencies_match_counter(self, small_zipf, small_zipf_truth):
        counts = Counter(small_zipf.events)
        for item, f in list(counts.items())[:200]:
            assert small_zipf_truth.frequency(item) == f

    def test_persistency_brute_force(self):
        stream = make_stream([1, 1, 2, 1, 3, 3, 2, 2, 1, 3], num_periods=5)
        truth = GroundTruth(stream)
        # Periods: [1,1] [2,1] [3,3] [2,2] [1,3]
        assert truth.persistency(1) == 3
        assert truth.persistency(2) == 2
        assert truth.persistency(3) == 2

    def test_duplicates_in_period_count_once(self):
        stream = make_stream([7] * 10, num_periods=2)
        truth = GroundTruth(stream)
        assert truth.frequency(7) == 10
        assert truth.persistency(7) == 2

    def test_unknown_item_is_zero(self, small_zipf_truth):
        assert small_zipf_truth.frequency(2**40) == 0
        assert small_zipf_truth.persistency(2**40) == 0
        assert small_zipf_truth.significance(2**40, 1, 1) == 0

    def test_persistency_never_exceeds_frequency_or_periods(
        self, small_zipf, small_zipf_truth
    ):
        for item in small_zipf_truth.items()[:500]:
            p = small_zipf_truth.persistency(item)
            assert p <= small_zipf_truth.frequency(item)
            assert p <= small_zipf.num_periods

    def test_num_distinct(self):
        truth = GroundTruth(make_stream([1, 1, 2, 3], num_periods=2))
        assert truth.num_distinct == 3


class TestTopK:
    def test_significance_combination(self):
        stream = make_stream([1, 1, 1, 1, 2, 2, 2, 2], num_periods=4)
        truth = GroundTruth(stream)
        # Periods: [1,1] [1,1] [2,2] [2,2] → f1=f2=4, p1=p2=2.
        assert truth.significance(1, 1.0, 1.0) == 6.0
        assert truth.significance(1, 0.0, 1.0) == 2.0

    def test_top_k_ordering(self, small_zipf_truth):
        top = small_zipf_truth.top_k(50, 1.0, 1.0)
        sigs = [sig for _, sig in top]
        assert sigs == sorted(sigs, reverse=True)

    def test_top_k_deterministic_tie_break(self):
        stream = make_stream([5, 6, 7, 8], num_periods=2)
        truth = GroundTruth(stream)
        assert truth.top_k(2, 1.0, 0.0) == [(5, 1.0), (6, 1.0)]

    def test_top_k_items_set(self, small_zipf_truth):
        items = small_zipf_truth.top_k_items(25, 1.0, 0.0)
        assert len(items) == 25

    def test_alpha_beta_change_ranking(self):
        # Item 1: frequent but bursty (one period); item 2: less frequent
        # but present in every remaining period.
        events = [1, 1, 1, 1, 2, 3, 4, 5, 2, 6, 7, 8, 2, 9, 10, 11]
        stream = make_stream(events, num_periods=4)
        truth = GroundTruth(stream)
        by_freq = truth.top_k_items(1, 1.0, 0.0)
        by_pers = truth.top_k_items(1, 0.0, 1.0)
        assert by_freq == {1}
        assert by_pers == {2}

    def test_frequencies_sorted(self, small_zipf_truth):
        freqs = small_zipf_truth.frequencies_sorted()
        assert freqs == sorted(freqs, reverse=True)
        assert sum(freqs) == small_zipf_truth.num_events
